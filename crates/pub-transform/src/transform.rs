//! The PUB program transformation.

use mbcr_ir::{Expr, Program, ProgramError, Stmt, Var};
use mbcr_trace::scs::scs2_by;

use crate::tokens::{materialize, seq_sig, StmtSig};

/// How PUB handles data accesses whose addresses are not path-invariant.
///
/// An access like `keys[mid]`, where `mid` depends on earlier branch
/// decisions, touches *different lines on different paths* — possibly even
/// a different **number** of distinct lines. Equalizing branch footprints
/// alone cannot upper-bound that: a path reusing one line can be faster
/// than a path spreading over two. The sound, conservative remedy (what a
/// compiler-level PUB must do for statically-unknown addresses) is to widen
/// such accesses so every path touches **all lines the access could
/// reference** — the whole array, once per line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WidenPolicy {
    /// No widening. Unsound on programs with path-dependent addressing;
    /// kept for the ablation benches.
    Off,
    /// Widen accesses whose index expressions depend on *path-dependent*
    /// variables (assigned under a conditional, or data-flow-reachable from
    /// one — a taint fixpoint). Single-path code is never widened.
    #[default]
    PathDependent,
}

/// Configuration of the PUB transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PubConfig {
    /// Also pad loops to their declared bounds (`max_iter`), so paths that
    /// exit loops early still emit the full per-iteration footprint.
    ///
    /// The paper's PUB assumes analysis inputs trigger the highest loop
    /// bounds; enabling this removes that assumption at the cost of extra
    /// pessimism (an extension evaluated in the ablation benches).
    pub pad_loops: bool,
    /// Widening of path-dependent data accesses.
    pub widen: WidenPolicy,
}

impl PubConfig {
    /// The paper's configuration: conditionals equalized, path-dependent
    /// accesses widened, loop bounds assumed to be triggered by the
    /// analysis inputs.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            pad_loops: false,
            widen: WidenPolicy::PathDependent,
        }
    }

    /// The extended configuration with loop padding.
    #[must_use]
    pub fn with_loop_padding() -> Self {
        Self {
            pad_loops: true,
            widen: WidenPolicy::PathDependent,
        }
    }
}

/// Per-conditional inflation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructReport {
    /// Pre-order index of the conditional in the *original* program
    /// (same numbering as [`mbcr_ir::layout_program`]).
    pub construct_id: u32,
    /// Innocuous statements inserted into the then-branch.
    pub then_inserted: usize,
    /// Innocuous statements inserted into the else-branch.
    pub else_inserted: usize,
    /// Total instructions inserted (both branches).
    pub inserted_instrs: u64,
    /// Total data references inserted (both branches).
    pub inserted_data_refs: u64,
}

/// Summary of one PUB application.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PubReport {
    /// Per-conditional reports, in pre-order.
    pub constructs: Vec<ConstructReport>,
    /// Number of loops rewritten by [`PubConfig::pad_loops`].
    pub loops_padded: usize,
    /// Full-array touches inserted by the widening pass
    /// ([`PubConfig::widen`]).
    pub widened_touches: usize,
}

impl PubReport {
    /// Total instructions inserted across all constructs.
    #[must_use]
    pub fn total_inserted_instrs(&self) -> u64 {
        self.constructs.iter().map(|c| c.inserted_instrs).sum()
    }

    /// Total data references inserted across all constructs.
    #[must_use]
    pub fn total_inserted_data_refs(&self) -> u64 {
        self.constructs.iter().map(|c| c.inserted_data_refs).sum()
    }
}

/// The pubbed program plus its inflation report.
#[derive(Debug, Clone)]
pub struct PubResult {
    /// The transformed program (named `<original>_pub`).
    pub program: Program,
    /// What was inserted where.
    pub report: PubReport,
}

/// Applies PUB to a program: innermost-first, every conditional's branches
/// are inflated with [`Stmt::Touch`]/[`Stmt::Nop`] statements until both
/// flatten to the same access-token sequence — the minimal (token-level SCS)
/// common supersequence, inserted at statement boundaries.
///
/// The deployed binary is the *original* program; the pubbed program exists
/// only to collect analysis-time measurements (paper Section 2).
///
/// # Errors
///
/// Returns [`ProgramError`] if the rebuilt body fails validation (cannot
/// happen for programs built via [`mbcr_ir::ProgramBuilder`] unless the
/// program was hand-constructed inconsistently).
///
/// # Examples
///
/// ```
/// use mbcr_ir::{Expr, ProgramBuilder, Stmt};
/// use mbcr_pub::{pub_transform, PubConfig};
///
/// let mut b = ProgramBuilder::new("demo");
/// let a = b.array("a", 8);
/// let (x, y) = (b.var("x"), b.var("y"));
/// b.push(Stmt::if_(
///     Expr::var(x).gt(Expr::c(0)),
///     vec![Stmt::Assign(y, Expr::load(a, Expr::c(0)))],
///     vec![],
/// ));
/// let p = b.build().unwrap();
/// let pubbed = pub_transform(&p, &PubConfig::paper()).unwrap();
/// // The empty else-branch was inflated with the then-branch's footprint.
/// assert_eq!(pubbed.report.constructs[0].else_inserted, 1);
/// ```
pub fn pub_transform(program: &Program, cfg: &PubConfig) -> Result<PubResult, ProgramError> {
    // Widening first: the inserted touches become ordinary footprint that
    // the branch equalization then mirrors across siblings. These are the
    // same two stages the pass pipeline (`pub_pipeline`) runs, so both
    // entry points are bit-identical by construction.
    let (widened, widened_touches) = widen_program(program, cfg.widen)?;
    let mut result = equalize_program(&widened, cfg)?;
    result.report.widened_touches = widened_touches;
    Ok(result)
}

/// The widening stage in isolation: inserts full-array touches per
/// [`WidenPolicy`], keeping name and variable declarations unchanged.
/// Returns the widened program and the number of touches inserted.
pub(crate) fn widen_program(
    program: &Program,
    policy: WidenPolicy,
) -> Result<(Program, usize), ProgramError> {
    match policy {
        WidenPolicy::Off => Ok((program.clone(), 0)),
        WidenPolicy::PathDependent => {
            let tainted = crate::widen::path_dependent_vars(program.body());
            let (widened, inserted) =
                crate::widen::widen_body(program.body(), &tainted, program.arrays());
            Ok((program.with_body(widened)?, inserted))
        }
    }
}

/// The equalization stage in isolation: branch equalization (plus loop
/// padding when configured) on an *already widened* program, appending the
/// scratch variables and the `_pub` name suffix. `cfg.widen` is ignored.
pub(crate) fn equalize_program(
    program: &Program,
    cfg: &PubConfig,
) -> Result<PubResult, ProgramError> {
    let mut ctx = Ctx {
        cfg: *cfg,
        next_construct: 0,
        fresh_counter: 0,
        base_var_count: program.var_count() as u32,
        extra_vars: Vec::new(),
        report: PubReport::default(),
    };
    let body = ctx.transform_stmts(program.body());
    let extra: Vec<&str> = ctx.extra_vars.iter().map(String::as_str).collect();
    let (new_program, _) = program.extended(&extra, body)?;
    Ok(PubResult {
        program: new_program.renamed(format!("{}_pub", program.name())),
        report: ctx.report,
    })
}

struct Ctx {
    cfg: PubConfig,
    next_construct: u32,
    fresh_counter: u32,
    base_var_count: u32,
    extra_vars: Vec<String>,
    report: PubReport,
}

impl Ctx {
    /// Allocates a scratch variable. `Program::extended` appends the extras
    /// after the original variables in push order, so the final id is
    /// `base_var_count + position`.
    fn fresh_var(&mut self, tag: &str) -> Var {
        let name = format!("__pub_{tag}{}", self.fresh_counter);
        self.fresh_counter += 1;
        self.extra_vars.push(name);
        Var(self.base_var_count + self.extra_vars.len() as u32 - 1)
    }

    fn transform_stmts(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        stmts.iter().map(|s| self.transform_stmt(s)).collect()
    }

    fn transform_stmt(&mut self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Assign(..) | Stmt::Store { .. } | Stmt::Touch { .. } | Stmt::Nop { .. } => {
                s.clone()
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let id = self.next_construct;
                self.next_construct += 1;
                let then_t = self.transform_stmts(then_branch);
                let else_t = self.transform_stmts(else_branch);
                let (then_p, else_p) = self.equalize_if(id, then_t, else_t);
                Stmt::If {
                    cond: cond.clone(),
                    then_branch: then_p,
                    else_branch: else_p,
                }
            }
            Stmt::While {
                cond,
                max_iter,
                body,
            } => {
                let _id = self.next_construct;
                self.next_construct += 1;
                let body_t = self.transform_stmts(body);
                if self.cfg.pad_loops {
                    self.report.loops_padded += 1;
                    self.pad_while(cond.clone(), *max_iter, body_t)
                } else {
                    Stmt::While {
                        cond: cond.clone(),
                        max_iter: *max_iter,
                        body: body_t,
                    }
                }
            }
            Stmt::For {
                var,
                from,
                to,
                max_iter,
                body,
            } => {
                let _id = self.next_construct;
                self.next_construct += 1;
                let body_t = self.transform_stmts(body);
                if self.cfg.pad_loops {
                    self.report.loops_padded += 1;
                    self.pad_for(*var, from.clone(), to.clone(), *max_iter, body_t)
                } else {
                    Stmt::For {
                        var: *var,
                        from: from.clone(),
                        to: to.clone(),
                        max_iter: *max_iter,
                        body: body_t,
                    }
                }
            }
        }
    }

    /// Inflates both branches to the token-level shortest common
    /// supersequence of their signatures.
    fn equalize_if(
        &mut self,
        construct_id: u32,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    ) -> (Vec<Stmt>, Vec<Stmt>) {
        let sig_t = seq_sig(&then_branch);
        let sig_e = seq_sig(&else_branch);
        let merged: Vec<StmtSig> = scs2_by(&sig_t, &sig_e, |a, b| a == b);

        let (then_p, t_ins, t_instrs, t_refs) = pad_branch(then_branch, &sig_t, &merged);
        let (else_p, e_ins, e_instrs, e_refs) = pad_branch(else_branch, &sig_e, &merged);

        debug_assert_eq!(
            flatten(&seq_sig(&then_p)),
            flatten(&seq_sig(&else_p)),
            "equalized branches must share one flattened token sequence"
        );

        self.report.constructs.push(ConstructReport {
            construct_id,
            then_inserted: t_ins,
            else_inserted: e_ins,
            inserted_instrs: t_instrs + e_instrs,
            inserted_data_refs: t_refs + e_refs,
        });
        (then_p, else_p)
    }

    /// `while (c) { body }` with loop padding: run exactly `max_iter`
    /// iterations; once the condition first fails, the remaining iterations
    /// execute an innocuous copy of the body's footprint. The condition is
    /// still evaluated every iteration (its loads must keep flowing).
    fn pad_while(&mut self, cond: Expr, max_iter: u32, body: Vec<Stmt>) -> Stmt {
        // flag = 1; for i in 0..max { flag &= (cond != 0); if flag { body } }
        // The inner conditional is equalized like any other, giving the
        // else-side the body's innocuous footprint. Its report entry uses
        // the synthetic id u32::MAX (it has no counterpart in the original
        // program's construct numbering).
        let flag = self.fresh_var("flag");
        let i = self.fresh_var("i");
        let (then_p, else_p) = self.equalize_if(u32::MAX, body, vec![]);
        let looped = Stmt::For {
            var: i,
            from: Expr::c(0),
            to: Expr::c(i64::from(max_iter)),
            max_iter,
            body: vec![
                Stmt::Assign(flag, Expr::var(flag).and(cond.ne(Expr::c(0)))),
                Stmt::If {
                    cond: Expr::var(flag),
                    then_branch: then_p,
                    else_branch: else_p,
                },
            ],
        };
        looped.prefixed(vec![Stmt::Assign(flag, Expr::c(1))])
    }

    /// `for v in from..to { body }` with loop padding: iterate the full
    /// declared bound, guarding the body with `v < hi`.
    fn pad_for(&mut self, var: Var, from: Expr, to: Expr, max_iter: u32, body: Vec<Stmt>) -> Stmt {
        let lo = self.fresh_var("lo");
        let hi = self.fresh_var("hi");
        let i = self.fresh_var("i");
        let (then_p, else_p) = self.equalize_if(u32::MAX, body, vec![]);
        Stmt::For {
            var: i,
            from: Expr::c(0),
            to: Expr::c(i64::from(max_iter)),
            max_iter,
            body: vec![
                Stmt::Assign(var, Expr::var(lo).add(Expr::var(i))),
                Stmt::If {
                    cond: Expr::var(var).lt(Expr::var(hi)),
                    then_branch: then_p,
                    else_branch: else_p,
                },
            ],
        }
        .prefixed(vec![Stmt::Assign(lo, from), Stmt::Assign(hi, to)])
    }
}

// `pad_for` wants to prepend initialization statements before the loop;
// a tiny helper enum keeps `transform_stmt` returning a single Stmt.
trait Prefixed {
    fn prefixed(self, before: Vec<Stmt>) -> Stmt;
}

impl Prefixed for Stmt {
    fn prefixed(self, before: Vec<Stmt>) -> Stmt {
        if before.is_empty() {
            return self;
        }
        // Wrap in a degenerate single-iteration loop? No — use a Block-less
        // construct: an `if (1)` with an empty else, which the interpreter
        // executes unconditionally and costs one header instruction.
        let mut body = before;
        body.push(self);
        Stmt::if_(Expr::c(1), body, vec![])
    }
}

fn flatten(sigs: &[StmtSig]) -> Vec<crate::tokens::Token> {
    sigs.iter().flat_map(|s| s.0.iter().cloned()).collect()
}

/// Pads one branch against the merged signature. Returns the padded branch
/// and (inserted statement count, inserted instructions, inserted refs).
fn pad_branch(
    branch: Vec<Stmt>,
    sig: &[StmtSig],
    merged: &[StmtSig],
) -> (Vec<Stmt>, usize, u64, u64) {
    let mut out = Vec::with_capacity(merged.len());
    let mut inserted = 0usize;
    let mut instrs = 0u64;
    let mut refs = 0u64;
    let mut stmts = branch.into_iter();
    let mut ptr = 0usize;
    for m in merged {
        if ptr < sig.len() && &sig[ptr] == m {
            out.push(stmts.next().expect("signature tracks branch statements"));
            ptr += 1;
        } else {
            let mat = materialize(m);
            inserted += mat.len();
            instrs += m.instr_total();
            refs += m.data_total();
            out.extend(mat);
        }
    }
    assert_eq!(
        ptr,
        sig.len(),
        "merged signature must embed the branch (SCS property)"
    );
    (out, inserted, instrs, refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::{execute, Inputs, ProgramBuilder};

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    /// Build the paper's Figure 1(b) situation at the IR level: an if whose
    /// branches access different array elements.
    fn two_branch_program() -> (Program, Var) {
        let mut b = ProgramBuilder::new("fig1b");
        let arr = b.array("m", 8);
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![
                Stmt::Assign(y, Expr::load(arr, c(0))), // A
                Stmt::Assign(y, Expr::load(arr, c(1))), // B
            ],
            vec![
                Stmt::Assign(y, Expr::load(arr, c(1))), // B
                Stmt::Assign(y, Expr::load(arr, c(2))), // C
            ],
        ));
        (b.build().unwrap(), x)
    }

    #[test]
    fn branches_get_equal_flat_signatures() {
        let (p, _) = two_branch_program();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &result.program.body()[0]
        else {
            panic!("if expected")
        };
        assert_eq!(
            flatten(&seq_sig(then_branch)),
            flatten(&seq_sig(else_branch))
        );
        // SCS of [A,B] and [B,C] is [A,B,C]: one insertion per branch.
        let rep = &result.report.constructs[0];
        assert_eq!(rep.then_inserted, 1);
        assert_eq!(rep.else_inserted, 1);
    }

    #[test]
    fn pubbed_program_preserves_semantics() {
        let (p, x) = two_branch_program();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        for v in [-1, 1] {
            let orig = execute(&p, &Inputs::new().with_var(x, v)).unwrap();
            let pubbed = execute(&result.program, &Inputs::new().with_var(x, v)).unwrap();
            let y = p.var_by_name("y").unwrap();
            assert_eq!(orig.state.var(y), pubbed.state.var(y), "x = {v}");
        }
    }

    #[test]
    fn pubbed_traces_are_supersequences_of_originals_data() {
        let (p, x) = two_branch_program();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        for v in [-1, 1] {
            let orig = execute(&p, &Inputs::new().with_var(x, v)).unwrap();
            let pubbed = execute(&result.program, &Inputs::new().with_var(x, v)).unwrap();
            // The pubbed data-line sequence embeds the original's.
            let ol = orig.trace.data_lines(32);
            let pl = pubbed.trace.data_lines(32);
            let mut it = ol.iter();
            let mut need = it.next();
            for l in &pl {
                if Some(l) == need {
                    need = it.next();
                }
            }
            assert!(
                need.is_none(),
                "pubbed data lines must embed original (x = {v})"
            );
        }
    }

    #[test]
    fn both_paths_emit_identical_data_footprint() {
        let (p, x) = two_branch_program();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        let t = execute(&result.program, &Inputs::new().with_var(x, 1)).unwrap();
        let e = execute(&result.program, &Inputs::new().with_var(x, -1)).unwrap();
        assert_eq!(t.trace.data_lines(32), e.trace.data_lines(32));
        assert_eq!(
            t.trace.instr_fetches().count(),
            e.trace.instr_fetches().count(),
            "instruction counts equalized"
        );
    }

    #[test]
    fn empty_else_gets_full_copy() {
        let mut b = ProgramBuilder::new("t");
        let arr = b.array("a", 8);
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Assign(y, Expr::load(arr, c(3)))],
            vec![],
        ));
        let p = b.build().unwrap();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        let taken = execute(&result.program, &Inputs::new().with_var(x, 1)).unwrap();
        let skipped = execute(&result.program, &Inputs::new().with_var(x, -1)).unwrap();
        assert_eq!(taken.trace.data_lines(32), skipped.trace.data_lines(32));
        let y_id = p.var_by_name("y").unwrap();
        assert_eq!(skipped.state.var(y_id), 0, "touches don't write state");
    }

    #[test]
    fn nested_ifs_are_equalized_innermost_first() {
        let mut b = ProgramBuilder::new("t");
        let arr = b.array("a", 8);
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::if_(
                Expr::var(x).gt(c(5)),
                vec![Stmt::Assign(y, Expr::load(arr, c(0)))],
                vec![Stmt::Assign(y, Expr::load(arr, c(1)))],
            )],
            vec![Stmt::Assign(y, Expr::load(arr, c(2)))],
        ));
        let p = b.build().unwrap();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        // All three paths must produce the same data footprint.
        let runs: Vec<_> = [7, 2, -1]
            .iter()
            .map(|&v| execute(&result.program, &Inputs::new().with_var(x, v)).unwrap())
            .collect();
        assert_eq!(runs[0].trace.data_lines(32), runs[1].trace.data_lines(32));
        assert_eq!(runs[1].trace.data_lines(32), runs[2].trace.data_lines(32));
        assert_eq!(result.report.constructs.len(), 2);
    }

    #[test]
    fn loops_inside_branches_unroll_in_signatures() {
        let mut b = ProgramBuilder::new("t");
        let arr = b.array("a", 8);
        let x = b.var("x");
        let y = b.var("y");
        let i = b.var("i");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::for_(
                i,
                c(0),
                c(4),
                4,
                vec![Stmt::Assign(y, Expr::load(arr, Expr::var(i)))],
            )],
            vec![],
        ));
        let p = b.build().unwrap();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        let taken = execute(&result.program, &Inputs::new().with_var(x, 1)).unwrap();
        let skipped = execute(&result.program, &Inputs::new().with_var(x, -1)).unwrap();
        assert_eq!(taken.trace.data_lines(32), skipped.trace.data_lines(32));
        assert_eq!(
            taken.trace.instr_fetches().count(),
            skipped.trace.instr_fetches().count()
        );
    }

    #[test]
    fn pad_loops_equalizes_iteration_counts() {
        // while (i < x) { y += a[i]; i++ } with bound 6: inputs with
        // different x must produce the same footprint when padded.
        let mut b = ProgramBuilder::new("t");
        let arr = b.array("a", 8);
        let x = b.var("x");
        let y = b.var("y");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(Expr::var(x)),
            6,
            vec![
                Stmt::Assign(y, Expr::var(y).add(Expr::load(arr, Expr::var(i)))),
                Stmt::Assign(i, Expr::var(i).add(c(1))),
            ],
        ));
        let p = b.build().unwrap();
        let result = pub_transform(&p, &PubConfig::with_loop_padding()).unwrap();
        assert_eq!(result.report.loops_padded, 1);

        let short = execute(&result.program, &Inputs::new().with_var(x, 2)).unwrap();
        let long = execute(&result.program, &Inputs::new().with_var(x, 6)).unwrap();
        assert_eq!(
            short.trace.data_lines(32).len(),
            long.trace.data_lines(32).len()
        );
        assert_eq!(
            short.trace.instr_fetches().count(),
            long.trace.instr_fetches().count()
        );
        // Semantics preserved: y sums the first x elements.
        let inputs = Inputs::new()
            .with_var(x, 2)
            .with_array(arr, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let run = execute(&result.program, &inputs).unwrap();
        assert_eq!(run.state.var(y), 3);
    }

    #[test]
    fn single_path_program_is_unchanged_in_footprint() {
        let mut b = ProgramBuilder::new("t");
        let arr = b.array("a", 8);
        let y = b.var("y");
        let i = b.var("i");
        b.push(Stmt::for_(
            i,
            c(0),
            c(8),
            8,
            vec![Stmt::Assign(
                y,
                Expr::var(y).add(Expr::load(arr, Expr::var(i))),
            )],
        ));
        let p = b.build().unwrap();
        let result = pub_transform(&p, &PubConfig::paper()).unwrap();
        assert!(result.report.constructs.is_empty());
        let orig = execute(&p, &Inputs::new()).unwrap();
        let pubbed = execute(&result.program, &Inputs::new()).unwrap();
        assert_eq!(orig.trace.len(), pubbed.trace.len());
    }
}

mbcr_json::impl_serialize_struct!(ConstructReport {
    construct_id,
    then_inserted,
    else_inserted,
    inserted_instrs,
    inserted_data_refs,
});
mbcr_json::impl_serialize_struct!(PubReport {
    constructs,
    loops_padded,
    widened_touches
});
