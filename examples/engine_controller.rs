//! A domain-flavoured scenario from the paper's introduction: an automotive
//! engine-controller task with mode-dependent control paths, analysed
//! end-to-end.
//!
//! The task reads a sensor block, selects one of three control laws
//! (if/else chain — different table lookups per mode), and writes actuator
//! commands. The timing engineer cannot enumerate which mode combination is
//! the worst case — PUB+TAC bounds them all from a single input vector.
//!
//! Run with `cargo run --release --example engine_controller`.

use mbcr::prelude::*;
use mbcr_ir::ProgramBuilder;

fn build_controller() -> (Program, Inputs) {
    let mut b = ProgramBuilder::new("engine_controller");
    let sensors = b.array("sensors", 32);
    let map_low = b.array("map_low", 32);
    let map_mid = b.array("map_mid", 32);
    let map_high = b.array("map_high", 32);
    let actuators = b.array("actuators", 8);
    let (i, load, rpm, cmd) = (b.var("i"), b.var("load"), b.var("rpm"), b.var("cmd"));

    // Aggregate the sensor block.
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(32),
        32,
        vec![Stmt::Assign(load, Expr::var(load).add(Expr::load(sensors, Expr::var(i))))],
    ));
    b.push(Stmt::Assign(rpm, Expr::var(load).mul(Expr::c(3)).rem(Expr::c(9000))));

    // Mode-dependent control law: three lookup tables, data-dependent.
    b.push(Stmt::if_(
        Expr::var(rpm).lt(Expr::c(2000)),
        vec![Stmt::Assign(cmd, Expr::load(map_low, Expr::var(rpm).rem(Expr::c(32))))],
        vec![Stmt::if_(
            Expr::var(rpm).lt(Expr::c(6000)),
            vec![Stmt::Assign(
                cmd,
                Expr::load(map_mid, Expr::var(rpm).rem(Expr::c(32)))
                    .add(Expr::load(map_low, Expr::c(0))),
            )],
            vec![Stmt::Assign(
                cmd,
                Expr::load(map_high, Expr::var(rpm).rem(Expr::c(32)))
                    .mul(Expr::c(2))
                    .add(Expr::load(map_mid, Expr::c(0))),
            )],
        )],
    ));

    // Fan the command out to the actuators.
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(8),
        8,
        vec![Stmt::store(actuators, Expr::var(i), Expr::var(cmd).add(Expr::var(i)))],
    ));

    let program = b.build().expect("controller is well-formed");
    let inputs = Inputs::new().with_array(sensors, (0..32).map(|k| 40 + k % 7).collect());
    (program, inputs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (program, inputs) = build_controller();
    let cfg = AnalysisConfig::builder().seed(0xEC0).quick().build();

    println!("analysing '{}' with PUB + TAC + MBPTA…", program.name());
    let analysis = analyze_pub_tac(&program, &inputs, &cfg)?;

    println!("\n-- path coverage (PUB) --");
    println!("conditionals equalized : {}", analysis.pub_report.constructs.len());
    println!(
        "inserted footprint     : {} instructions, {} data refs, {} widening touches",
        analysis.pub_report.total_inserted_instrs(),
        analysis.pub_report.total_inserted_data_refs(),
        analysis.pub_report.widened_touches,
    );

    println!("\n-- cache representativeness (TAC) --");
    println!(
        "IL1: {} conflict groups -> R = {}",
        analysis.tac_il1.relevant_groups.len(),
        analysis.tac_il1.runs_required
    );
    println!(
        "DL1: {} conflict groups -> R = {}",
        analysis.tac_dl1.relevant_groups.len(),
        analysis.tac_dl1.runs_required
    );

    println!("\n-- verdict --");
    println!("R_pub = {}, R_tac = {}, campaign = {} runs", analysis.r_pub, analysis.r_tac, analysis.campaign_runs);
    println!(
        "pWCET@1e-12 = {:.0} cycles (highest observed: {})",
        analysis.pwcet_pub_tac,
        analysis.sample.iter().max().expect("non-empty"),
    );
    println!("\nThis bound holds for *every* mode path and *every* cache layout of");
    println!("probability above the configured floor — no path enumeration needed.");
    Ok(())
}
