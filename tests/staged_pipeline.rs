//! Bit-identity and resume semantics of the stage-graph API.
//!
//! The staged [`AnalysisSession`] must reproduce the seed's monolithic
//! pipeline exactly — same samples, same pWCET, same R-values — whether it
//! runs cold, warm from a stage store, or resumed after a knob change. The
//! reference below is a line-for-line port of the seed's monolithic
//! `analyze_pub_tac`, kept alive in this test so the equivalence claim is
//! checked against the original algorithm, not against the wrapper that
//! now shares code with the session.

use mbcr::stage::{AnalysisSession, MemoryStageStore, StageKind, StageStatus};
use mbcr::{analyze_original, analyze_pub_tac, AnalysisConfig};
use mbcr_cpu::{campaign_parallel, campaign_slice};
use mbcr_evt::{converge, IidReport, Pwcet};
use mbcr_ir::{execute, Inputs, Program};
use mbcr_pub::pub_transform;
use mbcr_rng::derive_seed;
use mbcr_tac::analyze_lines;

/// The seed repository's monolithic `analyze_pub_tac`, verbatim modulo
/// visibility: the ground truth the staged API must match bit-for-bit.
fn reference_pub_tac(
    program: &Program,
    input: &Inputs,
    cfg: &AnalysisConfig,
) -> (usize, u64, u64, usize, Vec<u64>, f64, f64) {
    let campaign_seed = derive_seed(cfg.seed, 0xCA);
    let pubbed = pub_transform(program, &cfg.pub_cfg).expect("pub");
    let run = execute(&pubbed.program, input).expect("execute");

    let il1_stream = run.trace.instr_lines(cfg.platform.il1.line_size());
    let dl1_stream = run.trace.data_lines(cfg.platform.dl1.line_size());
    let tac_il1 = analyze_lines(
        &il1_stream,
        &cfg.tac
            .for_cache(&cfg.platform.il1, derive_seed(cfg.seed, 1)),
    );
    let tac_dl1 = analyze_lines(
        &dl1_stream,
        &cfg.tac
            .for_cache(&cfg.platform.dl1, derive_seed(cfg.seed, 2)),
    );
    let r_tac = tac_il1.runs_required.max(tac_dl1.runs_required);

    let mut next = 0usize;
    let outcome = converge(
        |count| {
            let out = campaign_slice(&cfg.platform, &run.trace, next, count, campaign_seed);
            next += count;
            out
        },
        &cfg.convergence,
    )
    .expect("converge");
    let r_pub = outcome.runs;
    let pwcet_pub = outcome.pwcet.quantile(cfg.exceedance);

    let r_pub_tac = r_tac.max(r_pub as u64);
    let campaign_runs = usize::try_from(r_pub_tac)
        .unwrap_or(usize::MAX)
        .min(cfg.max_campaign_runs)
        .max(r_pub.min(cfg.max_campaign_runs));

    let sample = campaign_parallel(
        &cfg.platform,
        &run.trace,
        campaign_runs,
        campaign_seed,
        cfg.threads,
    );
    let pwcet = Pwcet::fit(
        &sample,
        cfg.convergence.method,
        &cfg.convergence.tail,
        cfg.convergence.dither,
    )
    .expect("fit");
    let float_sample: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
    let _iid = IidReport::evaluate(&float_sample);
    let pwcet_pub_tac = pwcet.quantile(cfg.exceedance);

    (
        r_pub,
        r_tac,
        r_pub_tac,
        campaign_runs,
        sample,
        pwcet_pub,
        pwcet_pub_tac,
    )
}

/// The seed repository's monolithic `analyze_original`, verbatim modulo
/// visibility: `(r_orig, converged, pwcet_at_exceedance, trace_len)`.
fn reference_original(
    program: &Program,
    input: &Inputs,
    cfg: &AnalysisConfig,
) -> (usize, bool, f64, usize) {
    let campaign_seed = derive_seed(cfg.seed, 0xCA);
    let run = execute(program, input).expect("execute");
    let mut next = 0usize;
    let outcome = converge(
        |count| {
            let out = campaign_slice(&cfg.platform, &run.trace, next, count, campaign_seed);
            next += count;
            out
        },
        &cfg.convergence,
    )
    .expect("converge");
    (
        outcome.runs,
        outcome.converged,
        outcome.pwcet.quantile(cfg.exceedance),
        run.trace.len(),
    )
}

fn quick_cfg(seed: u64) -> AnalysisConfig {
    AnalysisConfig::builder()
        .seed(seed)
        .quick()
        .threads(2)
        .build()
}

#[test]
fn staged_session_is_bit_identical_to_the_seed_monolith() {
    let b = mbcr_malardalen::bs::benchmark();
    for seed in [1, 42, 0xDEAD] {
        let cfg = quick_cfg(seed);
        let (r_pub, r_tac, r_pub_tac, campaign_runs, sample, pwcet_pub, pwcet_pub_tac) =
            reference_pub_tac(&b.program, &b.default_input, &cfg);

        // The thin wrapper (a storeless session).
        let wrapped = analyze_pub_tac(&b.program, &b.default_input, &cfg).expect("wrapper");
        assert_eq!(wrapped.r_pub, r_pub, "seed {seed}");
        assert_eq!(wrapped.r_tac, r_tac);
        assert_eq!(wrapped.r_pub_tac, r_pub_tac);
        assert_eq!(wrapped.campaign_runs, campaign_runs);
        assert_eq!(wrapped.sample, sample, "samples must be bit-identical");
        assert_eq!(wrapped.pwcet_pub, pwcet_pub);
        assert_eq!(wrapped.pwcet_pub_tac, pwcet_pub_tac);

        // A stored session, cold.
        let store = MemoryStageStore::default();
        let cold = AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg)
            .with_store(&store)
            .finish_pub_tac()
            .expect("cold session");
        assert_eq!(cold.sample, sample);
        assert_eq!(cold.pwcet_pub_tac, pwcet_pub_tac);

        // The same session warm: every stage loads, results unchanged.
        let warm = AnalysisSession::pub_tac(&b.program, &b.default_input, &cfg)
            .with_store(&store)
            .finish_pub_tac()
            .expect("warm session");
        assert_eq!(warm.sample, sample);
        assert_eq!(warm.pwcet_pub, pwcet_pub);
        assert_eq!(warm.pwcet_pub_tac, pwcet_pub_tac);
        assert_eq!(warm.r_pub, r_pub);
        assert_eq!(warm.r_tac, r_tac);
    }
}

#[test]
fn staged_original_matches_the_seed_monolith() {
    let b = mbcr_malardalen::insertsort::benchmark();
    let cfg = quick_cfg(7);
    let (r_orig, converged, pwcet_at_exceedance, trace_len) =
        reference_original(&b.program, &b.default_input, &cfg);

    // The wrapper is itself a session, so additionally pin it to the
    // independent reference port of the seed monolith.
    let direct = analyze_original(&b.program, &b.default_input, &cfg).expect("direct");
    assert_eq!(direct.r_orig, r_orig);
    assert_eq!(direct.converged, converged);
    assert_eq!(direct.pwcet_at_exceedance, pwcet_at_exceedance);
    assert_eq!(direct.trace_len, trace_len);

    let store = MemoryStageStore::default();
    let cold = AnalysisSession::original(&b.program, &b.default_input, &cfg)
        .with_store(&store)
        .finish_original()
        .expect("cold");
    let warm = AnalysisSession::original(&b.program, &b.default_input, &cfg)
        .with_store(&store)
        .finish_original()
        .expect("warm");
    for analysis in [&cold, &warm] {
        assert_eq!(analysis.r_orig, direct.r_orig);
        assert_eq!(analysis.converged, direct.converged);
        assert_eq!(analysis.pwcet_at_exceedance, direct.pwcet_at_exceedance);
        assert_eq!(analysis.trace_len, direct.trace_len);
    }
}

/// A warm re-run after changing only `max_campaign_runs` must reuse the
/// cached PUB/trace/TAC/converge stages and recompute only campaign + fit
/// — and the resumed sample must still be bit-identical to a cold run
/// under the new cap (the campaign tail restarts from the convergence
/// boundary of the seed stream).
#[test]
fn cap_change_resumes_from_the_converge_boundary() {
    let b = mbcr_malardalen::bs::benchmark();
    let base = quick_cfg(3);
    let store = MemoryStageStore::default();

    let cold = AnalysisSession::pub_tac(&b.program, &b.default_input, &base)
        .with_store(&store)
        .finish_pub_tac()
        .expect("cold");
    assert!(
        cold.campaign_runs > cold.r_pub,
        "the demo cell must have a TAC-extended campaign for this test"
    );

    let recapped = AnalysisConfig::builder()
        .seed(3)
        .quick()
        .threads(2)
        .max_campaign_runs(cold.r_pub + 50)
        .build();
    let mut resumed =
        AnalysisSession::pub_tac(&b.program, &b.default_input, &recapped).with_store(&store);
    resumed.advance(StageKind::Fit).expect("resume");
    for stage in [
        StageKind::Trace,
        StageKind::TacIl1,
        StageKind::TacDl1,
        StageKind::Converge,
    ] {
        assert_eq!(
            resumed.status(stage),
            Some(StageStatus::Cached),
            "{} must be reused after a cap change",
            stage.name()
        );
    }
    for stage in [StageKind::Campaign, StageKind::Fit] {
        assert_eq!(
            resumed.status(stage),
            Some(StageStatus::Computed),
            "{} must re-execute after a cap change",
            stage.name()
        );
    }
    let resumed = resumed.finish_pub_tac().expect("finish");

    // Ground truth: a cold, storeless run under the new cap.
    let direct = analyze_pub_tac(&b.program, &b.default_input, &recapped).expect("direct");
    assert_eq!(
        resumed.sample, direct.sample,
        "resume must be bit-identical"
    );
    assert_eq!(resumed.pwcet_pub_tac, direct.pwcet_pub_tac);
    assert_eq!(resumed.campaign_runs, direct.campaign_runs);
    assert!(resumed.campaign_capped);

    // And the resumed sample extends the cold prefix of the seed stream.
    assert_eq!(
        &resumed.sample[..cold.r_pub],
        &cold.sample[..cold.r_pub],
        "shared seed-stream prefix"
    );
}
