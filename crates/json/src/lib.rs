//! Zero-dependency JSON serialization for mbcr artifacts.
//!
//! The build environment is offline, so `serde`/`serde_json` cannot be
//! fetched; this crate provides the small subset the workspace needs:
//!
//! * [`Json`] — an ordered JSON value tree (numbers keep their integer
//!   width, so `u64` seeds round-trip exactly);
//! * [`Serialize`] — the trait report types implement, with
//!   [`impl_serialize_struct!`] generating field-exhaustive impls (the
//!   destructuring pattern fails to compile if a struct gains or loses a
//!   field, the same drift protection a derive gives);
//! * [`parse`] — a strict recursive-descent parser for reading manifests
//!   and artifacts back;
//! * [`csv_field`] — CSV quoting for the artifact store's tabular outputs.
//!
//! # Examples
//!
//! ```
//! use mbcr_json::{parse, Json, Serialize};
//!
//! let v = Json::Obj(vec![
//!     ("name".into(), "bs".into()),
//!     ("runs".into(), Json::UInt(300)),
//! ]);
//! let text = v.to_string();
//! let back = parse(&text).unwrap();
//! assert_eq!(back.get("runs").and_then(Json::as_u64), Some(300));
//! assert_eq!(300u64.to_json(), Json::UInt(300));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (kept exact; `u64` seeds round-trip).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` on other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric variant).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::UInt(v) => i64::try_from(v).ok(),
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `usize` if it is a non-negative integer in range.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The string payload.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array payload.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact rendering (`Display` renders compact as well).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let mut buf = itoa_buffer();
                out.push_str(write_u64(&mut buf, *v));
            }
            Json::Int(v) => {
                if *v < 0 {
                    out.push('-');
                }
                let mut buf = itoa_buffer();
                out.push_str(write_u64(&mut buf, v.unsigned_abs()));
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let text = format!("{v}");
                    out.push_str(&text);
                    // Distinguish 2.0 from the integer 2 so floats stay
                    // floats across a round-trip.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_sequence(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (key, value) = &members[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn itoa_buffer() -> [u8; 20] {
    [0; 20]
}

fn write_u64(buf: &mut [u8; 20], mut v: u64) -> &str {
    let mut at = buf.len();
    loop {
        at -= 1;
        buf[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[at..]).expect("ascii digits")
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait Serialize {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let v = i64::from(*self);
                if v >= 0 { Json::UInt(v as u64) } else { Json::Int(v) }
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Generates a field-exhaustive [`Serialize`] impl for a struct with named
/// fields. The destructuring pattern is exhaustive: adding or removing a
/// field without updating the call site is a compile error, giving the same
/// drift protection as a derive.
#[macro_export]
macro_rules! impl_serialize_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_json(&self) -> $crate::Json {
                let Self { $($field),+ } = self;
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::Serialize::to_json($field)),)+
                ])
            }
        }
    };
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (strict: one value, no trailing garbage).
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first offending character.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    if self.peek() == Some(b'u') {
                        self.at += 1;
                        let first = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a `\uXXXX` low surrogate must
                            // follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.hex4()?;
                            let low = second
                                .checked_sub(0xDC00)
                                .filter(|&d| d < 0x400)
                                .ok_or_else(|| self.err("invalid low surrogate"))?;
                            char::from_u32(0x10000 + ((first - 0xD800) << 10) + low)
                        } else {
                            char::from_u32(first)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        continue;
                    }
                    let replacement = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        Some(b'b') => '\u{0008}',
                        Some(b'f') => '\u{000C}',
                        _ => return Err(self.err("invalid escape sequence")),
                    };
                    out.push(replacement);
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    /// Consumes exactly 4 hex digits at `self.at`.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for i in 0..4 {
            let d = self
                .bytes
                .get(self.at + i)
                .and_then(|b| (*b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
        }
        self.at += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.at += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits are ASCII");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            message: "invalid number".into(),
            offset: start,
        })
    }
}

/// FNV-1a, 64-bit: the workspace's one content-hash primitive (job keys,
/// config digests). `seed` is the running hash state — start from
/// [`FNV_OFFSET`] (or any prior `fnv1a` output, to chain).
#[must_use]
pub fn fnv1a(seed: u64, text: &str) -> u64 {
    fnv1a_bytes(seed, text.as_bytes())
}

/// [`fnv1a`] over raw bytes (sample checksums, binary artifacts).
#[must_use]
pub fn fnv1a_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The standard FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Quotes a value for CSV output (RFC 4180): fields containing commas,
/// quotes or newlines are wrapped and inner quotes doubled.
#[must_use]
pub fn csv_field(value: &str) -> String {
    if value.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("name".into(), "bs / \"quoted\"\n".into()),
            ("seed".into(), Json::UInt(u64::MAX)),
            ("delta".into(), Json::Int(-42)),
            ("pwcet".into(), Json::Num(1234.5)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "failed on: {text}");
        }
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        for seed in [0u64, 1 << 53, u64::MAX, 0x6D62_6372] {
            let text = Json::UInt(seed).to_compact();
            assert_eq!(parse(&text).unwrap().as_u64(), Some(seed));
        }
    }

    #[test]
    fn float_integers_stay_floats() {
        let text = Json::Num(2.0).to_compact();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Json::Num(2.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\x\"", "01a"] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse(r#""a\u00e9\n\t\" \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("aé\n\t\" 😀"));
    }

    #[test]
    fn parser_handles_numbers() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5e3").unwrap(), Json::Num(1500.0));
        assert_eq!(parse("-0.25").unwrap(), Json::Num(-0.25));
    }

    #[test]
    fn accessors_navigate() {
        let v = parse(r#"{"jobs": [{"key": "abc", "runs": 300}]}"#).unwrap();
        let job = &v.get("jobs").unwrap().as_array().unwrap()[0];
        assert_eq!(job.get("key").unwrap().as_str(), Some("abc"));
        assert_eq!(job.get("runs").unwrap().as_usize(), Some(300));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn serialize_primitives() {
        assert_eq!((-3i32).to_json(), Json::Int(-3));
        assert_eq!(3i32.to_json(), Json::UInt(3));
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(Some(1u8).to_json(), Json::UInt(1));
        assert_eq!(None::<u8>.to_json(), Json::Null);
        assert_eq!(
            vec![("a".to_string(), 1u32)].to_json(),
            Json::Arr(vec![Json::Arr(vec![Json::Str("a".into()), Json::UInt(1)])])
        );
    }

    #[test]
    fn struct_macro_serializes_all_fields() {
        struct Demo {
            runs: usize,
            pwcet: f64,
            name: String,
        }
        impl_serialize_struct!(Demo { runs, pwcet, name });
        let d = Demo {
            runs: 5,
            pwcet: 1.5,
            name: "bs".into(),
        };
        let j = d.to_json();
        assert_eq!(j.get("runs").unwrap().as_usize(), Some(5));
        assert_eq!(j.get("pwcet").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.get("name").unwrap().as_str(), Some("bs"));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
