//! End-to-end tests of the batch engine: a small 2-benchmark ×
//! 2-geometry sweep writes a complete artifact store, a warm re-run skips
//! every job, and results are deterministic across invocations.

use std::fs;
use std::path::PathBuf;

use mbcr_engine::{
    expand, run_sweep, AnalysisKind, ArtifactStore, GeometrySpec, InputSelection, JobStatus,
    Registry, RunOptions, SweepSpec,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-engine-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A tiny but representative campaign: one multipath benchmark (bs, two
/// named inputs, so a combine node appears) and one single-path benchmark,
/// across two geometries. Campaigns are capped hard so the whole test runs
/// in seconds.
fn tiny_spec() -> SweepSpec {
    SweepSpec::new("engine-it")
        .benchmarks(["bs", "insertsort"])
        .inputs(InputSelection::Named(vec!["v1".into(), "v3".into()]))
        .geometries([
            GeometrySpec::paper_l1(),
            GeometrySpec::parse("2048:2:32").unwrap(),
        ])
        .seeds([11])
        .analyses([
            AnalysisKind::Original,
            AnalysisKind::PubTac,
            AnalysisKind::Multipath,
        ])
}

#[test]
fn cold_sweep_writes_artifacts_and_warm_rerun_skips() {
    let registry = Registry::malardalen();
    // insertsort has no vectors named v1/v3 — restrict it via its own
    // spec? No: bs has v1/v3; insertsort has reversed/sorted/shuffled.
    // Use per-benchmark-valid selection instead: default inputs for
    // insertsort would fail Named resolution, so sweep bs alone here and
    // cover the second benchmark with the default selection below.
    let spec = SweepSpec {
        benchmarks: vec!["bs".into()],
        ..tiny_spec()
    };
    let dir = tmp_dir("cold-warm");
    let store = ArtifactStore::open(&dir).expect("open store");
    let opts = RunOptions {
        threads: 4,
        force: false,
    };

    // Expansion shape: per cell (2 geometries × 1 seed): 1 original +
    // 2 pub_tac + 1 combine.
    let graph = expand(&spec, &registry).expect("expand");
    assert_eq!(graph.len(), 8);

    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold sweep");
    assert_eq!(cold.executed, 8);
    assert_eq!(cold.skipped, 0);
    assert_eq!(cold.failed, 0);

    // Artifacts: manifest, table2, one JSON per job, samples for pub_tac.
    assert!(store.manifest_path().is_file(), "manifest.json missing");
    assert!(store.table2_path().is_file(), "table2.csv missing");
    for record in &cold.records {
        assert!(
            store.has_artifact(&record.key),
            "artifact missing for {}",
            record.label
        );
    }
    let sample_csvs = fs::read_dir(dir.join("jobs"))
        .expect("jobs dir")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".samples.csv")
        })
        .count();
    assert_eq!(sample_csvs, 4, "one sample CSV per pub_tac job");

    // Table 2 layout: one row per (input, geometry) cell, every paper
    // column populated.
    assert_eq!(cold.rows.len(), 4);
    let table2 = fs::read_to_string(store.table2_path()).expect("read table2");
    assert!(
        table2.starts_with("benchmark,input,geometry,seed,R_orig,R_pub,R_tac,R_pub_tac,pwcet_orig")
    );
    assert_eq!(table2.lines().count(), 1 + 4);
    for row in &cold.rows {
        assert!(row.r_orig.is_some(), "R_orig missing: {row:?}");
        assert!(row.r_pub.is_some(), "R_pub missing: {row:?}");
        assert!(row.r_tac.is_some(), "R_tac missing: {row:?}");
        assert!(row.r_pub_tac.is_some(), "R_pub+tac missing: {row:?}");
        assert!(row.pwcet_pub_tac.is_some(), "pWCET missing: {row:?}");
        assert!(
            row.pwcet_multipath.is_some(),
            "multipath column missing: {row:?}"
        );
        assert_eq!(
            row.r_pub_tac.unwrap(),
            row.r_pub.unwrap().max(row.r_tac.unwrap())
        );
    }

    // Warm re-run: same spec, same store — every job must be served from
    // the artifact store and the aggregation must be identical.
    let warm = run_sweep(&spec, &registry, &store, &opts).expect("warm sweep");
    assert_eq!(warm.executed, 0, "warm re-run must skip all jobs");
    assert_eq!(warm.skipped, 8);
    assert_eq!(warm.failed, 0);
    assert!(warm.records.iter().all(|r| r.status == JobStatus::Skipped));
    assert_eq!(
        warm.rows, cold.rows,
        "cached aggregation must reproduce the cold run"
    );

    // `force` bypasses the cache.
    let forced = run_sweep(
        &spec,
        &registry,
        &store,
        &RunOptions {
            threads: 4,
            force: true,
        },
    )
    .expect("forced sweep");
    assert_eq!(forced.executed, 8);
    assert_eq!(
        forced.rows, cold.rows,
        "forced re-run must be deterministic"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_benchmark_sweep_covers_both_and_changing_spec_invalidates() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("engine-it-2")
        .benchmarks(["bs", "insertsort"])
        .geometries([
            GeometrySpec::paper_l1(),
            GeometrySpec::parse("2048:2:32").unwrap(),
        ])
        .seeds([3])
        .analyses([AnalysisKind::PubTac]);
    let dir = tmp_dir("two-bench");
    let store = ArtifactStore::open(&dir).expect("open store");
    let opts = RunOptions {
        threads: 4,
        force: false,
    };

    let cold = run_sweep(&spec, &registry, &store, &opts).expect("cold");
    assert_eq!(cold.executed, 4, "2 benchmarks × 2 geometries");
    let benchmarks: std::collections::HashSet<&str> =
        cold.rows.iter().map(|r| r.benchmark.as_str()).collect();
    assert_eq!(benchmarks, ["bs", "insertsort"].into_iter().collect());

    // A different seed is a different campaign: nothing may be served from
    // the warm store.
    let reseeded = SweepSpec {
        seeds: vec![4],
        ..spec.clone()
    };
    let rerun = run_sweep(&reseeded, &registry, &store, &opts).expect("reseeded");
    assert_eq!(
        rerun.executed, 4,
        "seed change must invalidate every artifact"
    );
    assert_eq!(rerun.skipped, 0);

    // The original spec is still fully cached.
    let warm = run_sweep(&spec, &registry, &store, &opts).expect("warm");
    assert_eq!(warm.skipped, 4);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn multipath_combination_is_the_min_over_inputs() {
    let registry = Registry::malardalen();
    let spec = SweepSpec::new("engine-it-3")
        .benchmarks(["bs"])
        .inputs(InputSelection::Named(vec![
            "v1".into(),
            "v3".into(),
            "v5".into(),
        ]))
        .seeds([5])
        .analyses([AnalysisKind::PubTac, AnalysisKind::Multipath]);
    let dir = tmp_dir("multipath");
    let store = ArtifactStore::open(&dir).expect("open store");

    let outcome = run_sweep(
        &spec,
        &registry,
        &store,
        &RunOptions {
            threads: 2,
            force: false,
        },
    )
    .expect("sweep");
    assert_eq!(outcome.failed, 0);
    let min_pwcet = outcome
        .rows
        .iter()
        .filter_map(|r| r.pwcet_pub_tac)
        .fold(f64::INFINITY, f64::min);
    for row in &outcome.rows {
        assert_eq!(
            row.pwcet_multipath,
            Some(min_pwcet),
            "Corollary 2: combination must be the per-cell minimum"
        );
    }

    let _ = fs::remove_dir_all(&dir);
}
