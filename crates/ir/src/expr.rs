//! Expressions of the mbcr IR.

use std::fmt;

use crate::program::{ArrayId, Var};

/// Binary operators (C-like semantics on `i64`, wrapping arithmetic).
///
/// Comparison operators yield `0` or `1`. There are **no short-circuit
/// logical operators**: `And`/`Or` are bitwise, so every operand of an
/// expression is always evaluated. This keeps the memory access sequence of
/// an expression input-independent, which is what lets PUB compute exact
/// static access signatures for branch equalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division (errors on zero divisor).
    Div,
    /// Remainder (errors on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (masked to 0–63).
    Shl,
    /// Arithmetic right shift (masked to 0–63).
    Shr,
    /// Less-than, yields 0/1.
    Lt,
    /// Less-or-equal, yields 0/1.
    Le,
    /// Greater-than, yields 0/1.
    Gt,
    /// Greater-or-equal, yields 0/1.
    Ge,
    /// Equality, yields 0/1.
    Eq,
    /// Inequality, yields 0/1.
    Ne,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Wrapping negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Logical not: `0 → 1`, non-zero → `0`.
    LNot,
}

/// An expression tree.
///
/// Expressions are pure except that evaluating an [`Expr::Load`] emits a data
/// read access into the trace. Build them with the fluent helpers:
///
/// ```
/// use mbcr_ir::{Expr, ProgramBuilder};
/// let mut b = ProgramBuilder::new("demo");
/// let a = b.array("a", 4);
/// let i = b.var("i");
/// // a[i] + 1 < 10
/// let e = Expr::load(a, Expr::var(i)).add(Expr::c(1)).lt(Expr::c(10));
/// assert_eq!(e.load_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable read (register-allocated: no memory access).
    Var(Var),
    /// Array element load: emits a data read when evaluated.
    Load(ArrayId, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

// The fluent builder methods deliberately mirror operator names (`add`,
// `mul`, `shr`, …): they *construct* expression nodes rather than compute,
// and the names read naturally at call sites (`x.add(y).lt(z)`).
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer constant.
    #[must_use]
    pub fn c(value: i64) -> Expr {
        Expr::Const(value)
    }

    /// Variable reference.
    #[must_use]
    pub fn var(v: Var) -> Expr {
        Expr::Var(v)
    }

    /// Array load `array[index]`.
    #[must_use]
    pub fn load(array: ArrayId, index: Expr) -> Expr {
        Expr::Load(array, Box::new(index))
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`.
    #[must_use]
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    #[must_use]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    #[must_use]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }

    /// `self / rhs` (truncating).
    #[must_use]
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }

    /// `self % rhs`.
    #[must_use]
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rem, rhs)
    }

    /// Bitwise `self & rhs`.
    #[must_use]
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// Bitwise `self | rhs`.
    #[must_use]
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }

    /// Bitwise `self ^ rhs`.
    #[must_use]
    pub fn xor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Xor, rhs)
    }

    /// `self << rhs` (shift amount masked to 0–63).
    #[must_use]
    pub fn shl(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shl, rhs)
    }

    /// `self >> rhs` (arithmetic, amount masked to 0–63).
    #[must_use]
    pub fn shr(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shr, rhs)
    }

    /// `self < rhs` as 0/1.
    #[must_use]
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    /// `self <= rhs` as 0/1.
    #[must_use]
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }

    /// `self > rhs` as 0/1.
    #[must_use]
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    /// `self >= rhs` as 0/1.
    #[must_use]
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    /// `self == rhs` as 0/1.
    #[must_use]
    pub fn eq_(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    /// `self != rhs` as 0/1.
    #[must_use]
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }

    /// Wrapping negation.
    #[must_use]
    pub fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }

    /// Logical not (`0 → 1`, else `0`).
    #[must_use]
    pub fn lnot(self) -> Expr {
        Expr::Un(UnOp::LNot, Box::new(self))
    }

    /// Number of [`Expr::Load`] nodes — every one of them is evaluated, so
    /// this is exactly the number of data reads the expression emits.
    #[must_use]
    pub fn load_count(&self) -> u32 {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Load(_, idx) => 1 + idx.load_count(),
            Expr::Un(_, e) => e.load_count(),
            Expr::Bin(_, l, r) => l.load_count() + r.load_count(),
        }
    }

    /// Instruction count of the compiled expression under a simple RISC
    /// cost model: constants materialize with one instruction, register
    /// reads are free, a load costs address generation plus the load
    /// itself, and every operator is one instruction.
    ///
    /// This drives the code layout (and therefore the I-cache footprint):
    /// a loop body of a few statements spans several cache lines, as
    /// compiled code does.
    #[must_use]
    pub fn instr_cost(&self) -> u32 {
        match self {
            Expr::Const(_) => 1,
            Expr::Var(_) => 0,
            Expr::Load(_, idx) => idx.instr_cost() + 2,
            Expr::Un(_, e) => e.instr_cost() + 1,
            Expr::Bin(_, l, r) => l.instr_cost() + r.instr_cost() + 1,
        }
    }

    /// Visits every `Load` node in evaluation order.
    pub fn for_each_load(&self, f: &mut impl FnMut(ArrayId, &Expr)) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Load(a, idx) => {
                // Index sub-loads are evaluated before the load itself.
                idx.for_each_load(f);
                f(*a, idx);
            }
            Expr::Un(_, e) => e.for_each_load(f),
            Expr::Bin(_, l, r) => {
                l.for_each_load(f);
                r.for_each_load(f);
            }
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Const(v)
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "v{}", v.0),
            Expr::Load(a, idx) => write!(f, "arr{}[{idx}]", a.0),
            Expr::Un(op, e) => {
                let s = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "~",
                    UnOp::LNot => "!",
                };
                write!(f, "{s}({e})")
            }
            Expr::Bin(op, l, r) => {
                let s = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                };
                write!(f, "({l} {s} {r})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_count_nested() {
        let a = ArrayId(0);
        // a[a[0] + a[1]] -> 3 loads.
        let e = Expr::load(a, Expr::load(a, Expr::c(0)).add(Expr::load(a, Expr::c(1))));
        assert_eq!(e.load_count(), 3);
    }

    #[test]
    fn for_each_load_order_is_eval_order() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        // a[b[0]] + a[1]: loads must visit b[0], a[.], a[1].
        let e = Expr::load(a, Expr::load(b, Expr::c(0))).add(Expr::load(a, Expr::c(1)));
        let mut order = Vec::new();
        e.for_each_load(&mut |arr, _| order.push(arr));
        assert_eq!(order, vec![b, a, a]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::var(Var(0)).add(Expr::c(1)).lt(Expr::c(10));
        assert_eq!(e.to_string(), "((v0 + 1) < 10)");
    }

    #[test]
    fn structural_equality() {
        let a = ArrayId(0);
        let e1 = Expr::load(a, Expr::var(Var(1)));
        let e2 = Expr::load(a, Expr::var(Var(1)));
        let e3 = Expr::load(a, Expr::var(Var(2)));
        assert_eq!(e1, e2);
        assert_ne!(e1, e3);
    }
}
