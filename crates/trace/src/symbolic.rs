//! Symbolic access sequences — the paper's `{ABCA}^1000` notation.

use std::fmt;
use std::str::FromStr;

use crate::{Access, LineId, Trace};

/// A symbolic address: `A`, `B`, … mapped to small integers.
///
/// Symbols stand for *distinct cache lines*; the concrete byte addresses are
/// irrelevant under random placement (every distinct line receives an
/// independent uniform set), which is exactly why the paper can reason with
/// letters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u16);

impl Symbol {
    /// Returns the conventional letter for small symbol ids (`A`–`Z`), or
    /// `#<id>` beyond.
    #[must_use]
    pub fn letter(self) -> String {
        if self.0 < 26 {
            char::from(b'A' + self.0 as u8).to_string()
        } else {
            format!("#{}", self.0)
        }
    }
}

/// Error parsing a [`SymSeq`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSymSeqError {
    offending: char,
}

impl fmt::Display for ParseSymSeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid symbol {:?}: expected ASCII letters A-Z",
            self.offending
        )
    }
}

impl std::error::Error for ParseSymSeqError {}

/// A symbolic memory access sequence, e.g. the paper's `{ABCA}`.
///
/// Supports the operations the paper defines over sequences:
/// [`ins`](SymSeq::ins) (insert an address at a position), repetition
/// (`{ABCA}^1000` via [`repeat`](SymSeq::repeat)), and the supersequence
/// relation underlying PUB's upper-bounding argument.
///
/// # Examples
///
/// ```
/// use mbcr_trace::SymSeq;
/// let m: SymSeq = "ABCA".parse()?;
/// assert_eq!(m.to_string(), "ABCA");
/// assert_eq!(m.repeat(2).to_string(), "ABCAABCA");
/// assert_eq!(m.unique_symbols(), 3);
/// # Ok::<(), mbcr_trace::ParseSymSeqError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SymSeq {
    symbols: Vec<Symbol>,
}

impl SymSeq {
    /// Creates an empty sequence.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sequence from raw symbols.
    #[must_use]
    pub fn from_symbols(symbols: Vec<Symbol>) -> Self {
        Self { symbols }
    }

    /// Number of accesses in the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols in order.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Number of distinct symbols (the footprint in cache lines).
    ///
    /// TAC's first question about a sequence: does the footprint exceed the
    /// ways of one cache set?
    #[must_use]
    pub fn unique_symbols(&self) -> usize {
        let mut s: Vec<Symbol> = self.symbols.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    /// The paper's `ins(M, x)` operator: inserts symbol `x` at `position`
    /// (an index in `0..=len`), preserving the order of all other accesses.
    ///
    /// # Panics
    ///
    /// Panics if `position > len`.
    #[must_use]
    pub fn ins(&self, position: usize, x: Symbol) -> SymSeq {
        assert!(
            position <= self.symbols.len(),
            "insert position out of bounds"
        );
        let mut out = Vec::with_capacity(self.symbols.len() + 1);
        out.extend_from_slice(&self.symbols[..position]);
        out.push(x);
        out.extend_from_slice(&self.symbols[position..]);
        SymSeq { symbols: out }
    }

    /// Concatenates `n` copies of the sequence — the paper's `{…}^n`.
    #[must_use]
    pub fn repeat(&self, n: usize) -> SymSeq {
        let mut out = Vec::with_capacity(self.symbols.len() * n);
        for _ in 0..n {
            out.extend_from_slice(&self.symbols);
        }
        SymSeq { symbols: out }
    }

    /// Appends another sequence.
    pub fn extend_with(&mut self, other: &SymSeq) {
        self.symbols.extend_from_slice(&other.symbols);
    }

    /// Returns `true` if `other` can be obtained from `self` by deleting
    /// accesses — equivalently, `self` results from `other` by a chain of
    /// `ins` applications (Equation 2 of the paper).
    #[must_use]
    pub fn is_supersequence_of(&self, other: &SymSeq) -> bool {
        let mut it = other.symbols.iter();
        let mut need = it.next();
        for s in &self.symbols {
            match need {
                None => return true,
                Some(n) if s == n => need = it.next(),
                Some(_) => {}
            }
        }
        need.is_none()
    }

    /// Computes one witness chain of `ins` positions transforming `other`
    /// into `self`, or `None` if `self` is not a supersequence of `other`.
    ///
    /// The witness is returned as the indices *in `self`* that do not belong
    /// to the (greedy, leftmost) embedding of `other`.
    #[must_use]
    pub fn insertion_witness(&self, other: &SymSeq) -> Option<Vec<usize>> {
        let mut inserted = Vec::new();
        let mut j = 0;
        for (i, s) in self.symbols.iter().enumerate() {
            if j < other.symbols.len() && *s == other.symbols[j] {
                j += 1;
            } else {
                inserted.push(i);
            }
        }
        (j == other.symbols.len()).then_some(inserted)
    }

    /// Lowers the symbolic sequence to a concrete data-read [`Trace`], giving
    /// symbol `k` the address `k * line_size` (each symbol on its own line).
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero.
    #[must_use]
    pub fn to_trace(&self, line_size: u64) -> Trace {
        assert!(line_size > 0, "line_size must be positive");
        self.symbols
            .iter()
            .map(|s| Access::read(u64::from(s.0) * line_size))
            .collect()
    }

    /// Lowers the sequence directly to a cache-line stream (symbol `k` →
    /// line `k`).
    #[must_use]
    pub fn to_lines(&self) -> Vec<LineId> {
        self.symbols
            .iter()
            .map(|s| LineId(u64::from(s.0)))
            .collect()
    }
}

impl FromStr for SymSeq {
    type Err = ParseSymSeqError;

    /// Parses letter sequences such as `"ABCA"`. Whitespace is ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut symbols = Vec::with_capacity(s.len());
        for c in s.chars() {
            if c.is_whitespace() {
                continue;
            }
            if c.is_ascii_uppercase() {
                symbols.push(Symbol(u16::from(c as u8 - b'A')));
            } else {
                return Err(ParseSymSeqError { offending: c });
            }
        }
        Ok(SymSeq { symbols })
    }
}

impl fmt::Display for SymSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.symbols {
            write!(f, "{}", s.letter())?;
        }
        Ok(())
    }
}

impl FromIterator<Symbol> for SymSeq {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Self {
        Self {
            symbols: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> SymSeq {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["", "A", "ABCA", "ABCDEFA"] {
            assert_eq!(seq(s).to_string(), s);
        }
    }

    #[test]
    fn parse_ignores_whitespace() {
        assert_eq!(seq("A B\tC A"), seq("ABCA"));
    }

    #[test]
    fn parse_rejects_lowercase_and_digits() {
        assert!("abc".parse::<SymSeq>().is_err());
        assert!("A1".parse::<SymSeq>().is_err());
        let err = "A1".parse::<SymSeq>().unwrap_err();
        assert!(err.to_string().contains('1'));
    }

    #[test]
    fn ins_at_every_position() {
        let m = seq("ABCA");
        assert_eq!(m.ins(0, Symbol(3)).to_string(), "DABCA");
        assert_eq!(m.ins(2, Symbol(3)).to_string(), "ABDCA");
        assert_eq!(m.ins(4, Symbol(3)).to_string(), "ABCAD");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn ins_out_of_bounds_panics() {
        let _ = seq("AB").ins(3, Symbol(0));
    }

    #[test]
    fn repeat_matches_paper_notation() {
        let m = seq("ABCA").repeat(3);
        assert_eq!(m.len(), 12);
        assert_eq!(m.to_string(), "ABCAABCAABCA");
        assert_eq!(m.unique_symbols(), 3);
        assert!(seq("AB").repeat(0).is_empty());
    }

    #[test]
    fn paper_section2_insertion_example() {
        // Mif = {ABCA}; Mpub = {ABACA} = ins(Mif, A) at position 2.
        let m_if = seq("ABCA");
        let m_pub = m_if.ins(2, Symbol(0));
        assert_eq!(m_pub.to_string(), "ABACA");
        assert!(m_pub.is_supersequence_of(&m_if));
        // Melse = {BACA} is also a subsequence of ABACA.
        assert!(m_pub.is_supersequence_of(&seq("BACA")));
    }

    #[test]
    fn supersequence_edge_cases() {
        let m = seq("ABCA");
        assert!(m.is_supersequence_of(&SymSeq::new()));
        assert!(m.is_supersequence_of(&m));
        assert!(!seq("AB").is_supersequence_of(&seq("BA")));
        assert!(!SymSeq::new().is_supersequence_of(&seq("A")));
    }

    #[test]
    fn insertion_witness_recovers_positions() {
        let orig = seq("ABCA");
        let pubbed = seq("ABACA");
        let w = pubbed.insertion_witness(&orig).unwrap();
        assert_eq!(w, vec![2]);
        assert!(pubbed.insertion_witness(&seq("AAAA")).is_none());
        // Rebuild via ins() chain and compare.
        let mut rebuilt = orig.clone();
        for &pos in &w {
            rebuilt = rebuilt.ins(pos, pubbed.symbols()[pos]);
        }
        assert_eq!(rebuilt, pubbed);
    }

    #[test]
    fn to_trace_assigns_distinct_lines() {
        let t = seq("ABA").to_trace(32);
        let lines = t.lines(32);
        assert_eq!(lines[0], lines[2]);
        assert_ne!(lines[0], lines[1]);
        assert_eq!(seq("ABA").to_lines(), vec![LineId(0), LineId(1), LineId(0)]);
    }

    #[test]
    fn symbol_letters() {
        assert_eq!(Symbol(0).letter(), "A");
        assert_eq!(Symbol(25).letter(), "Z");
        assert_eq!(Symbol(26).letter(), "#26");
    }
}
