//! Static verification of PUB soundness invariants.
//!
//! PUB (path upper-bounding) promises that after the transform, the two
//! arms of every conditional are architecturally exchangeable: same
//! instruction footprint, same ordered data-access signature, with only
//! functionally-innocuous statements inserted. Until now that promise was
//! enforced only by a `debug_assert!` inside the transform itself; this
//! module re-checks it on *any* program, so `mbcr lint` can catch a
//! corrupted artifact, a hand-edited benchmark, or a buggy pass.
//!
//! Checks and their diagnostic codes:
//!
//! | code     | invariant                                                    |
//! |----------|--------------------------------------------------------------|
//! | `PUB001` | conditional arms have equal instruction footprints           |
//! | `PUB002` | conditional arms have equal ordered data-access signatures   |
//! | `PUB003` | a transformed program only *inserts innocuous* statements    |
//! | `PUB004` | loop bounds are consistent (const `for` span ≤ `max_iter`; unchanged across the transform) |
//! | `PUB005` | touch references stay inside their array                     |
//! | `IR001`  | the program fails structural validation                      |
//!
//! The `CCA00x` codes are emitted by the cache analysis' simulator
//! cross-validation ([`crate::validate_classification`]) rather than by the
//! checks in this module:
//!
//! | code     | invariant                                                    |
//! |----------|--------------------------------------------------------------|
//! | `CCA001` | no simulated run misses on a must-analysis *always-hit*      |
//! | `CCA002` | no simulated run hits on a may-analysis *always-miss*        |
//! | `CCA003` | a *first-miss* access misses at most once per scope entry    |
//! | `CCA004` | observed hit/miss totals respect the static guaranteed bounds |
//!
//! [`verify_balance`] checks a single program; [`verify_pair`] additionally
//! embeds the original program into the transformed one to prove nothing
//! non-innocuous was inserted, dropped, or modified. Expressions have no
//! short-circuit operators ([`crate::Expr`] is total), so equal static
//! signatures imply equal dynamic access counts on every path — there is no
//! hidden data divergence for these checks to miss.

use std::fmt;

use crate::analysis::const_eval;
use crate::expr::Expr;
use crate::program::{ArrayId, Program};
use crate::stmt::Stmt;

/// Machine-readable diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// Conditional arms differ in instruction footprint.
    Pub001,
    /// Conditional arms differ in data-access signature.
    Pub002,
    /// Non-innocuous insertion, modification, or deletion.
    Pub003,
    /// Inconsistent loop bound.
    Pub004,
    /// Touch reference outside its array.
    Pub005,
    /// The program fails structural validation.
    InvalidProgram,
    /// A simulated run missed on an access the must-analysis proved hit.
    Cca001,
    /// A simulated run hit on an access the may-analysis proved miss.
    Cca002,
    /// A first-miss access missed more than once per persistence scope.
    Cca003,
    /// Observed hit/miss totals undercut the static guaranteed bounds.
    Cca004,
}

impl DiagCode {
    /// The stable string form (`"PUB001"` …) used by `mbcr lint` output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::Pub001 => "PUB001",
            DiagCode::Pub002 => "PUB002",
            DiagCode::Pub003 => "PUB003",
            DiagCode::Pub004 => "PUB004",
            DiagCode::Pub005 => "PUB005",
            DiagCode::InvalidProgram => "IR001",
            DiagCode::Cca001 => "CCA001",
            DiagCode::Cca002 => "CCA002",
            DiagCode::Cca003 => "CCA003",
            DiagCode::Cca004 => "CCA004",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verification finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What invariant was violated.
    pub code: DiagCode,
    /// The pre-order construct id the finding is anchored to, when any
    /// (matches [`crate::layout_program`] numbering).
    pub construct: Option<u32>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.construct {
            Some(id) => write!(f, "{} [construct {id}]: {}", self.code, self.message),
            None => write!(f, "{}: {}", self.code, self.message),
        }
    }
}

/// An ordered collection of findings; empty means the program verified.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics(Vec<Diagnostic>);

impl Diagnostics {
    /// An empty (passing) set.
    #[must_use]
    pub fn new() -> Diagnostics {
        Diagnostics(Vec::new())
    }

    /// Records a finding.
    pub fn push(&mut self, code: DiagCode, construct: Option<u32>, message: impl Into<String>) {
        self.0.push(Diagnostic {
            code,
            construct,
            message: message.into(),
        });
    }

    /// `true` when no invariant was violated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// The findings, in discovery order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.0.iter()
    }

    /// The distinct codes present (for test assertions).
    #[must_use]
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut v: Vec<DiagCode> = self.0.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Verifies the per-program invariants: every conditional's arms are
/// instruction- and access-balanced (`PUB001`/`PUB002`), constant `for`
/// spans respect their declared bound (`PUB004`), and touch references stay
/// in range (`PUB005`).
///
/// A *source* (pre-PUB) program will normally fail the balance checks —
/// that imbalance is exactly what PUB exists to remove. Run this on
/// transformed programs.
#[must_use]
pub fn verify_balance(program: &Program) -> Diagnostics {
    let mut w = BalanceWalker {
        program,
        next_id: 0,
        diags: Diagnostics::new(),
    };
    w.walk_seq(program.body());
    w.diags
}

/// Verifies that `pubbed` is `orig` plus innocuous insertions only: every
/// original statement appears, in order and unmodified, with the same
/// conditional structure and loop bounds; everything else inserted is a
/// [`Stmt::Touch`] or [`Stmt::Nop`].
///
/// Valid only for transforms that preserve the statement tree shape (the
/// paper configuration; loop-padding configs restructure loop bodies and
/// must be checked with [`verify_balance`] alone).
#[must_use]
pub fn verify_pair(orig: &Program, pubbed: &Program) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let mut next_id = 0u32;
    embed_seq(orig.body(), pubbed.body(), &mut next_id, &mut diags);
    diags
}

// ---------------------------------------------------------------------------
// Per-program balance checks

/// The architectural footprint of one statement occurrence — an IR-side
/// mirror of `mbcr-pub`'s token model (same flattening: loops unrolled to
/// `max_iter`, equalized conditionals contribute their then-arm).
#[derive(Debug, Clone, PartialEq)]
struct Token {
    data: Vec<(ArrayId, Expr)>,
    instrs: u32,
}

fn expr_loads(e: &Expr, out: &mut Vec<(ArrayId, Expr)>) {
    e.for_each_load(&mut |array, index| out.push((array, index.clone())));
}

fn flatten_stmt(s: &Stmt, out: &mut Vec<Token>) {
    match s {
        Stmt::Assign(_, e) => {
            let mut data = Vec::new();
            expr_loads(e, &mut data);
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let mut data = Vec::new();
            expr_loads(index, &mut data);
            expr_loads(value, &mut data);
            data.push((*array, index.clone()));
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
        }
        Stmt::Touch { refs, .. } => out.push(Token {
            data: refs.clone(),
            instrs: s.own_instr_count(),
        }),
        Stmt::Nop { count } => out.push(Token {
            data: Vec::new(),
            instrs: *count,
        }),
        Stmt::If {
            cond, then_branch, ..
        } => {
            let mut data = Vec::new();
            expr_loads(cond, &mut data);
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
            // Equalized arms flatten identically; nested imbalance is
            // reported separately, so assuming the then-arm here is safe.
            for inner in then_branch {
                flatten_stmt(inner, out);
            }
        }
        Stmt::While {
            cond,
            max_iter,
            body,
        } => {
            let mut data = Vec::new();
            expr_loads(cond, &mut data);
            let header = Token {
                data,
                instrs: s.own_instr_count(),
            };
            out.push(header.clone());
            for _ in 0..*max_iter {
                for inner in body {
                    flatten_stmt(inner, out);
                }
                out.push(header.clone());
            }
        }
        Stmt::For {
            from,
            to,
            max_iter,
            body,
            ..
        } => {
            let mut data = Vec::new();
            expr_loads(from, &mut data);
            expr_loads(to, &mut data);
            out.push(Token {
                data,
                instrs: s.own_instr_count(),
            });
            let iter = Token {
                data: Vec::new(),
                instrs: 2,
            };
            out.push(iter.clone());
            for _ in 0..*max_iter {
                for inner in body {
                    flatten_stmt(inner, out);
                }
                out.push(iter.clone());
            }
        }
    }
}

fn flatten_seq(stmts: &[Stmt]) -> Vec<Token> {
    let mut out = Vec::new();
    for s in stmts {
        flatten_stmt(s, &mut out);
    }
    out
}

struct BalanceWalker<'p> {
    program: &'p Program,
    next_id: u32,
    diags: Diagnostics,
}

impl BalanceWalker<'_> {
    fn walk_seq(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(..) | Stmt::Store { .. } | Stmt::Nop { .. } => {}
            Stmt::Touch { refs, .. } => {
                for (array, index) in refs {
                    if let Some(v) = const_eval(index) {
                        let decl = &self.program.arrays()[array.0 as usize];
                        let len = i64::from(decl.len);
                        if v < 0 || v >= len {
                            self.diags.push(
                                DiagCode::Pub005,
                                None,
                                format!("touch reads {}[{v}], outside 0..{len}", decl.name),
                            );
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let id = self.next_id;
                self.next_id += 1;
                self.walk_seq(then_branch);
                self.walk_seq(else_branch);
                // A constant condition decides the branch statically: only
                // one arm is feasible, so imbalance cannot split paths
                // (PUB's loop padding emits `if (1) { … } else {}` prefix
                // wrappers that rely on this).
                if const_eval(cond).is_some() {
                    return;
                }
                let then_toks = flatten_seq(then_branch);
                let else_toks = flatten_seq(else_branch);
                if then_toks != else_toks {
                    let ti: u64 = then_toks.iter().map(|t| u64::from(t.instrs)).sum();
                    let ei: u64 = else_toks.iter().map(|t| u64::from(t.instrs)).sum();
                    let td: Vec<&(ArrayId, Expr)> =
                        then_toks.iter().flat_map(|t| &t.data).collect();
                    let ed: Vec<&(ArrayId, Expr)> =
                        else_toks.iter().flat_map(|t| &t.data).collect();
                    if td != ed {
                        self.diags.push(
                            DiagCode::Pub002,
                            Some(id),
                            format!(
                                "arm data signatures differ ({} vs {} references)",
                                td.len(),
                                ed.len()
                            ),
                        );
                    } else {
                        // Equal data but unequal tokens: instruction totals
                        // or span chunking differ — both change the fetch
                        // footprint under random placement.
                        self.diags.push(
                            DiagCode::Pub001,
                            Some(id),
                            format!("arm instruction footprints differ ({ti} vs {ei} instrs)"),
                        );
                    }
                }
            }
            Stmt::While { body, .. } => {
                self.next_id += 1;
                self.walk_seq(body);
            }
            Stmt::For {
                from,
                to,
                max_iter,
                body,
                ..
            } => {
                let id = self.next_id;
                self.next_id += 1;
                if let (Some(lo), Some(hi)) = (const_eval(from), const_eval(to)) {
                    let span = (hi - lo).max(0);
                    if span > i64::from(*max_iter) {
                        self.diags.push(
                            DiagCode::Pub004,
                            Some(id),
                            format!(
                                "constant for-range spans {span} iterations > bound {max_iter}"
                            ),
                        );
                    }
                }
                self.walk_seq(body);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pair-mode embedding

/// Constructs (`if`/`while`/`for`) inside one statement, itself included.
fn construct_count_of(s: &Stmt) -> u32 {
    match s {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            1 + then_branch.iter().map(construct_count_of).sum::<u32>()
                + else_branch.iter().map(construct_count_of).sum::<u32>()
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => {
            1 + body.iter().map(construct_count_of).sum::<u32>()
        }
        _ => 0,
    }
}

/// Greedy ordered embedding of `orig` into `pubbed`: PUB only inserts, so
/// the original statements must appear as an in-order subsequence with
/// matching structure. `next_id` numbers `pubbed`'s constructs pre-order.
fn embed_seq(orig: &[Stmt], pubbed: &[Stmt], next_id: &mut u32, diags: &mut Diagnostics) {
    let mut oi = 0;
    for p in pubbed {
        if oi < orig.len() && try_match(&orig[oi], p, next_id, diags) {
            oi += 1;
        } else if p.is_innocuous() {
            *next_id += construct_count_of(p);
        } else {
            let id = *next_id;
            *next_id += construct_count_of(p);
            diags.push(
                DiagCode::Pub003,
                None,
                format!("non-innocuous statement inserted or modified near construct {id}: {p:?}"),
            );
        }
    }
    for missing in &orig[oi..] {
        diags.push(
            DiagCode::Pub003,
            None,
            format!("original statement dropped by the transform: {missing:?}"),
        );
    }
}

/// Structural match of one original statement against one transformed
/// statement, recursing into matched constructs.
fn try_match(o: &Stmt, p: &Stmt, next_id: &mut u32, diags: &mut Diagnostics) -> bool {
    match (o, p) {
        (Stmt::Assign(..), Stmt::Assign(..))
        | (Stmt::Store { .. }, Stmt::Store { .. })
        | (Stmt::Touch { .. }, Stmt::Touch { .. })
        | (Stmt::Nop { .. }, Stmt::Nop { .. }) => o == p,
        (
            Stmt::If {
                cond: oc,
                then_branch: ot,
                else_branch: oe,
            },
            Stmt::If {
                cond: pc,
                then_branch: pt,
                else_branch: pe,
            },
        ) => {
            if oc != pc {
                return false;
            }
            *next_id += 1;
            embed_seq(ot, pt, next_id, diags);
            embed_seq(oe, pe, next_id, diags);
            true
        }
        (
            Stmt::While {
                cond: oc,
                max_iter: om,
                body: ob,
            },
            Stmt::While {
                cond: pc,
                max_iter: pm,
                body: pb,
            },
        ) => {
            if oc != pc {
                return false;
            }
            let id = *next_id;
            *next_id += 1;
            if om != pm {
                diags.push(
                    DiagCode::Pub004,
                    Some(id),
                    format!("while bound changed by the transform ({om} -> {pm})"),
                );
            }
            embed_seq(ob, pb, next_id, diags);
            true
        }
        (
            Stmt::For {
                var: ov,
                from: of,
                to: oto,
                max_iter: om,
                body: ob,
            },
            Stmt::For {
                var: pv,
                from: pf,
                to: pto,
                max_iter: pm,
                body: pb,
            },
        ) => {
            if ov != pv || of != pf || oto != pto {
                return false;
            }
            let id = *next_id;
            *next_id += 1;
            if om != pm {
                diags.push(
                    DiagCode::Pub004,
                    Some(id),
                    format!("for bound changed by the transform ({om} -> {pm})"),
                );
            }
            embed_seq(ob, pb, next_id, diags);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    #[test]
    fn balanced_arms_pass_clean() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let x = b.var("x");
        // then: x = a[0] (4 instrs, reads a[0]);
        // else: touch a[0] + 3 pads (4 instrs, reads a[0]).
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Assign(x, Expr::load(a, c(0)))],
            vec![Stmt::Touch {
                refs: vec![(a, c(0))],
                pad: 3,
            }],
        ));
        let p = b.build().unwrap();
        let d = verify_balance(&p);
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn unbalanced_instrs_are_pub001() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Nop { count: 4 }],
            vec![Stmt::Nop { count: 2 }],
        ));
        let p = b.build().unwrap();
        let d = verify_balance(&p);
        assert_eq!(d.codes(), vec![DiagCode::Pub001]);
        assert_eq!(d.iter().next().unwrap().construct, Some(0));
    }

    #[test]
    fn unbalanced_data_is_pub002() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let x = b.var("x");
        // Same instruction totals (1 each), different data refs.
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Touch {
                refs: vec![(a, c(0))],
                pad: 0,
            }],
            vec![Stmt::Nop { count: 1 }],
        ));
        let p = b.build().unwrap();
        assert_eq!(verify_balance(&p).codes(), vec![DiagCode::Pub002]);
    }

    #[test]
    fn nested_imbalance_is_anchored_to_inner_construct() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::if_(
                Expr::var(x).gt(c(5)),
                vec![Stmt::Nop { count: 3 }],
                vec![Stmt::Nop { count: 3 }],
            )],
            vec![
                // Mirror the inner if so the outer arms balance.
                Stmt::if_(
                    Expr::var(x).gt(c(5)),
                    vec![Stmt::Nop { count: 3 }],
                    vec![Stmt::Nop { count: 1 }], // inner imbalance
                ),
            ],
        ));
        let p = b.build().unwrap();
        let d = verify_balance(&p);
        // Inner construct 2 is unbalanced; the outer arms then differ too
        // (the flattening takes then-arms), so we get both findings — the
        // inner one anchored to construct 2.
        assert!(d
            .iter()
            .any(|x| x.code == DiagCode::Pub001 && x.construct == Some(2)));
    }

    #[test]
    fn const_for_overrun_is_pub004() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::for_(i, c(0), c(9), 4, vec![Stmt::Nop { count: 1 }]));
        let p = b.build().unwrap();
        assert_eq!(verify_balance(&p).codes(), vec![DiagCode::Pub004]);
    }

    #[test]
    fn touch_out_of_range_is_pub005() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        b.push(Stmt::Touch {
            refs: vec![(a, c(7))],
            pad: 0,
        });
        let p = b.build().unwrap();
        assert_eq!(verify_balance(&p).codes(), vec![DiagCode::Pub005]);
    }

    #[test]
    fn pair_accepts_innocuous_insertions() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::load(a, c(0))));
        b.push(Stmt::if_(Expr::var(x).gt(c(0)), vec![], vec![]));
        let orig = b.build().unwrap();

        let mut body = vec![Stmt::Touch {
            refs: vec![(a, c(1))],
            pad: 0,
        }];
        body.extend(orig.body().to_vec());
        body.insert(2, Stmt::Nop { count: 2 });
        let pubbed = orig.with_body(body).unwrap();
        let d = verify_pair(&orig, &pubbed);
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn pair_flags_non_innocuous_insertion_and_drop() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::Assign(x, c(1)));
        b.push(Stmt::Assign(x, c(2)));
        let orig = b.build().unwrap();

        // Replace the second assign with a different one: one insertion,
        // one drop — both PUB003.
        let pubbed = orig
            .with_body(vec![Stmt::Assign(x, c(1)), Stmt::Assign(x, c(9))])
            .unwrap();
        let d = verify_pair(&orig, &pubbed);
        assert_eq!(d.codes(), vec![DiagCode::Pub003]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn pair_flags_changed_loop_bound() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(4)),
            4,
            vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
        ));
        let orig = b.build().unwrap();
        let pubbed = orig
            .with_body(vec![Stmt::while_(
                Expr::var(i).lt(c(4)),
                8,
                vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
            )])
            .unwrap();
        let d = verify_pair(&orig, &pubbed);
        assert_eq!(d.codes(), vec![DiagCode::Pub004]);
        assert_eq!(d.iter().next().unwrap().construct, Some(0));
    }
}
