//! `matmult` — matrix multiplication (Mälardalen `matmult.c`, scaled from
//! 20×20 to 8×8 so the full Table 2 campaign stays laptop-sized).
//!
//! Single path: three nested fixed-bound loops.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Matrix side length (scaled down from 20).
pub const DIM: u32 = 8;

/// Builds the `matmult` program (`C = A * B`).
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("matmult");
    let a = b.array("a", DIM * DIM);
    let bm = b.array("b", DIM * DIM);
    let c = b.array("c", DIM * DIM);
    let i = b.var("i");
    let j = b.var("j");
    let k = b.var("k");
    let sum = b.var("sum");

    let dim = i64::from(DIM);
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(dim),
        DIM,
        vec![Stmt::for_(
            j,
            Expr::c(0),
            Expr::c(dim),
            DIM,
            vec![
                Stmt::Assign(sum, Expr::c(0)),
                Stmt::for_(
                    k,
                    Expr::c(0),
                    Expr::c(dim),
                    DIM,
                    vec![Stmt::Assign(
                        sum,
                        Expr::var(sum).add(
                            Expr::load(a, Expr::var(i).mul(Expr::c(dim)).add(Expr::var(k))).mul(
                                Expr::load(bm, Expr::var(k).mul(Expr::c(dim)).add(Expr::var(j))),
                            ),
                        ),
                    )],
                ),
                Stmt::store(
                    c,
                    Expr::var(i).mul(Expr::c(dim)).add(Expr::var(j)),
                    Expr::var(sum),
                ),
            ],
        )],
    ));
    b.build().expect("matmult is well-formed")
}

/// Default input: fixed pseudo-random small integers.
#[must_use]
pub fn default_input() -> Inputs {
    let p = program();
    let a = p.array_by_name("a").expect("a");
    let bm = p.array_by_name("b").expect("b");
    Inputs::new()
        .with_array(a, (0..DIM * DIM).map(|k| i64::from(k % 10)).collect())
        .with_array(bm, (0..DIM * DIM).map(|k| i64::from(k * 3 % 7)).collect())
}

/// Single-path: one canonical vector.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    vec![NamedInput {
        name: "default".into(),
        inputs: default_input(),
    }]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "matmult",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::SinglePath,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn multiplies_correctly() {
        let p = program();
        let run = execute(&p, &default_input()).unwrap();
        let av: Vec<i64> = (0..DIM * DIM).map(|k| i64::from(k % 10)).collect();
        let bv: Vec<i64> = (0..DIM * DIM).map(|k| i64::from(k * 3 % 7)).collect();
        let c = run.state.array(p.array_by_name("c").unwrap());
        let d = DIM as usize;
        for i in 0..d {
            for j in 0..d {
                let expect: i64 = (0..d).map(|k| av[i * d + k] * bv[k * d + j]).sum();
                assert_eq!(c[i * d + j], expect, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn is_single_path_with_fixed_trace_length() {
        let p = program();
        let block = |v: i64| {
            let a = p.array_by_name("a").unwrap();
            let bm = p.array_by_name("b").unwrap();
            Inputs::new()
                .with_array(a, vec![v; (DIM * DIM) as usize])
                .with_array(bm, vec![v; (DIM * DIM) as usize])
        };
        let r1 = execute(&p, &block(1)).unwrap();
        let r2 = execute(&p, &block(9)).unwrap();
        assert_eq!(r1.path.path_id(), r2.path.path_id());
        assert_eq!(r1.trace, r2.trace);
        // 512 MACs * 2 loads + 64 stores = 1088 data accesses.
        assert_eq!(r1.trace.data_accesses().count(), 1088);
    }
}
