//! `insertsort` — insertion sort of 10 elements (Mälardalen
//! `insertsort.c`).
//!
//! The default input is fully reversed: every inner-loop check swaps, the
//! iteration counts are maximal, and the benchmark behaves as single-path —
//! which is how the paper classifies it (Figure 5 groups `insertsort` with
//! the single-path benchmarks under default inputs).

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Number of elements (as in the original).
pub const N: u32 = 10;

/// Builds the `insertsort` program.
///
/// The original's `while (j > 0 && a[j-1] > a[j])` short-circuit guard is
/// expressed as a bounded while over `j > 0` with the comparison inside
/// (the IR has no short-circuit evaluation; see `mbcr-ir` docs):
///
/// ```c
/// for (i = 1; i < 10; i++) {
///   j = i;
///   while (j > 0) {
///     if (a[j-1] > a[j]) { swap(a, j-1, j); j--; } else j = 0;
///   }
/// }
/// ```
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("insertsort");
    let a = b.array("a", N);
    let i = b.var("i");
    let j = b.var("j");
    let tmp = b.var("tmp");

    b.push(Stmt::for_(
        i,
        Expr::c(1),
        Expr::c(i64::from(N)),
        N - 1,
        vec![
            Stmt::Assign(j, Expr::var(i)),
            Stmt::while_(
                Expr::var(j).gt(Expr::c(0)),
                N - 1,
                vec![Stmt::if_(
                    Expr::load(a, Expr::var(j).sub(Expr::c(1))).gt(Expr::load(a, Expr::var(j))),
                    vec![
                        Stmt::Assign(tmp, Expr::load(a, Expr::var(j))),
                        Stmt::store(a, Expr::var(j), Expr::load(a, Expr::var(j).sub(Expr::c(1)))),
                        Stmt::store(a, Expr::var(j).sub(Expr::c(1)), Expr::var(tmp)),
                        Stmt::Assign(j, Expr::var(j).sub(Expr::c(1))),
                    ],
                    vec![Stmt::Assign(j, Expr::c(0))],
                )],
            ),
        ],
    ));
    b.build().expect("insertsort is well-formed")
}

fn array_inputs(p: &Program, values: Vec<i64>) -> Inputs {
    Inputs::new().with_array(p.array_by_name("a").expect("a"), values)
}

/// Default input: reversed order — maximal work, the worst case.
#[must_use]
pub fn default_input() -> Inputs {
    array_inputs(&program(), (0..N).rev().map(i64::from).collect())
}

/// Reversed (worst), sorted (best) and shuffled inputs.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    let p = program();
    vec![
        NamedInput {
            name: "reversed".into(),
            inputs: array_inputs(&p, (0..N).rev().map(i64::from).collect()),
        },
        NamedInput {
            name: "sorted".into(),
            inputs: array_inputs(&p, (0..N).map(i64::from).collect()),
        },
        NamedInput {
            name: "shuffled".into(),
            inputs: array_inputs(&p, vec![4, 1, 8, 0, 9, 3, 7, 2, 6, 5]),
        },
    ]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "insertsort",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::SinglePath,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn sorts_every_vector() {
        let p = program();
        let a = p.array_by_name("a").unwrap();
        for v in input_vectors() {
            let run = execute(&p, &v.inputs).unwrap();
            let out = run.state.array(a);
            assert!(
                out.windows(2).all(|w| w[0] <= w[1]),
                "vector {}: {out:?}",
                v.name
            );
        }
    }

    #[test]
    fn reversed_input_maximizes_inner_iterations() {
        let p = program();
        let worst = execute(&p, &default_input()).unwrap();
        let best = execute(&p, &input_vectors()[1].inputs).unwrap();
        assert!(
            worst.path.total_iterations() > best.path.total_iterations(),
            "reversed {} vs sorted {}",
            worst.path.total_iterations(),
            best.path.total_iterations()
        );
        assert!(worst.trace.len() > best.trace.len());
    }
}
