//! Statements of the mbcr IR.

use crate::expr::Expr;
use crate::program::{ArrayId, Var};

/// A statement.
///
/// The IR is deliberately small — just enough to express the Mälardalen
/// control structures (straight-line code, two-way conditionals, bounded
/// `while`/`for` loops) plus the two statement kinds PUB inserts:
/// [`Touch`](Stmt::Touch) (functionally-innocuous loads of the sibling
/// branch's operands) and [`Nop`](Stmt::Nop) (instruction-count padding).
///
/// Loops carry an explicit `max_iter` bound: the interpreter enforces it
/// (erroring if exceeded) and PUB's static access signatures unroll to it,
/// mirroring the paper's requirement that analysis inputs trigger the
/// highest loop bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = expr`.
    Assign(Var, Expr),
    /// `array[index] = value` — emits the index/value loads then one write.
    Store {
        /// Destination array.
        array: ArrayId,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// Two-way conditional. `cond != 0` selects `then_branch`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond != 0`.
        then_branch: Vec<Stmt>,
        /// Taken when `cond == 0`.
        else_branch: Vec<Stmt>,
    },
    /// Pre-tested loop, at most `max_iter` iterations.
    While {
        /// Loop condition, re-evaluated before every iteration.
        cond: Expr,
        /// Static bound on the number of iterations.
        max_iter: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Counted loop: `for var in from..to { body }` (`to` exclusive,
    /// both evaluated once at entry), at most `max_iter` iterations.
    For {
        /// Induction variable.
        var: Var,
        /// Initial value (evaluated once).
        from: Expr,
        /// Exclusive upper bound (evaluated once).
        to: Expr,
        /// Static bound on the number of iterations.
        max_iter: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// PUB-inserted innocuous loads: reads `array[index]` for each ref,
    /// discarding the values, plus `pad` extra no-op instructions.
    ///
    /// Index expressions are evaluated *silently* (their own `Load` nodes
    /// emit no trace accesses): the inserted instruction reuses the address
    /// already computed by the preceding inserted load, exactly one data
    /// read per ref. Out-of-range indices wrap into the array instead of
    /// erroring — a touch must never fault.
    Touch {
        /// The loads to perform (array, index expression).
        refs: Vec<(ArrayId, Expr)>,
        /// Additional instruction-only padding.
        pad: u32,
    },
    /// PUB-inserted instruction padding: `count` no-op instructions.
    Nop {
        /// Number of no-op instructions.
        count: u32,
    },
}

impl Stmt {
    /// Convenience constructor for [`Stmt::Store`].
    #[must_use]
    pub fn store(array: ArrayId, index: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            array,
            index,
            value,
        }
    }

    /// Convenience constructor for [`Stmt::If`].
    #[must_use]
    pub fn if_(cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        }
    }

    /// Convenience constructor for [`Stmt::While`].
    #[must_use]
    pub fn while_(cond: Expr, max_iter: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::While {
            cond,
            max_iter,
            body,
        }
    }

    /// Convenience constructor for [`Stmt::For`].
    #[must_use]
    pub fn for_(var: Var, from: Expr, to: Expr, max_iter: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var,
            from,
            to,
            max_iter,
            body,
        }
    }

    /// Number of instructions of the statement itself, excluding nested
    /// bodies (loop headers count their per-check instructions once; see
    /// [`crate::layout_program`] for how often each span is fetched).
    ///
    /// Uses the RISC cost model of [`Expr::instr_cost`]: a statement
    /// compiles to its expressions' code plus one instruction for the
    /// store/move/branch it performs.
    #[must_use]
    pub fn own_instr_count(&self) -> u32 {
        match self {
            Stmt::Assign(_, e) => e.instr_cost() + 1,
            Stmt::Store { index, value, .. } => index.instr_cost() + value.instr_cost() + 2,
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => cond.instr_cost() + 1,
            Stmt::For { from, to, .. } => from.instr_cost() + to.instr_cost() + 1,
            // One instruction per ref (index evaluation is silent register
            // reuse), plus the padding.
            Stmt::Touch { refs, pad } => refs.len() as u32 + pad,
            Stmt::Nop { count } => *count,
        }
    }

    /// Returns `true` for statements PUB may insert (they never modify
    /// program state).
    #[must_use]
    pub fn is_innocuous(&self) -> bool {
        matches!(self, Stmt::Touch { .. } | Stmt::Nop { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn own_instr_counts() {
        let a = ArrayId(0);
        let v = Var(0);
        // RISC cost model: li = 1, load = addr+ld = 2 (+ index code),
        // operator = 1, plus one store/move/branch per statement.
        assert_eq!(Stmt::Assign(v, Expr::c(1)).own_instr_count(), 2);
        assert_eq!(
            Stmt::Assign(v, Expr::load(a, Expr::c(0))).own_instr_count(),
            4
        );
        assert_eq!(
            Stmt::store(a, Expr::c(0), Expr::load(a, Expr::c(1))).own_instr_count(),
            6
        );
        assert_eq!(
            Stmt::if_(Expr::load(a, Expr::c(0)).gt(Expr::c(0)), vec![], vec![]).own_instr_count(),
            6
        );
        assert_eq!(Stmt::Nop { count: 5 }.own_instr_count(), 5);
        assert_eq!(
            Stmt::Touch {
                refs: vec![(a, Expr::c(0)), (a, Expr::c(1))],
                pad: 3
            }
            .own_instr_count(),
            5
        );
        // Index evaluation inside a touch is silent: still one instruction.
        assert_eq!(
            Stmt::Touch {
                refs: vec![(a, Expr::load(a, Expr::c(0)))],
                pad: 0
            }
            .own_instr_count(),
            1
        );
    }

    #[test]
    fn innocuous_classification() {
        assert!(Stmt::Nop { count: 1 }.is_innocuous());
        assert!(Stmt::Touch {
            refs: vec![],
            pad: 0
        }
        .is_innocuous());
        assert!(!Stmt::Assign(Var(0), Expr::c(0)).is_innocuous());
    }
}
