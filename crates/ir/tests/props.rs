//! Property tests for the Ball–Larus path layer: on randomly generated
//! programs, the static path space must (a) contain every path the
//! interpreter actually takes, (b) map observed paths to ids and back
//! bijectively, and (c) predict each path's access signature exactly.
//!
//! Programs are generated from a per-case seed (no fixed corpus): nested
//! conditionals, bounded `while`/`for` loops (constant and input-dependent
//! bounds), loads and arithmetic, then executed on a spread of random
//! input vectors.

use mbcr_ir::{execute, Expr, Inputs, PathSpace, Program, ProgramBuilder, Stmt, Var};
use proptest::prelude::*;

const ARRAY_LEN: u32 = 16;

/// Deterministic per-case generator (SplitMix64), independent of the shim's
/// internals so a failing seed reproduces from the panic message alone.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// A small arithmetic expression over the program's variables; loads use
/// constant in-range indices only (the interpreter faults on out-of-range
/// indices, and these programs must always run).
fn gen_expr(g: &mut Gen, vars: &[Var], arr: mbcr_ir::ArrayId) -> Expr {
    match g.below(5) {
        0 => Expr::c(g.below(9) as i64 - 4),
        1 | 2 => Expr::var(vars[g.below(vars.len() as u64) as usize]),
        3 => Expr::var(vars[g.below(vars.len() as u64) as usize]).add(Expr::c(g.below(5) as i64)),
        _ => Expr::load(arr, Expr::c(g.below(u64::from(ARRAY_LEN)) as i64)),
    }
}

/// Variable pools for generation. General variables are fair game as
/// assignment targets; loop variables (one per nesting depth) are only
/// ever written by the loop construct that owns them — the interpreter
/// *faults* on a loop exceeding `max_iter` (it never silently caps), so a
/// body statement clobbering a live counter would make generated programs
/// crash instead of exploring paths.
struct Pools {
    general: Vec<Var>,
    loops: Vec<Var>,
}

fn gen_seq(g: &mut Gen, p: &Pools, arr: mbcr_ir::ArrayId, depth: u32) -> Vec<Stmt> {
    let len = 1 + g.below(3) as usize;
    (0..len).map(|_| gen_stmt(g, p, arr, depth)).collect()
}

fn gen_stmt(g: &mut Gen, p: &Pools, arr: mbcr_ir::ArrayId, depth: u32) -> Stmt {
    let v = p.general[g.below(p.general.len() as u64) as usize];
    let choice = if depth == 0 { g.below(3) } else { g.below(6) };
    match choice {
        // Straight-line work.
        0 | 1 => Stmt::Assign(v, gen_expr(g, &p.general, arr)),
        2 => Stmt::store(
            arr,
            Expr::c(g.below(u64::from(ARRAY_LEN)) as i64),
            Expr::var(v),
        ),
        // A data-dependent conditional.
        3 => Stmt::if_(
            Expr::var(v).gt(Expr::c(g.below(7) as i64 - 3)),
            gen_seq(g, p, arr, depth - 1),
            gen_seq(g, p, arr, depth - 1),
        ),
        // A pre-tested loop on a decremented dedicated counter, its seed
        // value folded into `[-(max_iter), max_iter]`: at most `max_iter`
        // iterations, input-dependent count.
        4 => {
            let counter = p.loops[depth as usize - 1];
            let max_iter = 2 + g.below(4) as u32;
            let mut body = gen_seq(g, p, arr, depth - 1);
            body.push(Stmt::Assign(counter, Expr::var(counter).sub(Expr::c(1))));
            Stmt::if_(
                Expr::c(1),
                vec![
                    Stmt::Assign(counter, Expr::var(v).rem(Expr::c(i64::from(max_iter) + 1))),
                    Stmt::while_(Expr::var(counter).gt(Expr::c(0)), max_iter, body),
                ],
                vec![],
            )
        }
        // A counted loop: constant bound (an Exact iteration set) or an
        // input-dependent bound folded under `max_iter` (an UpTo set);
        // loop-var indexing stays in array range via the bound itself.
        _ => {
            let idx = p.loops[depth as usize - 1];
            let max_iter = 2 + g.below(5) as u32;
            let to = if g.below(2) == 0 {
                Expr::c(i64::from(max_iter))
            } else {
                Expr::var(v).rem(Expr::c(i64::from(max_iter) + 1))
            };
            let mut body = gen_seq(g, p, arr, depth - 1);
            body.push(Stmt::Assign(
                p.general[g.below(p.general.len() as u64) as usize],
                Expr::load(arr, Expr::var(idx)),
            ));
            Stmt::for_(idx, Expr::c(0), to, max_iter, body)
        }
    }
}

fn gen_program(seed: u64) -> (Program, Vec<Inputs>) {
    let mut g = Gen::new(seed);
    let mut b = ProgramBuilder::new("prop");
    let arr = b.array("m", ARRAY_LEN);
    let pools = Pools {
        general: (0..4).map(|i| b.var(&format!("x{i}"))).collect(),
        loops: (0..2).map(|i| b.var(&format!("l{i}"))).collect(),
    };
    for stmt in gen_seq(&mut g, &pools, arr, 2) {
        b.push(stmt);
    }
    let program = b
        .build()
        .expect("generated programs are structurally valid");
    // Loop-variable loads index `m[i]` with `i < max_iter ≤ 6 < ARRAY_LEN`,
    // and loop bounds are folded under max_iter at loop entry.
    let inputs = (0..6)
        .map(|_| {
            let mut inp = Inputs::new();
            for &v in &pools.general {
                inp = inp.with_var(v, g.below(11) as i64 - 4);
            }
            inp
        })
        .collect();
    (program, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Static ⊇ observed, id bijection, and exact signature prediction on
    /// random programs.
    #[test]
    fn observed_paths_lie_in_the_static_space(seed in any::<u64>(),) {
        let (program, inputs) = gen_program(seed);
        let space = PathSpace::of(&program);
        for inp in &inputs {
            let run = execute(&program, inp)
                .expect("generated programs execute on generated inputs");
            prop_assert!(
                space.contains(&run.path),
                "observed path escapes the static space (seed {seed:#x})"
            );
            let sig = space.signature_of(&run.path).expect("member signature");
            prop_assert_eq!(
                sig.instr_fetches + sig.data_accesses,
                run.trace.len() as u64,
            );
            if !space.is_saturated() {
                let id = space.index_of(&run.path).expect("member index");
                prop_assert!(id < space.num_paths());
                prop_assert_eq!(space.record_of(id).expect("roundtrip"), run.path);
            }
        }
    }

    /// `record_of` and `index_of` are mutually inverse over random ids,
    /// not just over interpreter-produced records.
    #[test]
    fn path_ids_roundtrip_from_either_side(seed in any::<u64>(),) {
        let (program, _) = gen_program(seed);
        let space = PathSpace::of(&program);
        if space.is_saturated() || space.num_paths() == 0 {
            return Ok(());
        }
        let mut g = Gen::new(seed ^ 0xD1F3);
        for _ in 0..16 {
            let id = u128::from(g.next()) % space.num_paths();
            let record = space.record_of(id).expect("in-range id decodes");
            prop_assert_eq!(space.index_of(&record).expect("decoded record encodes"), id);
            prop_assert!(space.contains(&record));
        }
    }

    /// Full enumeration agrees with the index bijection on small spaces.
    #[test]
    fn enumeration_is_exhaustive_on_small_spaces(seed in any::<u64>(),) {
        let (program, inputs) = gen_program(seed);
        let space = PathSpace::of(&program);
        if space.is_saturated() || space.num_paths() > 512 {
            return Ok(());
        }
        let all = space.enumerate_paths(512).expect("under the cap");
        prop_assert_eq!(all.len() as u128, space.num_paths());
        for path in &all {
            prop_assert_eq!(space.index_of(&path.record).expect("enumerated member"), path.index);
        }
        let ids: std::collections::HashSet<u128> = all.iter().map(|p| p.index).collect();
        prop_assert_eq!(ids.len() as u128, space.num_paths());
        for inp in &inputs {
            let run = execute(&program, inp).expect("runs");
            let id = space.index_of(&run.path).expect("observed member");
            prop_assert!(ids.contains(&id), "observed id missing from enumeration");
        }
    }
}
