//! The content-addressed artifact store.
//!
//! One sweep run owns one directory:
//!
//! ```text
//! <run-dir>/
//!   manifest.json                  # spec + per-job status and summaries
//!   table2.csv                     # the paper's Table 2 layout, one row per cell
//!   jobs/<key>.json                # full analysis result, keyed by content hash
//!   jobs/<key>.samples.slog        # chunk log of the final campaign sample
//!   stages/<digest>.json           # per-stage intermediate artifacts
//!   stages/<digest>.samples.slog   # streamed campaign chunk logs (checkpoints)
//! ```
//!
//! Job keys hash everything result-affecting ([`crate::JobSpec::key`]), so
//! `has_artifact` is the whole cache policy: a present artifact is, by
//! construction, the artifact a re-run would produce. Stage artifacts are
//! keyed by stage digest ([`mbcr::stage::StageDigests`]) and shared across
//! sweeps in the same store — a warm re-run after a knob change resumes
//! from the last stage the change did not invalidate.
//!
//! JSON artifacts are written atomically (unique temp file + rename), so
//! an interrupted sweep never leaves torn documents behind; readers
//! additionally validate schema tags before treating any file as a cache
//! hit. Campaign samples are different: they stream through [`SampleLog`],
//! an append-only, CRC-framed chunk log that is never rewritten whole —
//! an interrupted writer loses at most its torn final frame, and the valid
//! prefix seeds the resumed campaign.

use std::fs;
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};

use mbcr::stage::StageStore;
use mbcr_json::{csv_field, Json};

use crate::JobSummary;

/// Handle on a run directory.
///
/// A store separates two concerns: the **content root** (`jobs/`,
/// `stages/` — content-addressed, shareable across sweeps) and the **run
/// scope** (`manifest.json`, `table2.csv` — the description of *one*
/// sweep). A store opened with [`ArtifactStore::open`] keeps both at the
/// same directory, which is the single-sweep layout every `mbcr sweep`
/// run produces. A multi-sweep service derives one scope per submitted
/// sweep with [`ArtifactStore::run_scope`]: all scopes share the content
/// root (so identical stages execute once, store-wide), while each keeps
/// its own manifest and table under `sweeps/<id>/`.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    run_dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a run directory.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))?;
        fs::create_dir_all(root.join("stages"))?;
        let run_dir = root.clone();
        Ok(Self { root, run_dir })
    }

    /// A scope over the same content root whose run-level artifacts
    /// (manifest, Table 2, record journal) live under `sweeps/<id>/` —
    /// the per-sweep view a multi-sweep service finalizes into. Content
    /// paths (`jobs/`, `stages/`) are unchanged, so every scope of one
    /// store shares one content-addressed artifact universe.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the scope directory cannot be created.
    pub fn run_scope(&self, id: &str) -> io::Result<Self> {
        let run_dir = self.root.join("sweeps").join(id);
        fs::create_dir_all(&run_dir)?;
        Ok(Self {
            root: self.root.clone(),
            run_dir,
        })
    }

    /// The content root (shared by every run scope of this store).
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The run-scope directory holding this scope's manifest and table
    /// (equals [`ArtifactStore::root`] for stores opened directly).
    #[must_use]
    pub fn run_dir(&self) -> &Path {
        &self.run_dir
    }

    /// The service queue directory (`queue/` under the content root):
    /// one JSON entry per submitted sweep, the durable state a killed
    /// service daemon resumes its whole queue from.
    #[must_use]
    pub fn queue_dir(&self) -> PathBuf {
        self.root.join("queue")
    }

    /// Path of this scope's completed-job journal: one JSON line per
    /// terminal job record, appended as the sweep progresses, so a
    /// restarted daemon resumes mid-sweep with truthful statuses.
    #[must_use]
    pub fn records_path(&self) -> PathBuf {
        self.run_dir.join("records.jsonl")
    }

    /// Path of a job's JSON artifact.
    #[must_use]
    pub fn job_path(&self, key: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{key}.json"))
    }

    /// Path of a job's sample chunk log.
    #[must_use]
    pub fn sample_path(&self, key: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{key}.samples.slog"))
    }

    /// Path of a stage artifact (content-addressed by stage digest).
    #[must_use]
    pub fn stage_path(&self, digest: u64) -> PathBuf {
        self.root.join("stages").join(format!("{digest:016x}.json"))
    }

    /// Path of a stage's streamed sample chunk log (the campaign stage's
    /// intra-stage checkpoints live here).
    #[must_use]
    pub fn stage_samples_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("stages")
            .join(format!("{digest:016x}.samples.slog"))
    }

    /// Path of the manifest (scoped — see [`ArtifactStore::run_scope`]).
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.run_dir.join("manifest.json")
    }

    /// Path of the Table 2 CSV (scoped — see [`ArtifactStore::run_scope`]).
    #[must_use]
    pub fn table2_path(&self) -> PathBuf {
        self.run_dir.join("table2.csv")
    }

    /// Runs per frame of a job-level sample log.
    pub const JOB_SAMPLE_CHUNK: usize = 65_536;

    /// Whether a completed artifact exists for `key`.
    #[must_use]
    pub fn has_artifact(&self, key: &str) -> bool {
        self.job_path(key).is_file()
    }

    /// Loads a job's sample from its chunk log (the valid prefix; a torn
    /// tail is discarded). `None` when no log exists.
    #[must_use]
    pub fn load_job_sample(&self, key: &str) -> Option<Vec<u64>> {
        SampleLog::at(self.sample_path(key))
            .load()
            .map(|c| c.samples)
    }

    /// Scans `stages/` for streamed campaign chunk logs and reports each
    /// one's progress, in digest order. Works with or without a manifest
    /// (an interrupted first sweep has only logs), and ignores stray
    /// `*.tmpN` files left behind by crashed writers.
    #[must_use]
    pub fn campaign_progress(&self) -> Vec<CampaignProgress> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(self.root.join("stages")) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(hex) = name.to_str().and_then(|n| n.strip_suffix(".samples.slog")) else {
                continue; // stage JSON, temp files, foreign strays
            };
            let Ok(digest) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            // Decode-free header scan: progress needs run counts, not the
            // samples themselves.
            if let Some((collected, total)) = SampleLog::at(entry.path()).meta() {
                out.push(CampaignProgress {
                    digest,
                    collected: usize::try_from(collected).unwrap_or(usize::MAX),
                    total,
                });
            }
        }
        out.sort_by_key(|p| p.digest);
        out
    }

    /// Writes a job artifact (atomically: temp file + rename) and, when
    /// given, its sample chunk log. Samples are appended frame by frame
    /// ([`Self::JOB_SAMPLE_CHUNK`] runs each) and only past the log's
    /// valid prefix — a re-run over an existing log appends nothing.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failures.
    pub fn write_job(
        &self,
        key: &str,
        summary: &JobSummary,
        result: Json,
        sample: Option<&[u64]>,
    ) -> io::Result<()> {
        if let Some(sample) = sample {
            let log = SampleLog::at(self.sample_path(key));
            let mut at = log.load().map_or(0, |c| c.samples.len());
            while at < sample.len() {
                let end = (at + Self::JOB_SAMPLE_CHUNK).min(sample.len());
                log.append(at, sample.len(), &sample[at..end])?;
                at = end;
            }
        }
        let artifact = Json::Obj(vec![
            ("schema".to_string(), crate::SCHEMA.into()),
            (
                "summary".to_string(),
                mbcr_json::Serialize::to_json(summary),
            ),
            ("result".to_string(), result),
        ]);
        write_atomic(&self.job_path(key), artifact.to_pretty().as_bytes())
    }

    /// Loads the summary block of a cached artifact. Returns `None` when
    /// the artifact is missing, unparsable, or from another schema — the
    /// caller then simply re-executes the job.
    #[must_use]
    pub fn load_summary(&self, key: &str) -> Option<JobSummary> {
        let text = fs::read_to_string(self.job_path(key)).ok()?;
        let doc = mbcr_json::parse(&text).ok()?;
        if doc.get("schema")?.as_str()? != crate::SCHEMA {
            return None;
        }
        JobSummary::from_json(doc.get("summary")?)
    }

    /// Writes the run manifest.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failures.
    pub fn write_manifest(&self, manifest: &Json) -> io::Result<()> {
        write_atomic(&self.manifest_path(), manifest.to_pretty().as_bytes())
    }

    /// Loads the run manifest, if one exists and parses.
    #[must_use]
    pub fn load_manifest(&self) -> Option<Json> {
        let text = fs::read_to_string(self.manifest_path()).ok()?;
        mbcr_json::parse(&text).ok()
    }

    /// Merges another store's content-addressed artifacts into this one:
    /// `stages/*.json` and `jobs/*.json` documents are copied byte-for-byte
    /// when absent here (they are digest-/content-keyed, so an artifact
    /// already present is by construction the same artifact), and
    /// `*.samples.slog` chunk logs are extended with whatever valid run
    /// suffix the other store holds beyond ours (idempotent, gap-free —
    /// the [`SampleLog`] append rules). Run-level files (manifest, Table 2)
    /// are *not* merged: they describe one run, not content.
    ///
    /// The operation is idempotent (`a.merge(b)` twice equals once) and —
    /// under the content-addressing contract that equal names carry equal
    /// content — order-independent: merging any permutation of stores
    /// converges on the same artifact set.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failures; a missing source directory is
    /// treated as empty, and stray files (`*.tmpN`, foreign names) are
    /// skipped like every store scan does.
    pub fn merge(&self, other: &ArtifactStore) -> io::Result<MergeStats> {
        let mut stats = MergeStats::default();
        for dir in ["stages", "jobs"] {
            let entries = match fs::read_dir(other.root.join(dir)) {
                Ok(entries) => entries,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let mut names: Vec<std::ffi::OsString> =
                entries.flatten().map(|e| e.file_name()).collect();
            names.sort();
            for name in names {
                let Some(name) = name.to_str() else { continue };
                let from = other.root.join(dir).join(name);
                let to = self.root.join(dir).join(name);
                if let Some(stem) = name.strip_suffix(".samples.slog") {
                    if !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
                        continue; // foreign stray
                    }
                    stats.appended_runs += merge_sample_log(&from, &to)?;
                } else if let Some(stem) = name.strip_suffix(".json") {
                    if !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
                        continue; // manifest copies, notes, strays
                    }
                    if to.is_file() {
                        continue; // content-addressed: already identical
                    }
                    write_atomic(&to, &fs::read(&from)?)?;
                    if dir == "stages" {
                        stats.stage_artifacts += 1;
                    } else {
                        stats.job_artifacts += 1;
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Writes the Table 2 CSV (the paper's layout, plus provenance
    /// columns).
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failures.
    pub fn write_table2(&self, rows: &[Table2Row]) -> io::Result<()> {
        let mut csv = String::from(
            "benchmark,input,geometry,seed,R_orig,R_pub,R_tac,R_pub_tac,\
             pwcet_orig,pwcet_pub,pwcet_pub_tac,pwcet_multipath\n",
        );
        for row in rows {
            csv.push_str(&row.csv_line());
            csv.push('\n');
        }
        write_atomic(&self.table2_path(), csv.as_bytes())
    }
}

impl StageStore for ArtifactStore {
    /// Loads a stage artifact. Returns `None` when the file is missing or
    /// does not parse — a torn write is never a cache hit (the caller
    /// additionally validates the schema/digest envelope).
    fn load_stage(&self, digest: u64) -> Option<Json> {
        let text = fs::read_to_string(self.stage_path(digest)).ok()?;
        mbcr_json::parse(&text).ok()
    }

    fn save_stage(&self, digest: u64, artifact: &Json) -> io::Result<()> {
        write_atomic(&self.stage_path(digest), artifact.to_pretty().as_bytes())
    }

    /// Loads the valid prefix of the stage's streamed sample chunk log —
    /// a torn final chunk is discarded, never part of the prefix.
    fn load_samples(&self, digest: u64) -> Option<Vec<u64>> {
        SampleLog::at(self.stage_samples_path(digest))
            .load()
            .map(|c| c.samples)
    }

    fn append_samples(
        &self,
        digest: u64,
        start: usize,
        total: usize,
        samples: &[u64],
    ) -> io::Result<()> {
        let _span = mbcr_obs::span(mbcr_obs::SpanKind::CampaignChunk, "store-append")
            .field("digest", format!("{digest:016x}"))
            .field("runs", samples.len().to_string());
        SampleLog::at(self.stage_samples_path(digest)).append(start, total, samples)
    }

    fn reset_samples(&self, digest: u64) -> io::Result<()> {
        SampleLog::at(self.stage_samples_path(digest)).reset()
    }
}

/// What [`ArtifactStore::merge`] brought over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Stage JSON artifacts copied (absent here, present there).
    pub stage_artifacts: usize,
    /// Job JSON artifacts copied.
    pub job_artifacts: usize,
    /// Sample runs appended across all chunk logs.
    pub appended_runs: u64,
}

impl MergeStats {
    /// Whether the merge changed nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        *self == Self::default()
    }
}

/// Extends the chunk log at `to` with the valid run suffix of the log at
/// `from` beyond what `to` already holds; returns the appended run count.
/// When `to` has no valid log at all and `from` is wholly valid, the
/// source bytes are copied verbatim instead, preserving the original
/// checkpoint-grid framing.
fn merge_sample_log(from: &Path, to: &Path) -> io::Result<u64> {
    let source = SampleLog::at(from);
    let Some(contents) = source.load() else {
        return Ok(0); // empty, torn-at-magic, or foreign: nothing valid
    };
    let have = SampleLog::at(to).load().map_or(0, |c| c.samples.len());
    if have == 0 && !to.is_file() {
        // Fast path: byte-preserving copy of the wholly-valid prefix.
        let bytes = fs::read(from)?;
        let valid = SampleLog::scan_bytes(&bytes, ScanDepth::MetaOnly).valid_bytes as usize;
        write_atomic(to, &bytes[..valid.min(bytes.len())])?;
        return Ok(contents.samples.len() as u64);
    }
    if have >= contents.samples.len() {
        return Ok(0);
    }
    SampleLog::at(to).append(
        0,
        usize::try_from(contents.total).unwrap_or(usize::MAX),
        &contents.samples,
    )?;
    Ok((contents.samples.len() - have) as u64)
}

/// Magic prefix of a sample chunk log.
const SLOG_MAGIC: &[u8; 8] = b"MBCRSLG1";
/// Frame header: start `u64` + total `u64` + count `u32` + payload length
/// `u32` + encoding `u8` + CRC-32 `u32`, all little-endian.
const FRAME_HEADER: usize = 8 + 8 + 4 + 4 + 1 + 4;
/// Payload is raw little-endian `u64`s.
const ENC_RAW: u8 = 0;
/// Payload is a LEB128 varint first value followed by zigzag-varint deltas
/// — the "compression" that makes 500k-run cycle samples fit comfortably.
const ENC_DELTA: u8 = 1;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven — appends
/// re-validate the whole log, so the byte loop sits on the checkpoint
/// hot path.
fn crc32(seed: u32, bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !seed;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*at)?;
        *at += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return None; // overlong encoding
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_raw(samples: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 8);
    for &v in samples {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn encode_delta(samples: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 3);
    let mut prev = 0u64;
    for (i, &v) in samples.iter().enumerate() {
        if i == 0 {
            push_varint(&mut out, v);
        } else {
            push_varint(&mut out, zigzag(v.wrapping_sub(prev) as i64));
        }
        prev = v;
    }
    out
}

fn decode_payload(encoding: u8, payload: &[u8], count: usize) -> Option<Vec<u64>> {
    match encoding {
        ENC_RAW => {
            if count.checked_mul(8) != Some(payload.len()) {
                return None;
            }
            Some(
                payload
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect(),
            )
        }
        ENC_DELTA => {
            // Every varint is at least one byte, so a count beyond the
            // payload length is bogus — reject before allocating.
            if count > payload.len() {
                return None;
            }
            let mut out = Vec::with_capacity(count);
            let mut at = 0usize;
            let mut prev = 0u64;
            for i in 0..count {
                let raw = read_varint(payload, &mut at)?;
                let v = if i == 0 {
                    raw
                } else {
                    prev.wrapping_add(unzigzag(raw) as u64)
                };
                out.push(v);
                prev = v;
            }
            (at == payload.len()).then_some(out)
        }
        _ => None,
    }
}

/// What a scan of a chunk log recovered: the valid, contiguous sample
/// prefix (a torn or corrupt tail is discarded, never returned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleLogContents {
    /// Decoded samples, in run-index order.
    pub samples: Vec<u64>,
    /// The campaign's resolved run count, as recorded by the last valid
    /// frame (`0` when the log has no frames yet).
    pub total: u64,
}

/// How much of each frame a scan materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanDepth {
    /// Decode every payload into samples (reads).
    Decode,
    /// CRC-validate frames but keep only run counts — what an append
    /// needs, without re-decoding the whole log on every checkpoint.
    MetaOnly,
}

/// Result of scanning a log file: decoded contents plus where the valid
/// byte prefix ends (everything after is a torn tail to truncate away).
struct LogScan {
    /// Decoded samples (empty under [`ScanDepth::MetaOnly`]).
    contents: SampleLogContents,
    /// Valid runs covered by the frame prefix (== `contents.samples.len()`
    /// under [`ScanDepth::Decode`]).
    run_count: u64,
    valid_bytes: u64,
    magic_ok: bool,
}

/// An append-only, CRC-framed chunk log of campaign execution times.
///
/// Layout: an 8-byte magic, then zero or more frames. Each frame carries
/// the absolute run index of its first sample, the campaign's resolved
/// run count (for progress reporting), a sample count, a payload length,
/// a payload encoding (raw little-endian `u64`s, or delta-varint
/// compressed — the writer picks whichever is smaller, deterministically)
/// and a CRC-32 over header and payload. Readers accept the longest valid,
/// contiguous frame prefix and discard everything after the first invalid
/// byte — a torn final frame from a killed writer is dropped, never
/// trusted. Appends are idempotent (a frame entirely covered by logged
/// runs is a no-op, a partially covered one appends only the uncovered
/// tail) and reject gaps, so replayed or checkpoint-interval-shifted
/// writers of the same content-addressed log converge on the same decoded
/// runs — and writers sharing one interval on identical bytes.
#[derive(Debug, Clone)]
pub struct SampleLog {
    path: PathBuf,
}

impl SampleLog {
    /// A handle on the log at `path` (nothing is opened until used).
    #[must_use]
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn scan(&self, depth: ScanDepth) -> io::Result<LogScan> {
        Ok(Self::scan_bytes(&fs::read(&self.path)?, depth))
    }

    fn scan_bytes(bytes: &[u8], depth: ScanDepth) -> LogScan {
        let magic_ok =
            bytes.len() >= SLOG_MAGIC.len() && bytes[..SLOG_MAGIC.len()] == SLOG_MAGIC[..];
        let mut scan = LogScan {
            contents: SampleLogContents {
                samples: Vec::new(),
                total: 0,
            },
            run_count: 0,
            valid_bytes: if magic_ok { SLOG_MAGIC.len() as u64 } else { 0 },
            magic_ok,
        };
        if !magic_ok {
            return scan;
        }
        // Nothing in the file is trusted until proven: header fields are
        // range-checked with overflow-safe arithmetic even after the CRC
        // passes (the CRC is integrity against torn writes, not a
        // guarantee a foreign tool wrote sane values).
        let mut at = SLOG_MAGIC.len();
        while bytes.len() >= at + FRAME_HEADER {
            let h = &bytes[at..at + FRAME_HEADER];
            let start = u64::from_le_bytes(h[0..8].try_into().expect("8 bytes"));
            let total = u64::from_le_bytes(h[8..16].try_into().expect("8 bytes"));
            let count = u32::from_le_bytes(h[16..20].try_into().expect("4 bytes")) as u64;
            let payload_len = u32::from_le_bytes(h[20..24].try_into().expect("4 bytes")) as usize;
            let encoding = h[24];
            let crc = u32::from_le_bytes(h[25..29].try_into().expect("4 bytes"));
            let Some(payload_end) = (at + FRAME_HEADER).checked_add(payload_len) else {
                break;
            };
            if bytes.len() < payload_end {
                break; // truncated payload: torn tail
            }
            let payload = &bytes[at + FRAME_HEADER..payload_end];
            let crc_input = crc32(crc32(0, &h[0..25]), payload);
            if crc_input != crc {
                break;
            }
            let Some(frame_end) = start.checked_add(count) else {
                break;
            };
            if count == 0 {
                break; // writers never emit empty frames
            }
            let have = scan.run_count;
            if start > have {
                break; // gap: treat the rest as invalid
            }
            if depth == ScanDepth::Decode && frame_end > have {
                let Some(samples) = decode_payload(encoding, payload, count as usize) else {
                    break;
                };
                // `have - start` samples of this frame are already held
                // (a replayed or interval-shifted writer); append only
                // the uncovered tail — content-addressing guarantees the
                // overlap carries identical values.
                scan.contents
                    .samples
                    .extend_from_slice(&samples[(have - start) as usize..]);
            }
            scan.run_count = scan.run_count.max(frame_end);
            scan.contents.total = total;
            scan.valid_bytes = payload_end as u64;
            at = payload_end;
        }
        scan
    }

    /// Loads the valid prefix of the log; `None` when the file does not
    /// exist or is not a chunk log (bad magic).
    #[must_use]
    pub fn load(&self) -> Option<SampleLogContents> {
        let scan = self.scan(ScanDepth::Decode).ok()?;
        scan.magic_ok.then_some(scan.contents)
    }

    /// The log's progress — `(valid runs, campaign total)` — from a
    /// CRC-validated, decode-free header scan. `None` when the file does
    /// not exist or is not a chunk log.
    #[must_use]
    pub fn meta(&self) -> Option<(u64, u64)> {
        let scan = self.scan(ScanDepth::MetaOnly).ok()?;
        scan.magic_ok
            .then_some((scan.run_count, scan.contents.total))
    }

    /// Deletes the log wholesale — the recovery path when a log's content
    /// diverges from what its digest demands (corruption that slipped past
    /// the CRC, or a foreign file): the rewriting campaign then recreates
    /// it from scratch instead of leaving poisoned bytes behind.
    ///
    /// # Errors
    ///
    /// Filesystem failures other than the file already being gone.
    pub fn reset(&self) -> io::Result<()> {
        match fs::remove_file(&self.path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// Appends runs `start .. start + samples.len()` (of a campaign with
    /// `total` resolved runs) as one frame, discarding any torn tail
    /// first. Idempotent: an append entirely covered by logged runs is a
    /// no-op, and one partially covered (a writer resuming under a
    /// different checkpoint interval) appends only the uncovered tail.
    /// An exclusive advisory lock is held across the validate-truncate-
    /// write sequence, so concurrent same-digest writers (two processes
    /// sharing one store) serialize instead of truncating each other's
    /// in-flight frames.
    ///
    /// # Errors
    ///
    /// Filesystem failures, or an append that would leave a gap behind
    /// the logged prefix.
    pub fn append(&self, start: usize, total: usize, samples: &[u64]) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)?;
        file.lock()?; // released when `file` drops
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        // Metadata-only scan: an append needs the valid byte/run prefix,
        // not the decoded samples — checkpointing stays O(file bytes),
        // not O(file bytes × decode) per interval.
        let scan = Self::scan_bytes(&bytes, ScanDepth::MetaOnly);
        let have = usize::try_from(scan.run_count).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "sample log beyond addressable size",
            )
        })?;
        if have >= start + samples.len() {
            return Ok(()); // replayed append, already durable
        }
        if have < start {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "sample-log {}: have {have} runs, append covers {start}..{}",
                    self.path.display(),
                    start + samples.len()
                ),
            ));
        }
        // Partial overlap: keep the durable prefix, append the rest.
        let samples = &samples[have - start..];
        let start = have;

        let raw = encode_raw(samples);
        let delta = encode_delta(samples);
        let (encoding, payload) = if delta.len() < raw.len() {
            (ENC_DELTA, delta)
        } else {
            (ENC_RAW, raw)
        };
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(start as u64).to_le_bytes());
        frame.extend_from_slice(&(total as u64).to_le_bytes());
        frame.extend_from_slice(&u32::try_from(samples.len()).map_err(too_big)?.to_le_bytes());
        frame.extend_from_slice(&u32::try_from(payload.len()).map_err(too_big)?.to_le_bytes());
        frame.push(encoding);
        let crc = crc32(crc32(0, &frame), &payload);
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);

        if scan.magic_ok {
            // Drop the torn tail (if any), then append after the valid
            // prefix.
            file.set_len(scan.valid_bytes)?;
            file.seek(io::SeekFrom::End(0))?;
        } else {
            // Fresh or foreign file: (re)initialize the log wholesale.
            // (The cursor sits wherever read_to_end left it — rewind, or
            // the magic would land past a sparse hole.)
            file.set_len(0)?;
            file.seek(io::SeekFrom::Start(0))?;
            file.write_all(SLOG_MAGIC)?;
        }
        file.write_all(&frame)?;
        file.sync_all()
    }
}

fn too_big(e: std::num::TryFromIntError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("chunk too large: {e}"))
}

/// Progress of one streamed campaign, recovered by scanning a store's
/// chunk logs — readable while (or after) a sweep runs, manifest or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignProgress {
    /// The campaign stage's content digest (the log's address).
    pub digest: u64,
    /// Valid runs on disk.
    pub collected: usize,
    /// The campaign's resolved run count.
    pub total: u64,
}

pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Self-healing: a run dir shipped without one of its subdirectories
    // (e.g. only the content-addressed stages/ tree was copied) grows the
    // missing directory back instead of failing the job.
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    // Unique per writer: two pool workers may target the same path (e.g. a
    // spec that names the same cell twice), and sharing one temp file would
    // interleave their bytes.
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp{serial}"));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // A failed write must not leak its temp file; crashed processes
        // still can (no chance to clean up), which is why store scans
        // ignore `*.tmpN` strays.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// One row of the Table 2 aggregation: a (benchmark, input, geometry,
/// seed) cell with the paper's run-count and pWCET columns. Columns a cell
/// did not compute (e.g. `R_orig` in a PUB-only sweep) stay empty.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Input-vector name.
    pub input: String,
    /// Geometry label.
    pub geometry: String,
    /// Master seed of the cell.
    pub seed: u64,
    /// Runs to plain-MBPTA convergence on the original program.
    pub r_orig: Option<u64>,
    /// Runs to MBPTA convergence on the pubbed path.
    pub r_pub: Option<u64>,
    /// TAC's representativeness requirement.
    pub r_tac: Option<u64>,
    /// `max(R_pub, R_tac)`.
    pub r_pub_tac: Option<u64>,
    /// pWCET of the original program (baseline column).
    pub pwcet_orig: Option<f64>,
    /// pWCET after PUB only.
    pub pwcet_pub: Option<f64>,
    /// pWCET after PUB + TAC (the paper's "P+T" column).
    pub pwcet_pub_tac: Option<f64>,
    /// Corollary 2 multipath combination, when computed.
    pub pwcet_multipath: Option<f64>,
}

impl Table2Row {
    fn fmt_u64(v: Option<u64>) -> String {
        v.map(|v| v.to_string()).unwrap_or_default()
    }

    fn fmt_f64(v: Option<f64>) -> String {
        v.filter(|v| v.is_finite())
            .map(|v| format!("{v:.1}"))
            .unwrap_or_default()
    }

    /// The row's 12 column values, unquoted, in header order.
    #[must_use]
    pub fn cells(&self) -> [String; 12] {
        [
            self.benchmark.clone(),
            self.input.clone(),
            self.geometry.clone(),
            self.seed.to_string(),
            Self::fmt_u64(self.r_orig),
            Self::fmt_u64(self.r_pub),
            Self::fmt_u64(self.r_tac),
            Self::fmt_u64(self.r_pub_tac),
            Self::fmt_f64(self.pwcet_orig),
            Self::fmt_f64(self.pwcet_pub),
            Self::fmt_f64(self.pwcet_pub_tac),
            Self::fmt_f64(self.pwcet_multipath),
        ]
    }

    /// The row as a CSV line (no trailing newline; fields quoted per
    /// RFC 4180 where needed).
    #[must_use]
    pub fn csv_line(&self) -> String {
        self.cells().map(|cell| csv_field(&cell)).join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeometrySpec, JobKind, JobSpec};

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("mbcr-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    fn demo_summary(store_key: &str) -> JobSummary {
        let job = JobSpec {
            benchmark: "bs".into(),
            geometry: GeometrySpec::paper_l1(),
            master_seed: 1,
            kind: JobKind::pub_tac_stage(mbcr::stage::StageKind::Fit, "default"),
        };
        let mut s = JobSummary::empty(store_key.to_string(), &job);
        s.pwcet = 1000.5;
        s.r_pub = Some(300);
        s
    }

    #[test]
    fn artifact_roundtrip_and_cache_check() {
        let store = tmp_store("roundtrip");
        let key = "00112233445566778899aabbccddeeff";
        assert!(!store.has_artifact(key));
        let summary = demo_summary(key);
        store
            .write_job(key, &summary, Json::Obj(vec![]), Some(&[10, 20, 30]))
            .expect("write");
        assert!(store.has_artifact(key));
        assert_eq!(store.load_summary(key).expect("summary"), summary);
        assert_eq!(store.load_job_sample(key), Some(vec![10, 20, 30]));
        // Re-writing appends nothing: the log bytes are already complete.
        let before = fs::read(store.sample_path(key)).expect("log bytes");
        store
            .write_job(key, &summary, Json::Obj(vec![]), Some(&[10, 20, 30]))
            .expect("rewrite");
        assert_eq!(fs::read(store.sample_path(key)).expect("log bytes"), before);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn run_scopes_share_content_but_split_run_artifacts() {
        let store = tmp_store("scopes");
        let scope = store.run_scope("s000-demo").expect("scope");
        // Content paths are shared across scopes...
        assert_eq!(scope.job_path("ab"), store.job_path("ab"));
        assert_eq!(scope.stage_path(0x1), store.stage_path(0x1));
        assert_eq!(scope.queue_dir(), store.queue_dir());
        // ...run-level paths are not.
        assert_ne!(scope.manifest_path(), store.manifest_path());
        assert_eq!(
            scope.manifest_path(),
            store
                .root()
                .join("sweeps")
                .join("s000-demo")
                .join("manifest.json")
        );
        assert_eq!(store.manifest_path(), store.root().join("manifest.json"));
        assert!(scope.run_dir().is_dir(), "scope dir is created");
        // A stage saved through one scope is visible through the other.
        scope.save_stage(0x42, &Json::Obj(vec![])).expect("save");
        assert!(store.load_stage(0x42).is_some());
        // Manifests stay scoped.
        scope
            .write_manifest(&Json::Obj(vec![("a".to_string(), Json::UInt(1))]))
            .expect("manifest");
        assert!(scope.load_manifest().is_some());
        assert!(store.load_manifest().is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn partial_write_is_not_a_cache_hit() {
        // Simulate an interrupted writer: a truncated JSON document at the
        // artifact paths. Readers must treat both as cache misses.
        let store = tmp_store("torn");
        let key = "deadbeef";
        fs::write(store.job_path(key), "{\"schema\": \"mbcr-eng").expect("write");
        assert!(
            store.has_artifact(key),
            "the torn file exists on disk (atomic writes make this state \
             unreachable in practice, but readers still validate)"
        );
        assert!(
            store.load_summary(key).is_none(),
            "a torn job artifact must not parse into a summary"
        );
        let digest = 0x1234_u64;
        fs::write(store.stage_path(digest), "{\"schema\": \"mbcr-sta").expect("write");
        assert!(
            store.load_stage(digest).is_none(),
            "a torn stage artifact must not be a cache hit"
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stage_artifacts_roundtrip_through_the_store() {
        let store = tmp_store("stage-rt");
        let digest = 0xABCD_u64;
        assert!(store.load_stage(digest).is_none());
        let doc = Json::Obj(vec![("x".to_string(), Json::UInt(7))]);
        store.save_stage(digest, &doc).expect("save");
        assert_eq!(store.load_stage(digest), Some(doc));
        assert!(store.stage_path(digest).is_file());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn foreign_schema_is_not_a_cache_hit() {
        let store = tmp_store("schema");
        let key = "f00d";
        fs::write(
            store.job_path(key),
            r#"{"schema": "other/9", "summary": {}}"#,
        )
        .expect("write");
        assert!(store.load_summary(key).is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn sample_log_roundtrips_across_encodings() {
        let dir = tmp_store("slog-rt");
        let path = dir.root().join("jobs").join("x.samples.slog");
        let log = SampleLog::at(&path);
        assert!(log.load().is_none(), "missing file is no log");

        // Monotone-ish cycle counts: the delta encoding wins and must
        // round-trip exactly.
        let smooth: Vec<u64> = (0..1000).map(|i| 9_000 + (i % 37) * 100).collect();
        log.append(0, 1500, &smooth).expect("append");
        let contents = log.load().expect("load");
        assert_eq!(contents.samples, smooth);
        assert_eq!(contents.total, 1500);
        assert!(
            fs::metadata(&path).expect("meta").len() < (smooth.len() * 8) as u64,
            "delta-varint must beat raw for smooth samples"
        );

        // Adversarial values (extremes, wrapping deltas) must round-trip
        // exactly whatever encoding the writer picks.
        let wild = vec![u64::MAX, 0, u64::MAX - 1, 1, u64::MAX / 2];
        log.append(1000, 1500, &wild).expect("append wild");
        let contents = log.load().expect("load");
        assert_eq!(contents.samples[1000..], wild[..]);
        assert_eq!(contents.samples[..1000], smooth[..]);
        let _ = fs::remove_dir_all(dir.root());
    }

    #[test]
    fn sample_log_appends_are_idempotent_and_reject_gaps() {
        let dir = tmp_store("slog-idem");
        let log = SampleLog::at(dir.root().join("stages").join("ab.samples.slog"));
        log.append(0, 300, &[1, 2, 3]).expect("first");
        let bytes = fs::read(log.path()).expect("bytes");
        // A replayed append (same or covered range) changes nothing.
        log.append(0, 300, &[1, 2, 3]).expect("replay");
        assert_eq!(fs::read(log.path()).expect("bytes"), bytes);
        // A gap is refused outright.
        let err = log.append(7, 300, &[9]).expect_err("gap");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Contiguous extension works.
        log.append(3, 300, &[4, 5]).expect("extend");
        assert_eq!(log.load().expect("load").samples, vec![1, 2, 3, 4, 5]);
        let _ = fs::remove_dir_all(dir.root());
    }

    #[test]
    fn sample_log_discards_torn_tails_at_every_cut_point() {
        let dir = tmp_store("slog-torn");
        let log = SampleLog::at(dir.root().join("stages").join("cd.samples.slog"));
        log.append(0, 96, &(0..64u64).collect::<Vec<_>>())
            .expect("frame 1");
        let frame1_end = fs::metadata(log.path()).expect("meta").len();
        log.append(64, 96, &(64..96u64).collect::<Vec<_>>())
            .expect("frame 2");
        let full = fs::read(log.path()).expect("bytes");

        // Cut the file at every byte boundary: the loaded prefix must be
        // exactly the frames that survived whole — never a partial frame,
        // never garbage.
        for cut in 0..full.len() {
            fs::write(log.path(), &full[..cut]).expect("truncate");
            let loaded = SampleLog::at(log.path()).load();
            if (cut as u64) < 8 {
                assert!(loaded.is_none(), "cut {cut}: magic gone");
            } else {
                let samples = loaded.expect("valid prefix").samples;
                let expect = if (cut as u64) >= frame1_end { 64 } else { 0 };
                assert_eq!(samples.len(), expect, "cut at byte {cut}");
                assert!(samples.iter().copied().eq(0..expect as u64));
            }
        }

        // And appending over a torn tail truncates it, then extends — a
        // resumed writer reproduces the uninterrupted byte stream.
        fs::write(log.path(), &full[..full.len() - 5]).expect("tear");
        log.append(64, 96, &(64..96u64).collect::<Vec<_>>())
            .expect("repair");
        assert_eq!(fs::read(log.path()).expect("bytes"), full);
        let _ = fs::remove_dir_all(dir.root());
    }

    #[test]
    fn sample_log_corrupt_crc_invalidates_the_tail() {
        let dir = tmp_store("slog-crc");
        let log = SampleLog::at(dir.root().join("stages").join("ef.samples.slog"));
        log.append(0, 8, &[10, 20, 30, 40]).expect("frame 1");
        let frame1_end = fs::metadata(log.path()).expect("meta").len() as usize;
        log.append(4, 8, &[50, 60, 70, 80]).expect("frame 2");
        let mut bytes = fs::read(log.path()).expect("bytes");
        // Flip one payload byte of frame 2.
        let at = frame1_end + FRAME_HEADER;
        bytes[at] ^= 0xFF;
        fs::write(log.path(), &bytes).expect("corrupt");
        assert_eq!(
            log.load().expect("load").samples,
            vec![10, 20, 30, 40],
            "a CRC mismatch must cut the valid prefix before the bad frame"
        );
        let _ = fs::remove_dir_all(dir.root());
    }

    #[test]
    fn campaign_progress_scans_logs_and_ignores_strays() {
        let store = tmp_store("progress");
        store
            .append_samples(0xBEEF, 0, 500, &[7; 120])
            .expect("partial log");
        store
            .append_samples(0xF00D, 0, 64, &[9; 64])
            .expect("complete log");
        // Strays that crashed writers can leave behind: a temp file and a
        // foreign file. Both must be ignored.
        fs::write(store.root().join("stages").join("0000beef.tmp17"), b"junk").expect("tmp");
        fs::write(store.root().join("stages").join("notes.txt"), b"hi").expect("txt");
        fs::write(
            store.root().join("stages").join("zzzz.samples.slog"),
            b"not-hex",
        )
        .expect("bad name");
        let progress = store.campaign_progress();
        assert_eq!(
            progress,
            vec![
                CampaignProgress {
                    digest: 0xBEEF,
                    collected: 120,
                    total: 500
                },
                CampaignProgress {
                    digest: 0xF00D,
                    collected: 64,
                    total: 64
                },
            ]
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn failed_atomic_write_leaves_no_temp_file() {
        let store = tmp_store("tmp-clean");
        // Make the rename fail: the destination is an (occupied) directory.
        let path = store.stage_path(0x77);
        fs::create_dir_all(path.join("occupied")).expect("block destination");
        assert!(store.save_stage(0x77, &Json::Obj(vec![])).is_err());
        let strays: Vec<String> = fs::read_dir(store.root().join("stages"))
            .expect("stages dir")
            .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(strays.is_empty(), "temp files leaked: {strays:?}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn merge_copies_absent_artifacts_and_extends_logs() {
        let a = tmp_store("merge-a");
        let b = tmp_store("merge-b");
        // Disjoint stage artifacts, one shared digest, and a chunk log
        // where b holds a longer prefix of the same content.
        let doc = |v: u64| Json::Obj(vec![("v".to_string(), Json::UInt(v))]);
        a.save_stage(0x1, &doc(1)).unwrap();
        a.save_stage(0x3, &doc(3)).unwrap();
        b.save_stage(0x2, &doc(2)).unwrap();
        b.save_stage(0x3, &doc(3)).unwrap();
        let runs: Vec<u64> = (0..96).collect();
        a.append_samples(0xAB, 0, 96, &runs[..32]).unwrap();
        b.append_samples(0xAB, 0, 96, &runs).unwrap();
        b.write_job(
            "deadbeef01",
            &demo_summary("deadbeef01"),
            doc(9),
            Some(&[5, 6]),
        )
        .unwrap();

        let stats = a.merge(&b).expect("merge");
        assert_eq!(stats.stage_artifacts, 1, "only the absent digest copies");
        assert_eq!(stats.job_artifacts, 1);
        assert_eq!(stats.appended_runs, 64 + 2, "stage log tail + job log");
        for d in [0x1u64, 0x2, 0x3] {
            assert_eq!(a.load_stage(d), Some(doc(d)));
        }
        assert_eq!(StageStore::load_samples(&a, 0xAB), Some(runs.clone()));
        assert_eq!(a.load_job_sample("deadbeef01"), Some(vec![5, 6]));
        assert!(a.has_artifact("deadbeef01"));

        // Idempotent: a second merge changes nothing.
        let again = a.merge(&b).expect("re-merge");
        assert!(again.is_noop(), "second merge must be a no-op: {again:?}");
        let _ = fs::remove_dir_all(a.root());
        let _ = fs::remove_dir_all(b.root());
    }

    #[test]
    fn merge_skips_strays_and_preserves_log_bytes_on_fresh_copy() {
        let a = tmp_store("merge-strays-a");
        let b = tmp_store("merge-strays-b");
        b.append_samples(0xCD, 0, 64, &(0..64u64).collect::<Vec<_>>())
            .unwrap();
        let source_bytes = fs::read(b.stage_samples_path(0xCD)).unwrap();
        fs::write(b.root().join("stages").join("0000cd.tmp3"), b"junk").unwrap();
        fs::write(b.root().join("stages").join("notes.json"), b"{}").unwrap();
        fs::write(b.root().join("jobs").join("zz.samples.slog"), b"nope").unwrap();
        let stats = a.merge(&b).expect("merge");
        assert_eq!(stats.stage_artifacts + stats.job_artifacts, 0);
        assert_eq!(
            fs::read(a.stage_samples_path(0xCD)).unwrap(),
            source_bytes,
            "a fresh log copy must preserve the source framing bytes"
        );
        assert!(!a.root().join("stages").join("notes.json").exists());
        assert!(!a.root().join("jobs").join("zz.samples.slog").exists());
        let _ = fs::remove_dir_all(a.root());
        let _ = fs::remove_dir_all(b.root());
    }

    #[test]
    fn table2_rows_render_empty_columns() {
        let row = Table2Row {
            benchmark: "bs".into(),
            input: "default".into(),
            geometry: "4096B-2w-32B".into(),
            seed: 42,
            r_orig: Some(310),
            r_pub: Some(300),
            r_tac: None,
            r_pub_tac: None,
            pwcet_orig: Some(9170.0),
            pwcet_pub: None,
            pwcet_pub_tac: None,
            pwcet_multipath: None,
        };
        assert_eq!(
            row.csv_line(),
            "bs,default,4096B-2w-32B,42,310,300,,,9170.0,,,"
        );
    }
}
