//! Paper Section 3.1 — no relation between `R_TAC(M_orig)` and
//! `R_TAC(M_pub)`.
//!
//! Reproduces both worked examples on the S = 8, W = 4 cache:
//!
//! * §3.1.1: `{ABCA}^1000 / {ADEA}^1000` need no extra runs; the pubbed
//!   `{ABCDEA}^1000` needs R > 84 875.
//! * §3.1.2: `{ABCDEA}^1000 / {ABCDFA}^1000` each need R > 84 875; the
//!   pubbed `{ABCDEFA}^1000` needs only R > 14 138 (six equally-damaging
//!   5-of-6 groups aggregate to a 6× higher probability).

use mbcr_bench::{banner, Table};
use mbcr_pub::pub_merge;
use mbcr_tac::{analyze_symbolic, TacConfig};
use mbcr_trace::SymSeq;

fn seq(s: &str) -> SymSeq {
    s.parse().expect("valid sequence")
}

fn runs(s: &SymSeq) -> u64 {
    analyze_symbolic(s, &TacConfig::paper_example()).runs_required
}

fn main() {
    banner("Section 3.1: R_TAC(orig) vs R_TAC(pub) worked examples (S=8, W=4)");

    // --- 3.1.1: pubbing INCREASES the requirement. ---
    let m1 = seq("ABCA").repeat(1000);
    let m2 = seq("ADEA").repeat(1000);
    let m_pub = pub_merge(&[seq("ABCA"), seq("ADEA")]).repeat(1000);

    let mut t = Table::new(&["sequence", "unique addrs", "R_TAC (ours)", "R_TAC (paper)"]);
    t.row(&[
        "{ABCA}^1000",
        "3",
        &runs(&m1).to_string(),
        "0 (fits in 4 ways)",
    ]);
    t.row(&[
        "{ADEA}^1000",
        "3",
        &runs(&m2).to_string(),
        "0 (fits in 4 ways)",
    ]);
    let r_pub1 = runs(&m_pub);
    t.row(&["pub: {ABCDEA}^1000", "5", &r_pub1.to_string(), "> 84 875"]);
    t.print();
    assert_eq!(runs(&m1), 0);
    assert_eq!(runs(&m2), 0);
    assert!((84_000..86_000).contains(&r_pub1), "R = {r_pub1}");
    println!("\n3.1.1: pubbing RAISED the requirement (0 -> {r_pub1}): REPRODUCED\n");

    // --- 3.1.2: pubbing DECREASES the requirement. ---
    let m1 = seq("ABCDEA").repeat(1000);
    let m2 = seq("ABCDFA").repeat(1000);
    let m_pub = pub_merge(&[seq("ABCDEA"), seq("ABCDFA")]).repeat(1000);

    let r1 = runs(&m1);
    let r2 = runs(&m2);
    let r_pub2 = runs(&m_pub);
    let mut t = Table::new(&["sequence", "unique addrs", "R_TAC (ours)", "R_TAC (paper)"]);
    t.row(&["{ABCDEA}^1000", "5", &r1.to_string(), "> 84 875"]);
    t.row(&["{ABCDFA}^1000", "5", &r2.to_string(), "> 84 875"]);
    t.row(&["pub: {ABCDEFA}^1000", "6", &r_pub2.to_string(), "> 14 138"]);
    t.print();
    assert!((84_000..86_000).contains(&r1));
    assert!((84_000..86_000).contains(&r2));
    assert!((14_000..14_300).contains(&r_pub2), "R = {r_pub2}");
    println!("\n3.1.2: pubbing LOWERED the requirement ({r1} -> {r_pub2}): REPRODUCED");
    println!(
        "\n(exact probabilities give {r_pub1} and {r_pub2}; the paper prints 84 875 / 14 138 \
         from p rounded to 0.000244 / 0.00146 — within 0.01%)"
    );
}
