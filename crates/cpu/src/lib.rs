//! In-order processor timing model with IL1/DL1 caches.
//!
//! The paper's evaluation platform (Section 4) is a "pipelined in-order
//! processor with first level instruction (IL1) and data (DL1) caches …
//! implementing random placement and replacement policies. The content of
//! cache memories is flushed before each run of a program."
//!
//! This crate reproduces those timing semantics:
//!
//! * every instruction fetch goes through the IL1, every load/store through
//!   the DL1;
//! * an access costs a constant hit or miss latency ([`LatencyConfig`]); the
//!   in-order pipeline makes execution time additive in those latencies;
//! * a *measurement run* replays a fixed [`Trace`] after flushing and
//!   re-randomizing both caches ([`Platform::run_randomized`]), so all
//!   run-to-run execution-time variability comes from the random cache
//!   layout — exactly the MBPTA setting;
//! * a [`campaign`] collects `R` execution times with per-run seeds derived
//!   deterministically from one master seed (bit-identical results whether
//!   run serially or with [`campaign_parallel`]);
//! * the campaign drivers resolve the trace to line ids once per campaign
//!   ([`ResolvedTrace`]) and sweep up to [`Parallelism::batch_width`]
//!   layouts per trace pass ([`BatchPlatform`]) — pure throughput knobs:
//!   the sample is bit-identical at every thread count and batch width.
//!
//! # Examples
//!
//! ```
//! use mbcr_cpu::{campaign, Platform, PlatformConfig};
//! use mbcr_trace::{Access, Trace};
//!
//! let cfg = PlatformConfig::paper_default();
//! let trace: Trace = [Access::fetch(0x0), Access::read(0x8000)].into_iter().collect();
//! let times = campaign(&cfg, &trace, 10, 42);
//! assert_eq!(times.len(), 10);
//! // Two cold misses on every run: both accesses miss once each.
//! let expected = 2 * cfg.latency.il1_miss.max(cfg.latency.dl1_miss);
//! assert!(times.iter().all(|&t| t == expected));
//! ```

use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
use mbcr_rng::derive_seed;
use mbcr_trace::{AccessKind, Trace};

mod batch;
mod fastpath;
mod resolved;

pub use batch::BatchPlatform;
pub use resolved::{ResolvedOp, ResolvedTrace};

/// Access latencies (cycles) of the in-order pipeline.
///
/// With an in-order single-issue core and blocking caches, execution time is
/// the sum of per-access latencies; `issue_cycles` adds a fixed per-
/// instruction cost on top of the fetch latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// Fixed cycles per instruction besides memory (decode/execute).
    pub issue_cycles: u64,
    /// IL1 hit latency.
    pub il1_hit: u64,
    /// IL1 miss latency (includes the memory round-trip).
    pub il1_miss: u64,
    /// DL1 hit latency.
    pub dl1_hit: u64,
    /// DL1 miss latency (includes the memory round-trip).
    pub dl1_miss: u64,
}

impl LatencyConfig {
    /// LEON3-like defaults: 1-cycle hits, 100-cycle misses — large enough
    /// that conflictive cache placements produce the abrupt execution-time
    /// "knees" the paper studies.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            issue_cycles: 0,
            il1_hit: 1,
            il1_miss: 100,
            dl1_hit: 1,
            dl1_miss: 100,
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full platform configuration: cache geometries, policies and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformConfig {
    /// Instruction-cache geometry.
    pub il1: CacheGeometry,
    /// Data-cache geometry.
    pub dl1: CacheGeometry,
    /// Placement policy for both caches.
    pub placement: PlacementPolicy,
    /// Replacement policy for both caches.
    pub replacement: ReplacementPolicy,
    /// Pipeline/memory latencies.
    pub latency: LatencyConfig,
}

impl PlatformConfig {
    /// The paper's platform: 4 KB 2-way 32 B/line IL1 and DL1, random
    /// placement and replacement, caches flushed before each run.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            il1: CacheGeometry::paper_l1(),
            dl1: CacheGeometry::paper_l1(),
            placement: PlacementPolicy::RandomHash,
            replacement: ReplacementPolicy::Random,
            latency: LatencyConfig::paper_default(),
        }
    }

    /// A time-deterministic variant (modulo + LRU) used as the contrast in
    /// Section 2 experiments — *not* MBPTA-compliant.
    #[must_use]
    pub fn deterministic() -> Self {
        Self {
            placement: PlacementPolicy::Modulo,
            replacement: ReplacementPolicy::Lru,
            ..Self::paper_default()
        }
    }

    /// Returns `true` if both policies are time-randomized, i.e. the
    /// platform is MBPTA-compliant.
    #[must_use]
    pub fn is_mbpta_compliant(&self) -> bool {
        self.placement.is_randomized() && self.replacement.is_randomized()
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The simulated platform: one IL1, one DL1 and the latency model.
#[derive(Debug, Clone)]
pub struct Platform {
    il1: Cache,
    dl1: Cache,
    latency: LatencyConfig,
}

impl Platform {
    /// Builds a platform; IL1 and DL1 receive independent streams derived
    /// from `seed`.
    #[must_use]
    pub fn new(cfg: &PlatformConfig, seed: u64) -> Self {
        Self {
            il1: Cache::new(
                cfg.il1,
                cfg.placement,
                cfg.replacement,
                derive_seed(seed, 0),
            ),
            dl1: Cache::new(
                cfg.dl1,
                cfg.placement,
                cfg.replacement,
                derive_seed(seed, 1),
            ),
            latency: cfg.latency,
        }
    }

    /// Builds a platform already flushed and seeded for measurement run
    /// `run_seed` — state-identical to [`Platform::new`] followed by the
    /// reseed [`run_randomized`](Platform::run_randomized) performs, without
    /// deriving (and immediately discarding) a construction-time RNG state.
    /// Campaign drivers build their platform this way from the first run
    /// seed and [`reseed`](Platform::reseed) for subsequent runs.
    #[must_use]
    pub fn for_run(cfg: &PlatformConfig, run_seed: u64) -> Self {
        Self {
            il1: Cache::new(
                cfg.il1,
                cfg.placement,
                cfg.replacement,
                derive_seed(run_seed, 0),
            ),
            dl1: Cache::new(
                cfg.dl1,
                cfg.placement,
                cfg.replacement,
                derive_seed(run_seed, 1),
            ),
            latency: cfg.latency,
        }
    }

    /// The instruction cache.
    #[must_use]
    pub fn il1(&self) -> &Cache {
        &self.il1
    }

    /// The data cache.
    #[must_use]
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// Executes a trace with the *current* cache state (no flush), returning
    /// elapsed cycles. Useful for warm-cache experiments.
    pub fn run(&mut self, trace: &Trace) -> u64 {
        let mut cycles = 0u64;
        for access in trace {
            match access.kind {
                AccessKind::InstrFetch => {
                    cycles += self.latency.issue_cycles;
                    cycles += if self.il1.access(access.addr).is_hit() {
                        self.latency.il1_hit
                    } else {
                        self.latency.il1_miss
                    };
                }
                AccessKind::Read | AccessKind::Write => {
                    cycles += if self.dl1.access(access.addr).is_hit() {
                        self.latency.dl1_hit
                    } else {
                        self.latency.dl1_miss
                    };
                }
            }
        }
        cycles
    }

    /// Executes a pre-resolved trace with the *current* cache state (no
    /// flush) — the hot-loop form of [`run`](Platform::run), with every
    /// `Address → LineId` division already paid by
    /// [`ResolvedTrace::resolve`].
    ///
    /// # Panics
    ///
    /// Panics if `rt` was resolved for different cache line sizes.
    pub fn run_resolved(&mut self, rt: &ResolvedTrace) -> u64 {
        assert!(
            rt.matches(
                self.il1.geometry().line_size(),
                self.dl1.geometry().line_size()
            ),
            "trace resolved for a different geometry"
        );
        let mut cycles = 0u64;
        for op in rt.ops() {
            if op.instr {
                cycles += self.latency.issue_cycles;
                cycles += if self.il1.access_line(op.line).is_hit() {
                    self.latency.il1_hit
                } else {
                    self.latency.il1_miss
                };
            } else {
                cycles += if self.dl1.access_line(op.line).is_hit() {
                    self.latency.dl1_hit
                } else {
                    self.latency.dl1_miss
                };
            }
        }
        cycles
    }

    /// Flushes both caches and re-randomizes their placement/replacement
    /// streams for measurement run `run_seed` (IL1 and DL1 receive
    /// independent derived streams).
    pub fn reseed(&mut self, run_seed: u64) {
        self.il1.reseed(derive_seed(run_seed, 0));
        self.dl1.reseed(derive_seed(run_seed, 1));
    }

    /// One *measurement run* in the paper's sense: flush both caches,
    /// re-randomize their placement with streams derived from `run_seed`,
    /// then execute the trace and return its execution time in cycles.
    pub fn run_randomized(&mut self, trace: &Trace, run_seed: u64) -> u64 {
        self.reseed(run_seed);
        self.run(trace)
    }

    /// [`run_randomized`](Platform::run_randomized) over a pre-resolved
    /// trace.
    pub fn run_randomized_resolved(&mut self, rt: &ResolvedTrace, run_seed: u64) -> u64 {
        self.reseed(run_seed);
        self.run_resolved(rt)
    }
}

/// Collects `runs` execution times of `trace`, with run `i` seeded as
/// `derive_seed(master_seed, i)`.
///
/// On an MBPTA-compliant platform the resulting sample is i.i.d. by
/// construction (independent placement seeds per run) — the property MBPTA
/// requires of its input measurements.
#[must_use]
pub fn campaign(cfg: &PlatformConfig, trace: &Trace, runs: usize, master_seed: u64) -> Vec<u64> {
    campaign_slice(cfg, trace, 0, runs, master_seed)
}

/// Collects the execution times of runs `start .. start + runs` of the seed
/// stream defined by `master_seed` — the incremental form of [`campaign`]
/// used by the MBPTA convergence procedure (each step extends the same
/// deterministic stream, so `campaign(n)` equals the concatenation of
/// slices covering `0..n`).
#[must_use]
pub fn campaign_slice(
    cfg: &PlatformConfig,
    trace: &Trace,
    start: usize,
    runs: usize,
    master_seed: u64,
) -> Vec<u64> {
    let rt = ResolvedTrace::resolve(cfg, trace);
    campaign_slice_resolved(cfg, &rt, start, runs, master_seed)
}

/// The serial (one layout at a time) campaign loop over a pre-resolved
/// trace — the reference stream every batched/parallel variant must match
/// bit for bit. The platform is built directly from the first run seed
/// ([`Platform::for_run`]) and reseeded in place for subsequent runs.
fn campaign_slice_resolved(
    cfg: &PlatformConfig,
    rt: &ResolvedTrace,
    start: usize,
    runs: usize,
    master_seed: u64,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(runs);
    if runs == 0 {
        return out;
    }
    let mut platform = Platform::for_run(cfg, derive_seed(master_seed, start as u64));
    out.push(platform.run_resolved(rt));
    for i in start + 1..start + runs {
        out.push(platform.run_randomized_resolved(rt, derive_seed(master_seed, i as u64)));
    }
    out
}

/// The batched campaign loop: simulates runs `start .. start + runs` in
/// passes of up to `batch_width` layouts over one batched engine (reseeded
/// between passes), recording each realized pass width in the
/// `mbcr_campaign_layouts_per_pass` histogram. Bit-identical to
/// [`campaign_slice_resolved`] for every width.
///
/// Paper-shaped configurations (2-way caches with random replacement) run
/// on the specialized [`fastpath::FastCampaign`] kernel; everything else —
/// and width-1 requests, where batching buys nothing — falls back to the
/// general [`BatchPlatform`].
fn campaign_slice_resolved_batched(
    cfg: &PlatformConfig,
    rt: &ResolvedTrace,
    start: usize,
    runs: usize,
    master_seed: u64,
    batch_width: usize,
) -> Vec<u64> {
    let width = batch_width.max(1);
    if width == 1 || runs < 2 {
        return campaign_slice_resolved(cfg, rt, start, runs, master_seed);
    }
    let mut fast =
        fastpath::FastCampaign::try_new(cfg, rt).filter(|fast| fast.supports_width(width));
    let mut out = Vec::with_capacity(runs);
    let end = start + runs;
    let mut seeds = Vec::with_capacity(width.min(runs));
    let mut platform: Option<BatchPlatform> = None;
    let mut at = start;
    while at < end {
        let pass = width.min(end - at);
        seeds.clear();
        seeds.extend((at..at + pass).map(|i| derive_seed(master_seed, i as u64)));
        mbcr_obs::observe("mbcr_campaign_layouts_per_pass", &[], pass as u64);
        if let Some(fast) = fast.as_mut() {
            let base = out.len();
            out.resize(base + pass, 0);
            fast.run_pass(&seeds, &mut out[base..]);
        } else {
            let batch = match platform.as_mut() {
                Some(batch) => {
                    batch.reseed(&seeds);
                    batch
                }
                None => platform.insert(BatchPlatform::new(cfg, &seeds)),
            };
            out.extend_from_slice(batch.run_resolved(rt));
        }
        at += pass;
    }
    out
}

/// Campaign parallelism knobs, exposed so batch drivers (the sweep engine)
/// can trade scheduling overhead against intra-campaign parallelism
/// explicitly instead of relying on hard-coded thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads per campaign (clamped to at least 1).
    pub threads: usize,
    /// Campaigns shorter than this run serially: below a few hundred runs
    /// the thread spawn cost dominates the simulation itself.
    pub min_parallel_runs: usize,
    /// Layouts simulated per trace pass ([`BatchPlatform`]), clamped to at
    /// least 1; `1` is the classic one-layout-at-a-time loop. Output is
    /// bit-identical for every width, so this is a pure throughput knob —
    /// digest-neutral in every campaign driver.
    pub batch_width: usize,
}

/// Default [`Parallelism::batch_width`]: wide enough to amortize the trace
/// walk, small enough that the batched IL1+DL1 state of the paper-default
/// geometry stays cache-resident (~`2 × 4 KB × 2 × 16` = 256 KB of
/// tags+meta).
pub const DEFAULT_BATCH_WIDTH: usize = 16;

impl Parallelism {
    /// One campaign per core (the one-shot CLI default).
    #[must_use]
    pub fn per_core() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            threads,
            min_parallel_runs: 256,
            batch_width: DEFAULT_BATCH_WIDTH,
        }
    }

    /// Single-threaded campaigns — what a batch engine wants when it
    /// already runs one job per core. Layout batching stays on (it needs no
    /// extra threads and changes no output).
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: 1,
            min_parallel_runs: usize::MAX,
            batch_width: DEFAULT_BATCH_WIDTH,
        }
    }

    /// A fixed thread count with the default serial cut-off.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_parallel_runs: 256,
            batch_width: DEFAULT_BATCH_WIDTH,
        }
    }

    /// Replaces the layouts-per-pass width (clamped to at least 1).
    #[must_use]
    pub fn batch_width(mut self, width: usize) -> Self {
        self.batch_width = width.max(1);
        self
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::per_core()
    }
}

/// Parallel version of [`campaign`]: same per-run seeds, so the output is
/// bit-identical to the serial version, in run-index order.
///
/// `threads` is clamped to at least 1; each worker simulates a contiguous
/// chunk of run indices on its own [`Platform`] clone.
#[must_use]
pub fn campaign_parallel(
    cfg: &PlatformConfig,
    trace: &Trace,
    runs: usize,
    master_seed: u64,
    threads: usize,
) -> Vec<u64> {
    campaign_with(
        cfg,
        trace,
        runs,
        master_seed,
        &Parallelism::with_threads(threads),
    )
}

/// [`campaign`] under explicit [`Parallelism`] knobs. Output is
/// bit-identical for every knob setting.
#[must_use]
pub fn campaign_with(
    cfg: &PlatformConfig,
    trace: &Trace,
    runs: usize,
    master_seed: u64,
    par: &Parallelism,
) -> Vec<u64> {
    campaign_slice_with(cfg, trace, 0, runs, master_seed, par)
}

/// [`campaign_slice`] under explicit [`Parallelism`] knobs: runs
/// `start .. start + runs` of the seed stream, in run-index order,
/// bit-identical to the serial slice at any knob setting.
///
/// Because every run is seeded from its absolute index, a campaign can be
/// restarted from any boundary: a prefix collected by one process (e.g. a
/// convergence stage) concatenated with this slice equals the full
/// campaign. Staged drivers rely on this to resume mid-analysis.
#[must_use]
pub fn campaign_slice_with(
    cfg: &PlatformConfig,
    trace: &Trace,
    start: usize,
    runs: usize,
    master_seed: u64,
    par: &Parallelism,
) -> Vec<u64> {
    let rt = ResolvedTrace::resolve(cfg, trace);
    campaign_slice_resolved_with(cfg, &rt, start, runs, master_seed, par)
}

/// [`campaign_slice_with`] over a pre-resolved trace — the form the chunked
/// driver uses so the trace is resolved once per campaign, not once per
/// chunk.
fn campaign_slice_resolved_with(
    cfg: &PlatformConfig,
    rt: &ResolvedTrace,
    start: usize,
    runs: usize,
    master_seed: u64,
    par: &Parallelism,
) -> Vec<u64> {
    let threads = par.threads.max(1).min(runs.max(1));
    if threads <= 1 || runs < par.min_parallel_runs.max(2) {
        return campaign_slice_resolved_batched(cfg, rt, start, runs, master_seed, par.batch_width);
    }
    let mut out = vec![0u64; runs];
    let chunk = runs.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let first = start + t * chunk;
            scope.spawn(move || {
                let part = campaign_slice_resolved_batched(
                    cfg,
                    rt,
                    first,
                    slot.len(),
                    master_seed,
                    par.batch_width,
                );
                slot.copy_from_slice(&part);
            });
        }
    });
    out
}

/// [`campaign_slice_with`] driven in chunks, for drivers that persist
/// partial campaigns: simulates runs `start .. start + runs`, invoking
/// `sink` after each completed chunk with the chunk's absolute start index
/// and its execution times, and returns the whole slice. `sink` returns
/// whether to keep going — returning `false` (say, the checkpoint medium
/// failed) stops the simulation immediately instead of burning through
/// the rest of a possibly enormous campaign, and the truncated slice is
/// returned as-is for the caller to discard or salvage.
///
/// Chunk boundaries land on multiples of `chunk_runs` in *absolute*
/// run-index space (the final chunk is whatever remains), so a checkpoint
/// log fed by `sink` has the same chunk layout no matter where the slice
/// starts — an interrupted-then-resumed campaign replays the grid, not an
/// offset of it. `chunk_runs == 0` simulates the slice as one chunk. Each
/// chunk is simulated independently (layout batches never straddle a chunk
/// boundary, so [`Parallelism::batch_width`] clamps to the checkpoint grid
/// for free), and the trace is resolved once for the whole slice. The
/// returned sample is bit-identical to [`campaign_slice_with`] for every
/// chunking and parallelism setting (when the sink never aborts).
#[allow(clippy::too_many_arguments)]
pub fn campaign_slice_chunked(
    cfg: &PlatformConfig,
    trace: &Trace,
    start: usize,
    runs: usize,
    master_seed: u64,
    par: &Parallelism,
    chunk_runs: usize,
    mut sink: impl FnMut(usize, &[u64]) -> bool,
) -> Vec<u64> {
    let rt = ResolvedTrace::resolve(cfg, trace);
    let mut out = Vec::with_capacity(runs);
    let end = start + runs;
    let mut at = start;
    while at < end {
        let next = next_chunk_boundary(at, chunk_runs, end);
        let slice = {
            // Spans the chunk's simulation; `batch_width` is the realized
            // layouts-per-pass after clamping to the chunk.
            let _span = mbcr_obs::span(mbcr_obs::SpanKind::CampaignChunk, "simulate-chunk")
                .field("start", at.to_string())
                .field("runs", (next - at).to_string())
                .field(
                    "batch_width",
                    par.batch_width.max(1).min(next - at).to_string(),
                );
            campaign_slice_resolved_with(cfg, &rt, at, next - at, master_seed, par)
        };
        let keep_going = sink(at, &slice);
        out.extend_from_slice(&slice);
        at = next;
        if !keep_going {
            break;
        }
    }
    out
}

/// The absolute index ending the chunk that contains run `at`: the next
/// multiple of `chunk_runs`, capped at `end`; `chunk_runs == 0` means one
/// single chunk (`end`). This is the one definition of the checkpoint
/// grid — [`campaign_slice_chunked`] simulates on it and checkpoint
/// writers frame on it, which is what makes interrupted-then-resumed logs
/// byte-identical to uninterrupted ones.
#[must_use]
pub fn next_chunk_boundary(at: usize, chunk_runs: usize, end: usize) -> usize {
    match at.checked_div(chunk_runs) {
        None => end,
        Some(cell) => ((cell + 1) * chunk_runs).min(end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_trace::{Access, SymSeq};

    fn sym_trace(s: &str, reps: usize) -> Trace {
        s.parse::<SymSeq>().unwrap().repeat(reps).to_trace(32)
    }

    #[test]
    fn deterministic_platform_has_zero_variability() {
        let cfg = PlatformConfig::deterministic();
        let trace = sym_trace("ABCDEFGH", 50);
        let times = campaign(&cfg, &trace, 20, 7);
        assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
    }

    #[test]
    fn randomized_platform_varies_across_runs() {
        let cfg = PlatformConfig::paper_default();
        // Footprint > 2 ways in some sets with non-trivial probability:
        // 40 distinct lines in 64 sets.
        let s: SymSeq = ('A'..='Z')
            .chain('A'..='N')
            .collect::<String>()
            .parse()
            .unwrap();
        let trace = s.repeat(30).to_trace(32);
        let times = campaign(&cfg, &trace, 50, 9);
        let distinct: std::collections::HashSet<u64> = times.iter().copied().collect();
        assert!(distinct.len() > 1, "expected layout-induced variability");
    }

    #[test]
    fn campaign_is_reproducible() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCAD", 40);
        assert_eq!(campaign(&cfg, &trace, 25, 3), campaign(&cfg, &trace, 25, 3));
        // A footprint large enough that layouts (and thus times) must differ
        // between master seeds.
        let wide: SymSeq = ('A'..='Z').collect::<String>().parse().unwrap();
        let wide_trace = wide.repeat(10).to_trace(32);
        assert_ne!(
            campaign(&cfg, &wide_trace, 25, 3),
            campaign(&cfg, &wide_trace, 25, 4)
        );
    }

    #[test]
    fn slices_concatenate_to_full_campaign() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 10);
        let full = campaign(&cfg, &trace, 120, 13);
        let mut pieced = campaign_slice(&cfg, &trace, 0, 50, 13);
        pieced.extend(campaign_slice(&cfg, &trace, 50, 70, 13));
        assert_eq!(full, pieced);
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJ", 20);
        let serial = campaign(&cfg, &trace, 500, 11);
        for threads in [2, 3, 8] {
            assert_eq!(campaign_parallel(&cfg, &trace, 500, 11, threads), serial);
        }
    }

    #[test]
    fn campaign_with_knobs_matches_serial() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJ", 20);
        let serial = campaign(&cfg, &trace, 400, 5);
        assert_eq!(
            campaign_with(&cfg, &trace, 400, 5, &Parallelism::serial()),
            serial
        );
        assert_eq!(
            campaign_with(
                &cfg,
                &trace,
                400,
                5,
                &Parallelism {
                    threads: 4,
                    min_parallel_runs: 100,
                    batch_width: 5,
                }
            ),
            serial
        );
    }

    #[test]
    fn parallel_slice_matches_serial_slice() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJ", 20);
        let serial = campaign_slice(&cfg, &trace, 170, 330, 11);
        for threads in [2, 3, 8] {
            let par = Parallelism {
                threads,
                min_parallel_runs: 100,
                batch_width: threads * 3,
            };
            assert_eq!(
                campaign_slice_with(&cfg, &trace, 170, 330, 11, &par),
                serial
            );
        }
    }

    #[test]
    fn prefix_plus_parallel_slice_equals_full_campaign() {
        // The stage-boundary restart contract: a converge-phase prefix plus
        // a parallel tail slice must reproduce the one-shot campaign.
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 15);
        let full = campaign(&cfg, &trace, 500, 23);
        let mut pieced = campaign_slice(&cfg, &trace, 0, 140, 23);
        pieced.extend(campaign_slice_with(
            &cfg,
            &trace,
            140,
            360,
            23,
            &Parallelism {
                threads: 4,
                min_parallel_runs: 2,
                batch_width: 7,
            },
        ));
        assert_eq!(full, pieced);
    }

    #[test]
    fn chunked_slice_matches_serial_and_aligns_chunks_to_the_grid() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 10);
        let serial = campaign_slice(&cfg, &trace, 130, 470, 17);
        for (chunk_runs, threads, batch_width) in [
            (0, 1, 1),
            (100, 1, 16),
            (100, 3, 4),
            (64, 4, 64),
            (1000, 2, 3),
        ] {
            let par = Parallelism {
                threads,
                min_parallel_runs: 50,
                batch_width,
            };
            let mut seen: Vec<(usize, usize)> = Vec::new();
            let out = campaign_slice_chunked(&cfg, &trace, 130, 470, 17, &par, chunk_runs, {
                let seen = &mut seen;
                move |at, chunk| {
                    seen.push((at, chunk.len()));
                    true
                }
            });
            assert_eq!(
                out, serial,
                "chunk={chunk_runs} threads={threads} width={batch_width}"
            );
            // The sink covers the slice contiguously and, beyond the first
            // chunk, starts on absolute multiples of the chunk size.
            let mut at = 130;
            for (i, &(chunk_at, len)) in seen.iter().enumerate() {
                assert_eq!(chunk_at, at);
                if i > 0 && chunk_runs > 0 {
                    assert_eq!(chunk_at % chunk_runs, 0, "grid-aligned");
                }
                at += len;
            }
            assert_eq!(at, 600);
        }
    }

    #[test]
    fn chunked_slice_aborts_when_the_sink_says_stop() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 10);
        let mut calls = 0;
        let out = campaign_slice_chunked(
            &cfg,
            &trace,
            0,
            500,
            17,
            &Parallelism::serial(),
            100,
            |_, _| {
                calls += 1;
                calls < 2
            },
        );
        assert_eq!(calls, 2, "the sink is not called after it aborts");
        assert_eq!(out.len(), 200, "simulation stops at the aborting chunk");
        assert_eq!(out, campaign_slice(&cfg, &trace, 0, 200, 17));
    }

    #[test]
    fn for_run_matches_new_plus_reseed() {
        // The satellite fix: building from the run seed directly must be
        // state-identical to the old `Platform::new(master)` + reseed path.
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJKLMNOP", 25);
        let master = 99u64;
        let run_seed = derive_seed(master, 0);
        let mut old_style = Platform::new(&cfg, master);
        let old = old_style.run_randomized(&trace, run_seed);
        let mut new_style = Platform::for_run(&cfg, run_seed);
        assert_eq!(new_style.run(&trace), old);
    }

    #[test]
    fn resolved_run_matches_unresolved() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCADEFBGH", 40);
        let rt = ResolvedTrace::resolve(&cfg, &trace);
        assert_eq!(rt.len(), trace.as_slice().len());
        let mut a = Platform::new(&cfg, 4);
        let mut b = Platform::new(&cfg, 4);
        for seed in [0u64, 7, u64::MAX] {
            assert_eq!(
                a.run_randomized(&trace, seed),
                b.run_randomized_resolved(&rt, seed)
            );
        }
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn resolved_trace_rejects_mismatched_geometry() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("AB", 1);
        let rt = ResolvedTrace::resolve(&cfg, &trace);
        let mut other = cfg;
        other.dl1 = CacheGeometry::new(4096, 2, 64).unwrap();
        Platform::new(&other, 0).run_resolved(&rt);
    }

    #[test]
    fn batch_platform_matches_serial_runs() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJKLMNOPQRSTUVWXYZ", 12);
        let rt = ResolvedTrace::resolve(&cfg, &trace);
        let seeds: Vec<u64> = (0..9).map(|i| derive_seed(31, i)).collect();
        let mut batch = BatchPlatform::new(&cfg, &seeds);
        let batched = batch.run_resolved(&rt).to_vec();
        let mut platform = Platform::new(&cfg, 0);
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&s| platform.run_randomized(&trace, s))
            .collect();
        assert_eq!(batched, serial);
        // Reseeding the same batch for the next pass stays equivalent.
        let seeds2: Vec<u64> = (9..12).map(|i| derive_seed(31, i)).collect();
        batch.reseed(&seeds2);
        assert_eq!(batch.width(), 3);
        let batched2 = batch.run_resolved(&rt).to_vec();
        let serial2: Vec<u64> = seeds2
            .iter()
            .map(|&s| platform.run_randomized(&trace, s))
            .collect();
        assert_eq!(batched2, serial2);
    }

    #[test]
    fn batched_campaign_matches_serial_at_every_width() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJKLMNOPQRST", 15);
        let serial = campaign_slice(&cfg, &trace, 40, 100, 77);
        for width in [1, 2, 3, 7, 16, 64, 1000] {
            let par = Parallelism::serial().batch_width(width);
            assert_eq!(
                campaign_slice_with(&cfg, &trace, 40, 100, 77, &par),
                serial,
                "width={width}"
            );
        }
    }

    #[test]
    fn batch_width_builder_clamps_to_one() {
        assert_eq!(Parallelism::serial().batch_width(0).batch_width, 1);
        assert_eq!(Parallelism::default().batch_width, DEFAULT_BATCH_WIDTH);
    }

    #[test]
    fn run_separates_instruction_and_data() {
        // One instruction fetch and one read to the same line id: they go to
        // different caches, so both miss.
        let cfg = PlatformConfig::paper_default();
        let mut p = Platform::new(&cfg, 1);
        let t: Trace = [Access::fetch(0x100), Access::read(0x100)]
            .into_iter()
            .collect();
        let cycles = p.run_randomized(&t, 5);
        assert_eq!(cycles, 200, "two cold misses at 100 cycles each");
        assert_eq!(p.il1().stats().misses, 1);
        assert_eq!(p.dl1().stats().misses, 1);
    }

    #[test]
    fn hits_cost_hit_latency() {
        let cfg = PlatformConfig::paper_default();
        let mut p = Platform::new(&cfg, 1);
        let t: Trace = [Access::read(0x40), Access::read(0x40), Access::read(0x40)]
            .into_iter()
            .collect();
        let cycles = p.run_randomized(&t, 5);
        assert_eq!(cycles, 100 + 1 + 1);
    }

    #[test]
    fn issue_cycles_add_per_instruction() {
        let mut cfg = PlatformConfig::paper_default();
        cfg.latency.issue_cycles = 3;
        let mut p = Platform::new(&cfg, 1);
        let t: Trace = [Access::fetch(0x0), Access::fetch(0x4)]
            .into_iter()
            .collect();
        // First fetch misses (100), second hits same line (1), plus 2*3 issue.
        assert_eq!(p.run_randomized(&t, 5), 100 + 1 + 6);
    }

    #[test]
    fn warm_run_is_faster_than_cold() {
        let cfg = PlatformConfig::paper_default();
        let mut p = Platform::new(&cfg, 1);
        let trace = sym_trace("ABCD", 10);
        let cold = p.run_randomized(&trace, 77);
        let warm = p.run(&trace); // no flush
        assert!(warm < cold, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn mbpta_compliance_flag() {
        assert!(PlatformConfig::paper_default().is_mbpta_compliant());
        assert!(!PlatformConfig::deterministic().is_mbpta_compliant());
    }
}
