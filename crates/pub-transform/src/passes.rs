//! PUB re-landed as composable [`Pass`]es.
//!
//! The legacy [`pub_transform`](crate::pub_transform) entry point is a
//! monolith: widen, then equalize, with soundness enforced only by an
//! internal `debug_assert!`. This module exposes the same transformation as
//! a four-stage pipeline over the `mbcr-ir` pass framework:
//!
//! ```text
//! shape ──▶ widen ──▶ touch-insert ──▶ verify
//! ```
//!
//! * [`ShapePass`] — structural gate: lowers the program to a CFG and
//!   cross-checks dominators/loops against the AST ([`Analysis::validate`]);
//! * [`WidenPass`] — inserts full-array touches for path-dependent accesses
//!   ([`WidenPolicy`]);
//! * [`TouchInsertPass`] — innermost-first branch equalization (plus loop
//!   padding when configured), appending scratch variables and the `_pub`
//!   name suffix;
//! * [`VerifyPass`] — re-checks the PUB invariants with
//!   [`mbcr_ir::verify_balance`], failing the pipeline with structured
//!   diagnostics instead of trusting the transform.
//!
//! Both entry points call the same two stage seams internally
//! ([`widen_program`](crate::transform) / `equalize_program`), so
//! [`pub_pipeline`] output is **bit-identical** to `pub_transform` — the
//! workspace test suite enforces this across every Mälardalen benchmark.

use mbcr_ir::{
    fnv1a, verify_balance, Analysis, Cfg, DiagCode, Diagnostics, Pass, Pipeline, Program,
    ProgramError,
};

use crate::transform::{equalize_program, widen_program, PubConfig, WidenPolicy};

fn program_error_diags(e: &ProgramError) -> Diagnostics {
    let mut d = Diagnostics::new();
    d.push(DiagCode::InvalidProgram, None, format!("{e:?}"));
    d
}

/// Structural gate: validates the program and its CFG lowering (dominator
/// tree, natural loops, construct numbering) without changing it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShapePass;

impl Pass for ShapePass {
    fn name(&self) -> &'static str {
        "pub-shape"
    }

    fn run(&self, program: &Program) -> Result<Program, Diagnostics> {
        let cfg = Cfg::of(program);
        let analysis = Analysis::of(&cfg);
        let findings = analysis.validate(&cfg, program.body());
        if findings.is_empty() {
            Ok(program.clone())
        } else {
            let mut d = Diagnostics::new();
            for f in findings {
                d.push(DiagCode::InvalidProgram, None, f);
            }
            Err(d)
        }
    }
}

/// The widening stage: inserts full-array touches ahead of statements whose
/// array indices depend on path-dependent variables.
#[derive(Debug, Clone, Copy, Default)]
pub struct WidenPass {
    /// Which accesses to widen.
    pub policy: WidenPolicy,
}

impl Pass for WidenPass {
    fn name(&self) -> &'static str {
        "pub-widen"
    }

    fn digest(&self, upstream: u64) -> u64 {
        let tag: &[u8] = match self.policy {
            WidenPolicy::Off => b"off",
            WidenPolicy::PathDependent => b"path-dependent",
        };
        fnv1a(fnv1a(upstream, self.name().as_bytes()), tag)
    }

    fn run(&self, program: &Program) -> Result<Program, Diagnostics> {
        widen_program(program, self.policy)
            .map(|(p, _)| p)
            .map_err(|e| program_error_diags(&e))
    }
}

/// The equalization stage: inflates every conditional's branches to their
/// token-level shortest common supersequence (innermost-first), pads loops
/// when configured, and renames the result `<name>_pub`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TouchInsertPass {
    /// Whether to pad loops to their declared bounds. (The widening policy
    /// is the [`WidenPass`]'s concern and is ignored here.)
    pub pad_loops: bool,
}

impl Pass for TouchInsertPass {
    fn name(&self) -> &'static str {
        "pub-touch-insert"
    }

    fn digest(&self, upstream: u64) -> u64 {
        let tag: &[u8] = if self.pad_loops {
            b"pad-loops"
        } else {
            b"plain"
        };
        fnv1a(fnv1a(upstream, self.name().as_bytes()), tag)
    }

    fn run(&self, program: &Program) -> Result<Program, Diagnostics> {
        let cfg = PubConfig {
            pad_loops: self.pad_loops,
            widen: WidenPolicy::Off,
        };
        equalize_program(program, &cfg)
            .map(|r| r.program)
            .map_err(|e| program_error_diags(&e))
    }
}

/// The verification stage: re-checks the PUB soundness invariants on the
/// transformed program and fails with the findings if any are violated.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyPass;

impl Pass for VerifyPass {
    fn name(&self) -> &'static str {
        "pub-verify"
    }

    fn run(&self, program: &Program) -> Result<Program, Diagnostics> {
        let d = verify_balance(program);
        if d.is_empty() {
            Ok(program.clone())
        } else {
            Err(d)
        }
    }
}

/// The full PUB pipeline for a configuration:
/// `shape → widen → touch-insert → verify`.
#[must_use]
pub fn pub_pipeline(cfg: &PubConfig) -> Pipeline {
    Pipeline::new()
        .with(ShapePass)
        .with(WidenPass { policy: cfg.widen })
        .with(TouchInsertPass {
            pad_loops: cfg.pad_loops,
        })
        .with(VerifyPass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pub_transform;
    use mbcr_ir::{Expr, ProgramBuilder, Stmt, FNV_OFFSET};

    fn two_branch_program() -> Program {
        let mut b = ProgramBuilder::new("fig1b");
        let arr = b.array("m", 8);
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![
                Stmt::Assign(y, Expr::load(arr, Expr::c(0))),
                Stmt::Assign(y, Expr::load(arr, Expr::c(1))),
            ],
            vec![
                Stmt::Assign(y, Expr::load(arr, Expr::c(1))),
                Stmt::Assign(y, Expr::load(arr, Expr::c(2))),
            ],
        ));
        b.build().unwrap()
    }

    #[test]
    fn pipeline_matches_legacy_entry_point() {
        let p = two_branch_program();
        for cfg in [
            PubConfig::paper(),
            PubConfig::with_loop_padding(),
            PubConfig {
                pad_loops: false,
                widen: WidenPolicy::Off,
            },
        ] {
            let legacy = pub_transform(&p, &cfg).unwrap().program;
            let piped = pub_pipeline(&cfg).run(&p).unwrap();
            assert_eq!(legacy, piped, "config {cfg:?}");
        }
    }

    #[test]
    fn pipeline_has_the_documented_stages() {
        let pl = pub_pipeline(&PubConfig::paper());
        assert_eq!(
            pl.names(),
            vec!["pub-shape", "pub-widen", "pub-touch-insert", "pub-verify"]
        );
    }

    #[test]
    fn digests_distinguish_configs() {
        let a = pub_pipeline(&PubConfig::paper()).digest(FNV_OFFSET);
        let b = pub_pipeline(&PubConfig::with_loop_padding()).digest(FNV_OFFSET);
        let c = pub_pipeline(&PubConfig {
            pad_loops: false,
            widen: WidenPolicy::Off,
        })
        .digest(FNV_OFFSET);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, pub_pipeline(&PubConfig::paper()).digest(FNV_OFFSET));
    }

    #[test]
    fn verify_pass_rejects_an_unbalanced_program() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.var("x");
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![Stmt::Nop { count: 8 }],
            vec![],
        ));
        let p = b.build().unwrap();
        let err = VerifyPass.run(&p).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn shape_pass_is_identity_on_valid_programs() {
        let p = two_branch_program();
        assert_eq!(ShapePass.run(&p).unwrap(), p);
    }
}
