//! Property tests for [`ArtifactStore::merge`]: over arbitrary disjoint
//! and overlapping stage sets (JSON artifacts plus chunk-log prefixes of
//! shared sample streams), merging is idempotent and order-independent —
//! any permutation of source stores converges on the same artifact and
//! sample content.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use mbcr_engine::{ArtifactStore, StageStore};
use mbcr_json::Json;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mbcr-merge-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One generated universe: per-digest stage documents and per-digest
/// sample streams (the content-addressing contract: every store holding a
/// digest holds a prefix of the *same* content).
#[derive(Debug, Clone)]
struct Universe {
    docs: Vec<(u64, Json)>,
    streams: Vec<(u64, Vec<u64>)>,
}

/// Which slice of the universe one source store holds: a subset of the
/// docs and, per stream, a (possibly zero) prefix length.
#[derive(Debug, Clone)]
struct Holding {
    docs: Vec<bool>,
    prefixes: Vec<usize>,
}

fn build_store(tag: &str, universe: &Universe, holding: &Holding) -> ArtifactStore {
    let store = ArtifactStore::open(tmp_dir(tag)).expect("open store");
    for (held, (digest, doc)) in holding.docs.iter().zip(&universe.docs) {
        if *held {
            store.save_stage(*digest, doc).expect("save stage");
        }
    }
    for (len, (digest, stream)) in holding.prefixes.iter().zip(&universe.streams) {
        let len = (*len).min(stream.len());
        if len > 0 {
            store
                .append_samples(*digest, 0, stream.len(), &stream[..len])
                .expect("seed log");
        }
    }
    store
}

/// The observable content of a store: every stage doc plus every decoded
/// sample log, in a canonical order.
fn content(store: &ArtifactStore, universe: &Universe) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (digest, _) in &universe.docs {
        if let Some(doc) = store.load_stage(*digest) {
            out.insert(format!("doc:{digest:016x}"), doc.to_compact());
        }
    }
    for (digest, _) in &universe.streams {
        if let Some(samples) = StageStore::load_samples(store, *digest) {
            out.insert(format!("log:{digest:016x}"), format!("{samples:?}"));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merging any permutation of source stores into a fresh target —
    /// once or twice — converges on the same content: the union of the
    /// docs and, per stream, the longest prefix any source held.
    #[test]
    fn merge_is_idempotent_and_order_independent(
        doc_values in prop::collection::vec(0u64..1000, 1..5),
        stream_lens in prop::collection::vec(1usize..200, 1..4),
        holdings in prop::collection::vec(
            (prop::collection::vec(any::<bool>(), 5), prop::collection::vec(0usize..200, 4)),
            1..4,
        ),
        rotate in 0usize..4,
        case in any::<u64>(),
    ) {
        let universe = Universe {
            docs: doc_values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    (0x1000 + i as u64,
                     Json::Obj(vec![("v".to_string(), Json::UInt(*v))]))
                })
                .collect(),
            streams: stream_lens
                .iter()
                .enumerate()
                .map(|(i, len)| {
                    (0x2000 + i as u64,
                     (0..*len as u64).map(|r| r.wrapping_mul(31).wrapping_add(case)).collect())
                })
                .collect(),
        };
        let holdings: Vec<Holding> = holdings
            .into_iter()
            .map(|(docs, prefixes)| Holding {
                docs: docs.into_iter().take(universe.docs.len()).collect(),
                prefixes: prefixes.into_iter().take(universe.streams.len()).collect(),
            })
            .collect();
        let sources: Vec<ArtifactStore> = holdings
            .iter()
            .enumerate()
            .map(|(i, h)| build_store(&format!("src-{case}-{i}"), &universe, h))
            .collect();

        // Forward order, merged twice (idempotence).
        let forward = ArtifactStore::open(tmp_dir(&format!("fwd-{case}"))).unwrap();
        for src in &sources {
            forward.merge(src).expect("merge");
        }
        let once = content(&forward, &universe);
        let mut noop = true;
        for src in &sources {
            noop &= forward.merge(src).expect("re-merge").is_noop();
        }
        prop_assert!(noop, "a repeated merge must change nothing");
        prop_assert_eq!(&content(&forward, &universe), &once);

        // A rotated order converges on the same content.
        let rotated = ArtifactStore::open(tmp_dir(&format!("rot-{case}"))).unwrap();
        let n = sources.len();
        for k in 0..n {
            rotated.merge(&sources[(k + rotate) % n]).expect("merge");
        }
        prop_assert_eq!(&content(&rotated, &universe), &once);

        // The converged content is the union / longest-prefix of the
        // sources.
        for (i, (digest, doc)) in universe.docs.iter().enumerate() {
            let held = holdings.iter().any(|h| h.docs.get(i).copied().unwrap_or(false));
            let expect = held.then(|| doc.to_compact());
            prop_assert_eq!(
                once.get(&format!("doc:{digest:016x}")).map(String::as_str),
                expect.as_deref()
            );
        }
        for (i, (digest, stream)) in universe.streams.iter().enumerate() {
            let longest = holdings
                .iter()
                .map(|h| h.prefixes.get(i).copied().unwrap_or(0).min(stream.len()))
                .max()
                .unwrap_or(0);
            let merged = StageStore::load_samples(&forward, *digest);
            if longest == 0 {
                prop_assert!(merged.is_none());
            } else {
                prop_assert_eq!(merged.as_deref(), Some(&stream[..longest]));
            }
        }

        for store in sources.iter().chain([&forward, &rotated]) {
            let _ = fs::remove_dir_all(store.root());
        }
    }
}
