//! Criterion performance bench for the end-to-end pipeline (quick
//! configuration) — the cost of one full Figure 3 analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use mbcr::{analyze_pub_tac, AnalysisConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let bs = mbcr_malardalen::bs::benchmark();
    let cfg = AnalysisConfig::builder()
        .seed(77)
        .quick()
        .threads(1)
        .build();
    c.bench_function("analyze_pub_tac_bs_quick", |b| {
        b.iter(|| black_box(analyze_pub_tac(&bs.program, &bs.default_input, &cfg).expect("ok")));
    });

    let janne = mbcr_malardalen::janne::benchmark();
    c.bench_function("analyze_pub_tac_janne_quick", |b| {
        b.iter(|| {
            black_box(analyze_pub_tac(&janne.program, &janne.default_input, &cfg).expect("ok"))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
