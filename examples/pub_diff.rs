//! Show exactly what PUB does to a program: pseudo-C before and after.
//!
//! Run with `cargo run --release --example pub_diff [bench]`
//! (default: `bs`).

use mbcr::prelude::*;
use mbcr_ir::pretty_print;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bs".to_string());
    let bench =
        mbcr_malardalen::by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;

    let pubbed = pub_transform(&bench.program, &PubConfig::paper())?;

    println!("================ ORIGINAL ================");
    print!("{}", pretty_print(&bench.program));
    println!("\n================ PUBBED ==================");
    print!("{}", pretty_print(&pubbed.program));

    println!("\n================ WHAT CHANGED ============");
    println!(
        "widening touches      : {} (path-dependent addressing made path-invariant)",
        pubbed.report.widened_touches
    );
    for c in &pubbed.report.constructs {
        println!(
            "conditional #{:<3}      : +{} stmts into then, +{} into else \
             ({} instrs, {} data refs)",
            if c.construct_id == u32::MAX {
                "lp".to_string()
            } else {
                c.construct_id.to_string()
            },
            c.then_inserted,
            c.else_inserted,
            c.inserted_instrs,
            c.inserted_data_refs,
        );
    }
    println!(
        "total                 : {} instructions, {} data references",
        pubbed.report.total_inserted_instrs(),
        pubbed.report.total_inserted_data_refs()
    );
    println!("\n(the pubbed program is used only at analysis time; the deployed");
    println!("binary is the unmodified original — paper Section 2)");
    Ok(())
}
