//! Special functions for the statistical tests: log-gamma, regularized
//! incomplete gamma (→ chi-square tail), error function (→ normal tail) and
//! the Kolmogorov distribution.
//!
//! Implemented from the standard numerical recipes (Lanczos approximation,
//! series/continued-fraction incomplete gamma, Abramowitz & Stegun erf) so
//! the workspace needs no external statistics dependency and every number in
//! the reproduction is bit-stable.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_312e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction
/// otherwise (Numerical Recipes `gammp`).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma requires a > 0");
    assert!(x >= 0.0, "reg_upper_gamma requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-square distribution with `k` degrees of
/// freedom: `P(X > x)`.
///
/// # Panics
///
/// Panics if `k == 0` or `x < 0`.
#[must_use]
pub fn chi2_sf(x: f64, k: u32) -> f64 {
    assert!(k > 0, "chi2_sf requires k > 0");
    reg_upper_gamma(f64::from(k) / 2.0, x / 2.0)
}

/// Error function (Abramowitz & Stegun 7.1.26 with refinement; absolute
/// error below 1.5e-7, ample for test p-values).
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `P(Z > z)`.
#[must_use]
pub fn normal_sf(z: f64) -> f64 {
    1.0 - normal_cdf(z)
}

/// Two-sided normal p-value for a z-statistic.
#[must_use]
pub fn normal_two_sided_p(z: f64) -> f64 {
    (2.0 * normal_sf(z.abs())).clamp(0.0, 1.0)
}

/// Survival function of the Kolmogorov distribution:
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2 k² λ²}`.
///
/// Used for the asymptotic p-value of the two-sample KS test.
#[must_use]
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Sample mean; 0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator); 0 for fewer than 2 points.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        for (n, fact) in [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (7.0, 720.0),
        ] {
            assert!((ln_gamma(n) - f64::ln(fact)).abs() < 1e-10, "n = {n}");
        }
        // Γ(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            for x in [0.1, 1.0, 5.0, 20.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!((p + q - 1.0).abs() < 1e-10, "a={a}, x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn chi2_known_values() {
        // Chi2 with 1 dof: P(X > 3.841) ≈ 0.05.
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 1e-3);
        // Chi2 with 10 dof: P(X > 18.307) ≈ 0.05.
        assert!((chi2_sf(18.307, 10) - 0.05).abs() < 1e-3);
        // For k = 2, exactly exp(-x/2).
        assert!((chi2_sf(4.0, 2) - (-2.0f64).exp()).abs() < 1e-9);
        assert_eq!(chi2_sf(0.0, 5), 1.0);
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!((erf(3.0) - 0.999_977_91).abs() < 2e-7);
    }

    #[test]
    fn normal_cdf_quantiles() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((normal_sf(1.644_854) - 0.05).abs() < 1e-4);
        assert!((normal_two_sided_p(1.959_964) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn kolmogorov_known_values() {
        // Q(1.36) ≈ 0.049 (the classic 5% critical value).
        assert!((kolmogorov_sf(1.36) - 0.049).abs() < 2e-3);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Known sample variance with n-1: 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }
}
