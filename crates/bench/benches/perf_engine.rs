//! Criterion performance benches for the batch engine: raw DAG scheduling
//! overhead, cold sweep throughput, and warm (fully cached) re-runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mbcr_engine::{
    execute_dag, run_sweep, AnalysisKind, ArtifactStore, GeometrySpec, Registry, RunOptions,
    SweepSpec,
};
use std::hint::black_box;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-perf-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pure scheduling overhead: a 1000-node layered DAG of no-op jobs.
fn bench_dag_scheduling(c: &mut Criterion) {
    let layers = 10usize;
    let per_layer = 100usize;
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(layers * per_layer);
    for layer in 0..layers {
        for _ in 0..per_layer {
            if layer == 0 {
                deps.push(Vec::new());
            } else {
                let base = (layer - 1) * per_layer;
                deps.push(vec![base, base + per_layer / 2]);
            }
        }
    }
    let mut group = c.benchmark_group("engine_dag");
    group.throughput(Throughput::Elements(deps.len() as u64));
    group.bench_function("noop_1000_jobs_8_threads", |b| {
        b.iter(|| black_box(execute_dag(&deps, 8, |i| i)));
    });
    group.finish();
}

fn tiny_spec(name: &str) -> SweepSpec {
    SweepSpec::new(name)
        .benchmarks(["bs", "insertsort"])
        .geometries([
            GeometrySpec::paper_l1(),
            GeometrySpec::parse("2048:2:32").unwrap(),
        ])
        .seeds([9])
        .analyses([AnalysisKind::PubTac])
}

/// Cold sweep throughput: 4 real PUB+TAC jobs per iteration, `force` so
/// every iteration re-executes (steady-state engine + pipeline cost).
fn bench_cold_sweep(c: &mut Criterion) {
    let spec = tiny_spec("perf-cold");
    let registry = Registry::malardalen();
    let dir = tmp_dir("cold");
    let store = ArtifactStore::open(&dir).expect("store");
    let opts = RunOptions {
        threads: 4,
        force: true,
        ..RunOptions::default()
    };
    let mut group = c.benchmark_group("engine_sweep");
    group.throughput(Throughput::Elements(4));
    group.bench_function("cold_4_jobs", |b| {
        b.iter(|| black_box(run_sweep(&spec, &registry, &store, &opts).expect("sweep")));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm re-run throughput: every job served from the artifact store —
/// this is the skip-if-cached fast path a resumed campaign takes.
fn bench_warm_sweep(c: &mut Criterion) {
    let spec = tiny_spec("perf-warm");
    let registry = Registry::malardalen();
    let dir = tmp_dir("warm");
    let store = ArtifactStore::open(&dir).expect("store");
    run_sweep(&spec, &registry, &store, &RunOptions::default()).expect("prime the store");
    let opts = RunOptions {
        threads: 4,
        force: false,
        ..RunOptions::default()
    };
    let mut group = c.benchmark_group("engine_sweep");
    group.throughput(Throughput::Elements(4));
    group.bench_function("warm_4_jobs", |b| {
        b.iter(|| {
            let outcome = run_sweep(&spec, &registry, &store, &opts).expect("sweep");
            assert_eq!(outcome.executed, 0, "warm run must not execute");
            black_box(outcome)
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dag_scheduling, bench_cold_sweep, bench_warm_sweep
}
criterion_main!(benches);
