//! A work-stealing DAG executor on OS threads.
//!
//! Each worker owns a deque: it pushes jobs it unblocks onto its own queue
//! (locality — a combine job runs where its last dependency finished) and
//! steals from the back of a sibling's queue when it runs dry. No job runs
//! before all of its dependencies; results land in submission order, so
//! output is deterministic regardless of the interleaving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Executes `deps.len()` jobs respecting the dependency edges, with up to
/// `threads` workers. `run(i)` is called exactly once per job, only after
/// every job in `deps[i]` has completed; the result vector is indexed by
/// job.
///
/// # Panics
///
/// Panics on malformed graphs: out-of-range or self dependencies, or a
/// dependency cycle (detected as jobs left unexecuted when the pool
/// drains).
pub fn execute_dag<R, F>(deps: &[Vec<usize>], threads: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = deps.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);

    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending_counts = vec![0usize; n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            assert!(d < n, "job {i} depends on out-of-range job {d}");
            assert!(d != i, "job {i} depends on itself");
            dependents[d].push(i);
            pending_counts[i] += 1;
        }
    }
    // Kahn pre-check: a cycle would leave the pool spinning forever, so
    // reject it before spawning workers.
    {
        let mut indegree = pending_counts.clone();
        let mut ready: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = ready.pop_front() {
            seen += 1;
            for &dependent in &dependents[i] {
                indegree[dependent] -= 1;
                if indegree[dependent] == 0 {
                    ready.push_back(dependent);
                }
            }
        }
        assert!(
            seen == n,
            "dependency cycle: only {seen} of {n} jobs are reachable"
        );
    }

    let pending: Vec<AtomicUsize> = pending_counts.into_iter().map(AtomicUsize::new).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let remaining = AtomicUsize::new(n);
    let idle = (Mutex::new(()), Condvar::new());

    // Seed the initially-ready jobs round-robin across the workers.
    {
        let mut worker = 0usize;
        for (i, count) in pending.iter().enumerate() {
            if count.load(Ordering::Relaxed) == 0 {
                queues[worker % threads]
                    .lock()
                    .expect("queue poisoned")
                    .push_back(i);
                worker += 1;
            }
        }
    }

    std::thread::scope(|scope| {
        for me in 0..threads {
            let run = &run;
            let queues = &queues;
            let pending = &pending;
            let dependents = &dependents;
            let results = &results;
            let remaining = &remaining;
            let idle = &idle;
            scope.spawn(move || loop {
                if remaining.load(Ordering::Acquire) == 0 {
                    idle.1.notify_all();
                    return;
                }
                // Own queue first (LIFO: freshest unblocked work, warm
                // caches), then steal the oldest entry from a sibling.
                // The own-queue guard must drop before stealing: chaining
                // `.or_else` onto the locked pop keeps the guard alive
                // across the sibling locks, and idle workers stealing in
                // a ring then deadlock (w0 holds q0 wants q1, w1 holds q1
                // wants q2, ... wN holds qN wants q0).
                let own = queues[me].lock().expect("queue poisoned").pop_back();
                let job = own.or_else(|| {
                    (1..threads).find_map(|offset| {
                        queues[(me + offset) % threads]
                            .lock()
                            .expect("queue poisoned")
                            .pop_front()
                    })
                });
                let Some(job) = job else {
                    let guard = idle.0.lock().expect("idle lock poisoned");
                    if remaining.load(Ordering::Acquire) == 0 {
                        idle.1.notify_all();
                        return;
                    }
                    // Timed wait: a sibling may have pushed between our
                    // steal sweep and this lock.
                    let _unused = idle
                        .1
                        .wait_timeout(guard, Duration::from_millis(2))
                        .expect("idle lock poisoned");
                    continue;
                };
                let result = run(job);
                *results[job].lock().expect("result slot poisoned") = Some(result);
                let mut unblocked = 0usize;
                for &dependent in &dependents[job] {
                    if pending[dependent].fetch_sub(1, Ordering::AcqRel) == 1 {
                        queues[me]
                            .lock()
                            .expect("queue poisoned")
                            .push_back(dependent);
                        unblocked += 1;
                    }
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 || unblocked > 0 {
                    idle.1.notify_all();
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("dependency cycle: job never became ready")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_graph_is_fine() {
        let out: Vec<u32> = execute_dag(&[], 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn independent_jobs_all_run_once() {
        let deps: Vec<Vec<usize>> = vec![Vec::new(); 100];
        let calls = AtomicU64::new(0);
        let out = execute_dag(&deps, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn dependencies_complete_first() {
        // Chain 0 -> 1 -> 2 plus a fan-in job 3 depending on everything.
        let deps = vec![vec![], vec![0], vec![1], vec![0, 1, 2]];
        let order = Mutex::new(Vec::new());
        execute_dag(&deps, 4, |i| {
            order.lock().unwrap().push(i);
        });
        let order = order.into_inner().unwrap();
        let position = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(position(0) < position(1));
        assert!(position(1) < position(2));
        assert_eq!(position(3), 3);
    }

    #[test]
    fn wide_diamond_under_contention() {
        // 1 source -> 200 middles -> 1 sink, 8 workers.
        let n = 202;
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for middle in deps.iter_mut().take(201).skip(1) {
            *middle = vec![0];
        }
        deps[201] = (1..=200).collect();
        let out = execute_dag(&deps, 8, |i| i as u64);
        assert_eq!(out.len(), n);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn idle_workers_stealing_in_a_ring_do_not_deadlock() {
        // One long chain keeps at most one job runnable, so every other
        // worker constantly runs dry and goes stealing — the shape that
        // deadlocked when the own-queue guard was still held across the
        // sibling locks (reliably so on a single-CPU host). The watchdog
        // turns a regression into a failure instead of a hung suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for _round in 0..50 {
                let n = 40;
                let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
                for (i, d) in deps.iter_mut().enumerate().skip(1) {
                    *d = vec![i - 1];
                }
                let out = execute_dag(&deps, 8, |i| i);
                assert_eq!(out.len(), n);
            }
            tx.send(()).expect("watchdog receiver gone");
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("execute_dag deadlocked under steal contention");
    }

    #[test]
    fn single_thread_executes_in_topological_order() {
        let deps = vec![vec![1], vec![], vec![0]]; // 1 -> 0 -> 2
        let order = Mutex::new(Vec::new());
        execute_dag(&deps, 1, |i| {
            order.lock().unwrap().push(i);
        });
        assert_eq!(order.into_inner().unwrap(), vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn rejects_out_of_range_dependency() {
        execute_dag(&[vec![5]], 1, |_| ());
    }

    #[test]
    #[should_panic(expected = "depends on itself")]
    fn rejects_self_dependency() {
        execute_dag(&[vec![0]], 1, |_| ());
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn rejects_cycles() {
        execute_dag(&[vec![1], vec![0]], 2, |_| ());
    }
}
