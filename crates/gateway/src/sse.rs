//! Server-sent events: response framing (server) and stream parsing
//! (client).

use std::io::{self, BufRead, Write};

/// Starts an SSE response: status line and headers, stream left open.
///
/// # Errors
///
/// Write failures.
pub fn sse_headers<W: Write>(writer: &mut W) -> io::Result<()> {
    writer.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    writer.flush()
}

/// Writes one event frame (`event:` + `data:` + blank line) and
/// flushes, so followers see it immediately. `data` must be one line —
/// the service plane streams compact JSON, which never embeds newlines.
///
/// # Errors
///
/// Write failures (the follower disconnected; callers end the stream).
pub fn sse_event<W: Write>(writer: &mut W, event: &str, data: &str) -> io::Result<()> {
    debug_assert!(!data.contains('\n'), "SSE data must be a single line");
    write!(writer, "event: {event}\ndata: {data}\n\n")?;
    writer.flush()
}

/// One parsed server-sent event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `event:` field (empty when the server sent none).
    pub event: String,
    /// The `data:` field(s), multiple lines joined with `\n`.
    pub data: String,
}

/// A client-side SSE stream parser over any buffered reader. The HTTP
/// response headers must already be consumed (see
/// [`crate::open_sse`]).
#[derive(Debug)]
pub struct SseReader<R> {
    reader: R,
}

impl<R: BufRead> SseReader<R> {
    /// Wraps a reader positioned at the first event.
    pub fn new(reader: R) -> Self {
        Self { reader }
    }

    /// The next event, or `None` when the server closed the stream at
    /// an event boundary. Comment lines (`:`) and unknown fields are
    /// skipped, per the SSE format.
    ///
    /// # Errors
    ///
    /// Read failures, and [`io::ErrorKind::UnexpectedEof`] when the
    /// stream dies mid-event — the signal `mbcr report --follow` uses
    /// to reconnect instead of trusting a half-delivered frame.
    pub fn next_event(&mut self) -> io::Result<Option<SseEvent>> {
        let mut event = String::new();
        let mut data: Vec<String> = Vec::new();
        let mut saw_field = false;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                if saw_field {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed mid-event",
                    ));
                }
                return Ok(None);
            }
            let line = line.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                if saw_field {
                    return Ok(Some(SseEvent {
                        event,
                        data: data.join("\n"),
                    }));
                }
                continue; // stray keep-alive blank line
            }
            saw_field = true;
            let (field, value) = line.split_once(':').unwrap_or((line, ""));
            let value = value.strip_prefix(' ').unwrap_or(value);
            match field {
                "event" => event = value.to_string(),
                "data" => data.push(value.to_string()),
                _ => {} // comments and unknown fields are skipped
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_the_frame_format() {
        let mut raw = Vec::new();
        sse_event(&mut raw, "progress", "{\"id\":\"s000\"}").unwrap();
        sse_event(&mut raw, "end", "{}").unwrap();
        let mut reader = SseReader::new(io::Cursor::new(raw));
        assert_eq!(
            reader.next_event().unwrap(),
            Some(SseEvent {
                event: "progress".to_string(),
                data: "{\"id\":\"s000\"}".to_string(),
            })
        );
        assert_eq!(
            reader.next_event().unwrap(),
            Some(SseEvent {
                event: "end".to_string(),
                data: "{}".to_string(),
            })
        );
        assert_eq!(reader.next_event().unwrap(), None, "clean end of stream");
    }

    #[test]
    fn comments_unknown_fields_and_multiline_data_are_handled() {
        let raw = b": keep-alive\nretry: 100\nevent: progress\ndata: a\ndata: b\n\n";
        let mut reader = SseReader::new(io::Cursor::new(raw.to_vec()));
        let event = reader.next_event().unwrap().unwrap();
        assert_eq!(event.event, "progress");
        assert_eq!(event.data, "a\nb");
    }

    #[test]
    fn eof_mid_event_is_unexpected_eof_not_a_truncated_event() {
        let raw = b"event: progress\ndata: {\"half\":";
        let mut reader = SseReader::new(io::Cursor::new(raw.to_vec()));
        let err = reader.next_event().expect_err("mid-event EOF must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
