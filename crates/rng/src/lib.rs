//! Deterministic, bit-reproducible pseudo-random number generation for the
//! `mbcr` simulators.
//!
//! Measurement-based probabilistic timing analysis (MBPTA) experiments must be
//! *exactly* reproducible: the number of runs derived by TAC, the pWCET curves
//! and every table in the paper reproduction depend on the random placement
//! seeds used by the cache simulator. Rather than depending on the evolving
//! `rand` crate APIs, this crate pins two small, well-known generators:
//!
//! * [`SplitMix64`] — used for seed derivation (stream splitting) and as the
//!   mixing function of the random cache placement hash;
//! * [`Xoshiro256PlusPlus`] — the workhorse generator for random replacement
//!   decisions and Monte-Carlo sampling.
//!
//! Both are implemented from the public-domain reference algorithms by
//! Steele/Lea/Vigna and Blackman/Vigna.
//!
//! # Examples
//!
//! ```
//! use mbcr_rng::{Rng64, Xoshiro256PlusPlus};
//!
//! let mut rng = Xoshiro256PlusPlus::from_seed(42);
//! let way = rng.below(4); // uniform victim way in a 4-way cache set
//! assert!(way < 4);
//! let u = rng.next_f64(); // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&u));
//! ```

mod splitmix;
mod xoshiro;

pub use splitmix::{mix64, SplitMix64};
pub use xoshiro::Xoshiro256PlusPlus;

/// A 64-bit pseudo-random generator.
///
/// The trait provides derived sampling helpers on top of the raw
/// [`next_u64`](Rng64::next_u64) output: uniform integers without modulo bias
/// (Lemire's method), uniform floats, Bernoulli draws, and the exponential and
/// Gaussian variates used by the EVT test-suite calibrations.
pub trait Rng64 {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard unbiased construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire (2019): fast random integer generation in an interval.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an exponential variate with the given `rate` (λ).
    ///
    /// Used by the EVT calibration tests: an exact exponential tail lets the
    /// coefficient-of-variation fit be validated against known quantiles.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential() requires a positive rate");
        // Inverse CDF on (0, 1]: avoids ln(0).
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// Samples a standard Gaussian variate.
    fn gaussian(&mut self) -> f64 {
        // Marsaglia polar method: rejection, but branch-predictable and exact.
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Samples a Gumbel (type-I extreme value) variate with location `mu` and
    /// scale `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive.
    fn gumbel(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma > 0.0, "gumbel() requires a positive scale");
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        mu - sigma * (-u.ln()).ln()
    }

    /// Fisher–Yates shuffles a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

/// Derives the `index`-th child seed of `master`.
///
/// Each (master, index) pair yields a statistically independent stream seed;
/// measurement campaigns use this to give every run its own placement and
/// replacement seeds while staying reproducible from one master seed.
///
/// # Examples
///
/// ```
/// use mbcr_rng::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
#[must_use]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    // Two rounds of mix64 over a golden-ratio-spaced combination: cheap and
    // passes the independence smoke tests below.
    mix64(
        master
            ^ mix64(
                index
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0xD1B5_4A32_D192_ED03),
            ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range_and_covers_all_values() {
        let mut rng = Xoshiro256PlusPlus::from_seed(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        let mut rng = Xoshiro256PlusPlus::from_seed(7);
        let _ = rng.below(0);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::from_seed(3);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Xoshiro256PlusPlus::from_seed(11);
        let k = 16u64;
        let n = 160_000;
        let mut counts = vec![0u64; k as usize];
        for _ in 0..n {
            counts[rng.below(k) as usize] += 1;
        }
        let expected = (n / k) as f64;
        // Chi-square with 15 dof: 99.9% critical value is 37.7.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 37.7, "chi2 = {chi2}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Xoshiro256PlusPlus::from_seed(5);
        let rate = 2.5;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256PlusPlus::from_seed(9);
        let n = 200_000;
        let sample: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn gumbel_median_matches_theory() {
        let mut rng = Xoshiro256PlusPlus::from_seed(13);
        let (mu, sigma) = (10.0, 3.0);
        let n = 100_001;
        let mut sample: Vec<f64> = (0..n).map(|_| rng.gumbel(mu, sigma)).collect();
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sample[n / 2];
        let theory = mu - sigma * (2f64.ln().ln()); // mu - sigma*ln(ln 2)
        assert!(
            (median - theory).abs() < 0.1,
            "median = {median}, theory = {theory}"
        );
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(derive_seed(42, i)), "collision at index {i}");
        }
        assert_eq!(derive_seed(42, 17), derive_seed(42, 17));
        assert_ne!(derive_seed(42, 17), derive_seed(43, 17));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256PlusPlus::from_seed(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_frequency() {
        let mut rng = Xoshiro256PlusPlus::from_seed(31);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count() as f64;
        assert!((hits / n as f64 - 0.25).abs() < 0.01);
    }
}
