//! The MBPTA convergence procedure: how many runs until the pWCET estimate
//! stabilizes.
//!
//! This produces the paper's `R_orig` and `R_pub` (Table 2): starting from
//! an initial sample, measurements are added in steps; after each step the
//! pWCET at a check probability is re-estimated, and the campaign stops when
//! the last few estimates agree within a tolerance and the i.i.d. tests
//! pass. TAC then potentially *increases* that number to
//! `R_pub+tac = max(R_pub, R_tac)` to reach cache representativeness.

use crate::exp_tail::{EvtError, TailConfig};
use crate::iid::IidReport;
use crate::pwcet::{Dither, FitMethod, Pwcet};

/// Configuration of the convergence procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceConfig {
    /// Runs collected before the first estimate.
    pub initial: usize,
    /// Runs added per step.
    pub step: usize,
    /// Hard cap on the campaign length.
    pub max_runs: usize,
    /// Exceedance probability at which stability is checked.
    pub p_check: f64,
    /// Maximum relative spread of the last estimates to declare stability.
    pub epsilon: f64,
    /// Number of consecutive estimates that must agree.
    pub stable_windows: usize,
    /// Significance level for the i.i.d. tests.
    pub alpha_iid: f64,
    /// Tail-fit configuration.
    pub tail: TailConfig,
    /// Fit method.
    pub method: FitMethod,
    /// Dithering for the discrete cycle counts.
    pub dither: Dither,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        Self {
            initial: 300,
            step: 100,
            max_runs: 100_000,
            p_check: 1e-12,
            epsilon: 0.02,
            stable_windows: 4,
            alpha_iid: 0.01,
            tail: TailConfig::default(),
            method: FitMethod::ExpTailCv,
            dither: Dither::Uniform { seed: 0xD17 },
        }
    }
}

/// Result of a convergence campaign.
#[derive(Debug, Clone)]
pub struct ConvergenceOutcome {
    /// Runs collected when the procedure stopped.
    pub runs: usize,
    /// The final pWCET estimate.
    pub pwcet: Pwcet,
    /// i.i.d. evidence on the final sample.
    pub iid: IidReport,
    /// `(runs, pWCET@p_check)` after each step.
    pub history: Vec<(usize, f64)>,
    /// `false` if `max_runs` was reached without stabilizing.
    pub converged: bool,
}

/// Runs the convergence procedure, pulling measurements from `sampler`.
///
/// `sampler(count)` must return `count` *new* execution times (cycles); it
/// is called repeatedly and its outputs are accumulated.
///
/// # Errors
///
/// Propagates [`EvtError::NotEnoughData`] only if even `max_runs`
/// measurements cannot support a fit; degenerate (deterministic) samples
/// converge immediately with a constant pWCET.
pub fn converge(
    mut sampler: impl FnMut(usize) -> Vec<u64>,
    cfg: &ConvergenceConfig,
) -> Result<ConvergenceOutcome, EvtError> {
    assert!(
        cfg.initial > 0 && cfg.step > 0,
        "initial and step must be positive"
    );
    let mut sample: Vec<u64> = Vec::with_capacity(cfg.initial);
    sample.extend(sampler(cfg.initial));
    let mut history: Vec<(usize, f64)> = Vec::new();

    loop {
        match Pwcet::fit(&sample, cfg.method, &cfg.tail, cfg.dither) {
            Ok(pwcet) => {
                let q = pwcet.quantile(cfg.p_check);
                history.push((sample.len(), q));
                let stable = history.len() >= cfg.stable_windows && {
                    let tail = &history[history.len() - cfg.stable_windows..];
                    let lo = tail.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
                    let hi = tail
                        .iter()
                        .map(|&(_, v)| v)
                        .fold(f64::NEG_INFINITY, f64::max);
                    hi > 0.0 && (hi - lo) / hi <= cfg.epsilon
                };
                let float_sample: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
                let iid = IidReport::evaluate(&float_sample);
                if stable && iid.passed(cfg.alpha_iid) {
                    return Ok(ConvergenceOutcome {
                        runs: sample.len(),
                        pwcet,
                        iid,
                        history,
                        converged: true,
                    });
                }
                if sample.len() >= cfg.max_runs {
                    return Ok(ConvergenceOutcome {
                        runs: sample.len(),
                        pwcet,
                        iid,
                        history,
                        converged: false,
                    });
                }
            }
            Err(e) => {
                if sample.len() >= cfg.max_runs {
                    return Err(e);
                }
            }
        }
        sample.extend(sampler(cfg.step));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_rng::{Rng64, Xoshiro256PlusPlus};

    fn exp_sampler(seed: u64) -> impl FnMut(usize) -> Vec<u64> {
        let mut rng = Xoshiro256PlusPlus::from_seed(seed);
        move |count| {
            (0..count)
                .map(|_| 2000 + rng.exponential(0.01) as u64)
                .collect()
        }
    }

    #[test]
    fn converges_on_well_behaved_sample() {
        let out = converge(exp_sampler(1), &ConvergenceConfig::default()).unwrap();
        assert!(out.converged);
        assert!(out.runs >= 300);
        assert!(out.runs < 20_000, "runs = {}", out.runs);
        assert!(out.iid.passed(0.01));
        // History is recorded at every successful step.
        assert_eq!(out.history.last().unwrap().0, out.runs);
        assert!(out.pwcet.quantile(1e-12) > 2000.0);
    }

    #[test]
    fn deterministic_sample_converges_to_constant() {
        let out = converge(|count| vec![4242u64; count], &ConvergenceConfig::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.pwcet.quantile(1e-12), 4242.0);
        assert_eq!(out.runs, 300 + 3 * 100, "stable_windows steps past initial");
    }

    #[test]
    fn max_runs_caps_non_converging_campaign() {
        // A drifting sampler never stabilizes.
        let mut base = 0u64;
        let mut rng = Xoshiro256PlusPlus::from_seed(2);
        let cfg = ConvergenceConfig {
            max_runs: 1500,
            ..ConvergenceConfig::default()
        };
        let out = converge(
            |count| {
                (0..count)
                    .map(|_| {
                        base += 40;
                        base + rng.exponential(0.001) as u64
                    })
                    .collect()
            },
            &cfg,
        )
        .unwrap();
        assert!(!out.converged);
        assert!(out.runs >= 1500);
    }

    #[test]
    fn stricter_epsilon_needs_more_runs() {
        let loose = ConvergenceConfig {
            epsilon: 0.10,
            ..ConvergenceConfig::default()
        };
        let strict = ConvergenceConfig {
            epsilon: 0.005,
            ..ConvergenceConfig::default()
        };
        let r_loose = converge(exp_sampler(5), &loose).unwrap().runs;
        let r_strict = converge(exp_sampler(5), &strict).unwrap().runs;
        assert!(r_strict >= r_loose, "strict {r_strict} vs loose {r_loose}");
    }

    #[test]
    fn history_is_monotone_in_runs() {
        let out = converge(exp_sampler(9), &ConvergenceConfig::default()).unwrap();
        assert!(out.history.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
