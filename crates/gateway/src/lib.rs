//! # mbcr-gateway — zero-dependency HTTP/1.1 + JSON + SSE plumbing
//!
//! The wire-format layer of the mbcr service plane: everything needed to
//! put the sweep registry behind plain HTTP — hardened request parsing,
//! response writing, server-sent event (SSE) framing, and a minimal
//! client — built on nothing but `std` and [`mbcr_json`], in the same
//! spirit as the binary `mbcr-shard` protocol.
//!
//! This crate is deliberately policy-free: it knows requests, responses
//! and event streams, never sweeps. The `mbcr-shard` coordinator mounts
//! the actual routes (`POST /v1/sweeps`, `GET /v1/sweeps/{id}/events`,
//! `GET /v1/metrics`, …) on top, and `mbcr report --connect http://…`
//! uses the client half to follow them.
//!
//! The server-side parser treats the network as hostile, mirroring the
//! binary protocol's discipline:
//!
//! * request lines, header lines, header counts and bodies are all
//!   hard-capped ([`MAX_REQUEST_LINE`], [`MAX_HEADER_LINE`],
//!   [`MAX_HEADERS`], [`MAX_BODY`]) — an oversized or runaway request
//!   fails fast instead of buffering unbounded bytes;
//! * a connection closed before the first byte is a clean `None`; one
//!   torn mid-request (mid-line, mid-headers, mid-body) is an error —
//!   exactly the `Closed`/torn split `mbcr-shard`'s framing makes;
//! * `Transfer-Encoding` is refused outright (no chunked-body state
//!   machine to confuse), and `Content-Length` must parse and fit.

mod client;
mod http;
mod sse;

pub use client::{open_sse, parse_url, request, Response};
pub use http::{
    read_request, respond_empty, respond_error, respond_json, respond_text, status_reason, Request,
    MAX_BODY, MAX_HEADERS, MAX_HEADER_LINE, MAX_REQUEST_LINE,
};
pub use sse::{sse_event, sse_headers, SseEvent, SseReader};
