//! The cardinal telemetry constraint: tracing is a pure side channel.
//! A sweep run with span capture, histograms and the flight recorder all
//! live must produce an artifact store byte-identical to an untraced run
//! of the same spec — manifest, table2.csv, every job/stage artifact,
//! every sample log. Recorder output must land outside the store.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use mbcr_engine::{
    run_sweep, AnalysisKind, ArtifactStore, GeometrySpec, InputSelection, Registry, RunOptions,
    SweepSpec,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-obs-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Small but exercises every span source: a multipath benchmark (combine
/// node), a pub_tac campaign (campaign-chunk spans from sample appends),
/// multiple threads (scheduler-claim spans from the pool).
fn spec() -> SweepSpec {
    SweepSpec::new("obs-it")
        .benchmarks(["bs"])
        .inputs(InputSelection::Named(vec!["v1".into(), "v3".into()]))
        .geometries([GeometrySpec::paper_l1()])
        .seeds([11])
        .analyses([AnalysisKind::PubTac, AnalysisKind::Multipath])
}

/// Every file under `root`, keyed by its path relative to `root`.
fn collect_files(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, files: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, files);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                files.insert(rel, fs::read(&path).expect("read file"));
            }
        }
    }
    let mut files = BTreeMap::new();
    walk(root, root, &mut files);
    files
}

#[test]
fn traced_sweep_is_byte_identical_to_untraced() {
    let registry = Registry::malardalen();
    let spec = spec();
    let opts = RunOptions {
        threads: 4,
        ..RunOptions::default()
    };

    // Untraced baseline.
    mbcr_obs::set_enabled(false);
    let dir_plain = tmp_dir("plain");
    let store = ArtifactStore::open(&dir_plain).expect("open plain store");
    let plain = run_sweep(&spec, &registry, &store, &opts).expect("untraced sweep");
    assert_eq!(plain.failed, 0);

    // Same spec with the full telemetry stack live: collection on, trace
    // capture running, recorder armed to dump outside the store.
    let recorder_dir = tmp_dir("recorder");
    mbcr_obs::set_dump_path(recorder_dir.join("flight-recorder.json"));
    mbcr_obs::set_enabled(true);
    mbcr_obs::start_capture();
    let dir_traced = tmp_dir("traced");
    let store = ArtifactStore::open(&dir_traced).expect("open traced store");
    let traced = run_sweep(&spec, &registry, &store, &opts).expect("traced sweep");
    let (events, dropped) = mbcr_obs::finish_capture();
    let dump = mbcr_obs::dump_now().expect("recorder dump");
    mbcr_obs::set_enabled(false);
    assert_eq!(traced.failed, 0);
    assert_eq!(traced.executed, plain.executed);

    // The stores are byte-identical, file for file.
    let plain_files = collect_files(&dir_plain);
    let traced_files = collect_files(&dir_traced);
    let plain_names: Vec<&String> = plain_files.keys().collect();
    let traced_names: Vec<&String> = traced_files.keys().collect();
    assert_eq!(plain_names, traced_names, "store file sets differ");
    for (name, bytes) in &plain_files {
        assert_eq!(
            bytes, &traced_files[name],
            "'{name}' differs between the traced and untraced store"
        );
    }

    // The capture actually saw the sweep: at least one span per executed
    // stage, claims from the pool, and campaign chunks from the appends.
    assert_eq!(dropped, 0, "trace sink overflowed on a tiny sweep");
    let count = |kind: mbcr_obs::SpanKind| events.iter().filter(|e| e.kind == kind).count();
    assert!(
        count(mbcr_obs::SpanKind::StageExecute) >= traced.executed,
        "expected a stage-execute span per executed job"
    );
    assert!(count(mbcr_obs::SpanKind::SchedulerClaim) > 0);
    assert!(count(mbcr_obs::SpanKind::CampaignChunk) > 0);

    // The Chrome export is one complete event per span.
    let chrome = mbcr_obs::chrome_trace(&events);
    let rendered = chrome.to_compact();
    let parsed = mbcr_json::parse(&rendered).expect("chrome trace parses");
    let rows = parsed
        .get("traceEvents")
        .and_then(mbcr_json::Json::as_array)
        .expect("traceEvents array");
    assert_eq!(rows.len(), events.len());

    // The recorder dumped outside both stores, and its dump parses.
    let dump = dump.expect("a dump path was set");
    assert!(dump.starts_with(&recorder_dir));
    assert!(!dump.starts_with(&dir_plain) && !dump.starts_with(&dir_traced));
    let doc = mbcr_json::parse(&fs::read_to_string(&dump).expect("read dump"))
        .expect("recorder dump parses");
    assert_eq!(
        doc.get("schema").and_then(mbcr_json::Json::as_str),
        Some("mbcr-obs/1")
    );

    for dir in [dir_plain, dir_traced, recorder_dir] {
        let _ = fs::remove_dir_all(dir);
    }
}
