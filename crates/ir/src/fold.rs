//! Constant folding on the [`Pass`]/[`Pipeline`] seam.
//!
//! [`ConstFold`] rewrites every load-free subexpression with a known
//! compile-time value into a single [`Expr::Const`] literal, using the
//! same [`const_eval`] the verifier and the cache analysis trust. The
//! rewrite is *trace-conservative*: a subtree is folded only when it
//! contains no [`Expr::Load`] (because `const_eval` refuses anything
//! else), so the data access sequence of every run is untouched; only
//! the instruction footprint shrinks. Division by a constant zero also
//! refuses to fold, preserving the interpreter's faulting behavior.
//!
//! The pass is **verify-gated**: a program that enters balance-clean
//! (no [`verify_balance`] findings) must leave balance-clean. Folding
//! shrinks each conditional arm by its own foldable slack, and equalized
//! arms that were balanced by *different* expression shapes can shrink
//! by different amounts. Rather than emit such a silently-unsound
//! program, the pass fails with the post-fold diagnostics — the same
//! contract as any other failing [`Pass`].

use crate::analysis::const_eval;
use crate::expr::Expr;
use crate::pass::Pass;
use crate::program::Program;
use crate::stmt::Stmt;
use crate::verify::{verify_balance, DiagCode, Diagnostics};

/// Folds every load-free constant subexpression of `e` to a literal.
///
/// The fold is outside-in: the largest foldable subtree collapses in one
/// step, and unfoldable nodes recurse into their children (so `x + (2*3)`
/// becomes `x + 6`).
#[must_use]
pub fn fold_expr(e: &Expr) -> Expr {
    if let Some(v) = const_eval(e) {
        return Expr::Const(v);
    }
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Load(a, idx) => Expr::Load(*a, Box::new(fold_expr(idx))),
        Expr::Un(op, x) => Expr::Un(*op, Box::new(fold_expr(x))),
        Expr::Bin(op, l, r) => Expr::Bin(*op, Box::new(fold_expr(l)), Box::new(fold_expr(r))),
    }
}

fn fold_seq(seq: &[Stmt]) -> Vec<Stmt> {
    seq.iter().map(fold_stmt).collect()
}

fn fold_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Assign(v, e) => Stmt::Assign(*v, fold_expr(e)),
        Stmt::Store {
            array,
            index,
            value,
        } => Stmt::Store {
            array: *array,
            index: fold_expr(index),
            value: fold_expr(value),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: fold_expr(cond),
            then_branch: fold_seq(then_branch),
            else_branch: fold_seq(else_branch),
        },
        Stmt::While {
            cond,
            max_iter,
            body,
        } => Stmt::While {
            cond: fold_expr(cond),
            max_iter: *max_iter,
            body: fold_seq(body),
        },
        Stmt::For {
            var,
            from,
            to,
            max_iter,
            body,
        } => Stmt::For {
            var: *var,
            from: fold_expr(from),
            to: fold_expr(to),
            max_iter: *max_iter,
            body: fold_seq(body),
        },
        Stmt::Touch { refs, pad } => Stmt::Touch {
            refs: refs.iter().map(|(a, e)| (*a, fold_expr(e))).collect(),
            pad: *pad,
        },
        Stmt::Nop { count } => Stmt::Nop { count: *count },
    }
}

/// The constant-folding pass.
///
/// Control structure (branches, loop bounds) and the data access
/// sequence are preserved exactly; only expression code shrinks, so the
/// Ball–Larus path space of the output is identical to the input's and
/// every run computes the same final state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, program: &Program) -> Result<Program, Diagnostics> {
        let folded = program.with_body(fold_seq(program.body())).map_err(|e| {
            let mut d = Diagnostics::new();
            d.push(
                DiagCode::InvalidProgram,
                None,
                format!("const-fold produced an invalid program: {e:?}"),
            );
            d
        })?;
        // The verify gate: never turn a balance-clean program into a
        // dirty one. (A dirty input stays the caller's problem — this
        // pass may legitimately run pre-PUB.)
        if verify_balance(program).is_empty() {
            let after = verify_balance(&folded);
            if !after.is_empty() {
                return Err(after);
            }
        }
        Ok(folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blpath::PathSpace;
    use crate::cachean::classify;
    use crate::interp::{execute, Inputs};
    use crate::pass::{Pipeline, FNV_OFFSET};
    use crate::program::ProgramBuilder;
    use crate::verify::DiagCode;
    use mbcr_cache::CacheGeometry;

    /// A chain of `n` constant additions: `(((1+1)+1)+…)`, instruction
    /// cost `n + 1`, folding to a single literal of cost 1.
    fn big_const(n: usize) -> Expr {
        let mut e = Expr::c(1);
        for _ in 0..n {
            e = e.add(Expr::c(1));
        }
        e
    }

    #[test]
    fn folds_outside_in_and_keeps_loads_and_faults() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let a = b.array("a", 4);
        drop(b);
        // Whole-constant trees collapse to one literal.
        assert_eq!(
            fold_expr(&Expr::c(2).mul(Expr::c(3)).add(Expr::c(1))),
            Expr::c(7)
        );
        // Unfoldable roots still fold their constant children.
        assert_eq!(
            fold_expr(&Expr::var(x).add(Expr::c(2).mul(Expr::c(3)))),
            Expr::var(x).add(Expr::c(6))
        );
        // Load nodes survive (their index folds; the access stays).
        assert_eq!(
            fold_expr(&Expr::load(a, Expr::c(1).add(Expr::c(1)))),
            Expr::load(a, Expr::c(2))
        );
        // Division by a constant zero must keep faulting at runtime.
        let fault = Expr::c(1).div(Expr::c(0));
        assert_eq!(fold_expr(&fault), fault);
    }

    #[test]
    fn folding_preserves_state_path_and_data_trace() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        let i = b.var("i");
        let a = b.array("a", 4);
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(2).add(Expr::c(2)),
            4,
            vec![
                Stmt::Assign(x, Expr::load(a, Expr::var(i)).add(big_const(10))),
                Stmt::store(a, Expr::var(i), Expr::var(x)),
            ],
        ));
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(6).sub(Expr::c(1))),
            vec![Stmt::Assign(y, Expr::c(1))],
            vec![Stmt::Assign(y, Expr::c(1))],
        ));
        let p = b.build().unwrap();
        let folded = ConstFold.run(&p).unwrap();
        assert_ne!(folded, p, "something must actually fold");

        let inputs = Inputs::new().with_array(a, vec![3, 1, 4, 1]);
        let before = execute(&p, &inputs).unwrap();
        let after = execute(&folded, &inputs).unwrap();
        assert_eq!(before.state, after.state, "final state must be identical");
        assert_eq!(before.path, after.path, "decisions must be identical");
        let data =
            |r: &crate::interp::Run| -> Vec<_> { r.trace.data_accesses().copied().collect() };
        assert_eq!(data(&before), data(&after), "data trace must be identical");
    }

    #[test]
    fn balance_clean_program_stays_clean_through_the_fold() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        // Identical arms: folding shrinks both by the same amount.
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![Stmt::Assign(x, Expr::c(2).add(Expr::c(3)))],
            vec![Stmt::Assign(x, Expr::c(4).add(Expr::c(1)))],
        ));
        let p = b.build().unwrap();
        assert!(verify_balance(&p).is_empty());
        let folded = ConstFold.run(&p).unwrap();
        assert!(verify_balance(&folded).is_empty());
    }

    #[test]
    fn gate_refuses_a_fold_that_unbalances_equalized_arms() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        // Both arms cost 4 instructions, but only the then-arm folds
        // (to cost 2): emitting that program would break PUB001.
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![Stmt::Assign(x, Expr::c(2).add(Expr::c(3)))],
            vec![Stmt::Assign(
                x,
                Expr::var(y)
                    .add(Expr::var(y))
                    .add(Expr::var(y))
                    .add(Expr::var(y)),
            )],
        ));
        let p = b.build().unwrap();
        assert!(verify_balance(&p).is_empty(), "input must be clean");
        let err = ConstFold.run(&p).unwrap_err();
        assert!(err.codes().contains(&DiagCode::Pub001), "{err}");
    }

    /// The tentpole cross-check: folding shrinks a loop body that used to
    /// overflow a tiny instruction cache, so the static hit/miss bounds
    /// tighten (or stay put) — they never get looser.
    #[test]
    fn fold_then_classify_tightens_or_preserves_bounds() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        let i = b.var("i");
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(4),
            4,
            vec![
                Stmt::Assign(x, big_const(40)),
                Stmt::Assign(y, Expr::var(x)),
            ],
        ));
        let p = b.build().unwrap();
        let folded = ConstFold.run(&p).unwrap();

        // Control structure is untouched: same Ball–Larus path space.
        assert_eq!(
            PathSpace::of(&p).num_paths(),
            PathSpace::of(&folded).num_paths()
        );

        // 128 B / 1-way / 32 B lines: four lines of instruction cache.
        let g = CacheGeometry::new(128, 1, 32).unwrap();
        let before = classify(&p, g, g).rollup.il1;
        let after = classify(&folded, g, g).rollup.il1;
        let miss_bound_frac = |side: crate::cachean::RollupSide| {
            #[allow(clippy::cast_precision_loss)]
            let f = (side.always_miss + side.not_classified) as f64 / side.sites.max(1) as f64;
            f
        };
        assert!(
            after.sites < before.sites,
            "folding must shrink the footprint"
        );
        assert!(
            miss_bound_frac(after) <= miss_bound_frac(before),
            "bounds loosened: before {before:?}, after {after:?}"
        );
        assert!(
            miss_bound_frac(after) < miss_bound_frac(before),
            "this program is built to tighten: before {before:?}, after {after:?}"
        );
    }

    #[test]
    fn pipeline_digest_depends_on_the_fold() {
        let with = Pipeline::new().with(ConstFold).digest(FNV_OFFSET);
        let without = Pipeline::new().digest(FNV_OFFSET);
        assert_ne!(with, without);
        assert_eq!(with, Pipeline::new().with(ConstFold).digest(FNV_OFFSET));
    }
}
