//! Sequence analyses feeding TAC: reuse distances, stack distances and
//! interleaving statistics.
//!
//! TAC looks for **groups of addresses that are interleaved with long reuse
//! distances** (e.g. round-robin traversals): when such a group is randomly
//! placed into one set and exceeds its associativity, every traversal misses.
//! The statistics in this module quantify exactly that structure.

use std::collections::HashMap;

use crate::LineId;

/// Per-line summary of a line stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineStats {
    /// The line.
    pub line: LineId,
    /// Number of accesses to it.
    pub count: usize,
    /// Position of its first access.
    pub first_pos: usize,
    /// Position of its last access.
    pub last_pos: usize,
}

/// Counts accesses per line, in order of first appearance.
///
/// # Examples
///
/// ```
/// use mbcr_trace::analysis::line_stats;
/// use mbcr_trace::LineId;
/// let stats = line_stats(&[LineId(7), LineId(3), LineId(7)]);
/// assert_eq!(stats[0].line, LineId(7));
/// assert_eq!(stats[0].count, 2);
/// assert_eq!(stats[1].count, 1);
/// ```
#[must_use]
pub fn line_stats(lines: &[LineId]) -> Vec<LineStats> {
    let mut index: HashMap<LineId, usize> = HashMap::new();
    let mut stats: Vec<LineStats> = Vec::new();
    for (pos, &line) in lines.iter().enumerate() {
        match index.get(&line) {
            Some(&i) => {
                stats[i].count += 1;
                stats[i].last_pos = pos;
            }
            None => {
                index.insert(line, stats.len());
                stats.push(LineStats {
                    line,
                    count: 1,
                    first_pos: pos,
                    last_pos: pos,
                });
            }
        }
    }
    stats
}

/// Stack distance (LRU distance) of every access: the number of *distinct*
/// lines touched since the previous access to the same line; `None` for cold
/// (first) accesses.
///
/// A W-way LRU set hits exactly the accesses with stack distance `< W`; for a
/// random-replacement set the hit probability decays with the distance. TAC's
/// conflict groups are the ones that force large stack distances within one
/// set.
#[must_use]
pub fn stack_distances(lines: &[LineId]) -> Vec<Option<usize>> {
    // O(n · u) with a simple LRU stack — u (unique lines) is small in our
    // workloads; good enough and allocation-light.
    let mut stack: Vec<LineId> = Vec::new();
    let mut out = Vec::with_capacity(lines.len());
    for &line in lines {
        match stack.iter().position(|&l| l == line) {
            Some(depth) => {
                out.push(Some(depth));
                stack.remove(depth);
                stack.insert(0, line);
            }
            None => {
                out.push(None);
                stack.insert(0, line);
            }
        }
    }
    out
}

/// Mean stack distance of the warm accesses, or `None` if all are cold.
#[must_use]
pub fn mean_stack_distance(lines: &[LineId]) -> Option<f64> {
    let ds = stack_distances(lines);
    let warm: Vec<usize> = ds.into_iter().flatten().collect();
    if warm.is_empty() {
        return None;
    }
    Some(warm.iter().sum::<usize>() as f64 / warm.len() as f64)
}

/// Interleaving count between two lines: how many times `b` occurs strictly
/// between two consecutive accesses of `a`.
///
/// A high symmetric interleaving count is the signature of the round-robin
/// patterns the paper describes ("accesses to addresses mapping to those sets
/// are interleaved with long reuse distances").
#[must_use]
pub fn interleaving_count(lines: &[LineId], a: LineId, b: LineId) -> usize {
    let mut count = 0;
    let mut seen_a = false;
    let mut b_since_a = false;
    for &l in lines {
        if l == a {
            if seen_a && b_since_a {
                count += 1;
            }
            seen_a = true;
            b_since_a = false;
        } else if l == b {
            b_since_a = true;
        }
    }
    count
}

/// Dense pairwise interleaving matrix over the distinct lines of a stream.
///
/// `matrix[i][j]` counts occurrences of line `j` between consecutive accesses
/// of line `i` (at least one per gap). Symmetric-ish for round-robin
/// patterns; strongly asymmetric for nested-loop patterns.
#[derive(Debug, Clone)]
pub struct InterleavingMatrix {
    /// Distinct lines, in order of first appearance.
    pub lines: Vec<LineId>,
    /// `counts[i][j]`: gaps of `lines[i]` containing `lines[j]`.
    pub counts: Vec<Vec<u32>>,
}

impl InterleavingMatrix {
    /// Builds the matrix for a line stream in a single pass:
    /// O(n · u) time for u distinct lines.
    #[must_use]
    pub fn build(stream: &[LineId]) -> Self {
        let stats = line_stats(stream);
        let lines: Vec<LineId> = stats.iter().map(|s| s.line).collect();
        let u = lines.len();
        let mut idx: HashMap<LineId, usize> = HashMap::with_capacity(u);
        for (i, &l) in lines.iter().enumerate() {
            idx.insert(l, i);
        }
        let mut counts = vec![vec![0u32; u]; u];
        // seen_since[i][j]: line j seen since last access of line i.
        let mut seen_since = vec![vec![false; u]; u];
        let mut started = vec![false; u];
        for &l in stream {
            let i = idx[&l];
            if started[i] {
                let row = &mut counts[i];
                for (j, seen) in seen_since[i].iter_mut().enumerate() {
                    if *seen {
                        row[j] += 1;
                        *seen = false;
                    }
                }
            } else {
                started[i] = true;
                for s in seen_since[i].iter_mut() {
                    *s = false;
                }
            }
            for (k, row) in seen_since.iter_mut().enumerate() {
                if k != i {
                    row[i] = true;
                }
            }
        }
        Self { lines, counts }
    }

    /// Minimum of the two directed interleaving counts — the "round-robin
    /// strength" of the pair.
    #[must_use]
    pub fn mutual(&self, i: usize, j: usize) -> u32 {
        self.counts[i][j].min(self.counts[j][i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymSeq;

    fn lines(s: &str) -> Vec<LineId> {
        s.parse::<SymSeq>().unwrap().to_lines()
    }

    #[test]
    fn line_stats_counts_and_positions() {
        let ls = line_stats(&lines("ABCA"));
        assert_eq!(ls.len(), 3);
        assert_eq!(ls[0].count, 2);
        assert_eq!(ls[0].first_pos, 0);
        assert_eq!(ls[0].last_pos, 3);
        assert_eq!(ls[1].count, 1);
    }

    #[test]
    fn line_stats_empty() {
        assert!(line_stats(&[]).is_empty());
    }

    #[test]
    fn stack_distances_basic() {
        // A B C A: A's reuse sees {B, C} -> distance 2.
        let d = stack_distances(&lines("ABCA"));
        assert_eq!(d, vec![None, None, None, Some(2)]);
        // A A: immediate reuse -> distance 0.
        assert_eq!(stack_distances(&lines("AA")), vec![None, Some(0)]);
    }

    #[test]
    fn stack_distance_counts_distinct_not_total() {
        // A B B B A: only one distinct line between the As.
        let d = stack_distances(&lines("ABBBA"));
        assert_eq!(d[4], Some(1));
    }

    #[test]
    fn mean_stack_distance_cases() {
        assert_eq!(mean_stack_distance(&lines("ABC")), None);
        let m = mean_stack_distance(&lines("ABAB")).unwrap();
        assert!((m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interleaving_count_round_robin() {
        // {ABCA}^3: every A-gap contains B and C once.
        let s = "ABCA".parse::<SymSeq>().unwrap().repeat(3).to_lines();
        let (a, b, c) = (LineId(0), LineId(1), LineId(2));
        // Gaps of A: [BC], [], [BC], [], [BC], [] -> wait: ABCA ABCA ABCA has
        // consecutive As at the repeat boundary. A appears 6 times -> 5 gaps,
        // 3 of which contain B and C.
        assert_eq!(interleaving_count(&s, a, b), 3);
        assert_eq!(interleaving_count(&s, a, c), 3);
        // B's gaps always contain A (and C): B appears 3 times -> 2 gaps.
        assert_eq!(interleaving_count(&s, b, a), 2);
    }

    #[test]
    fn interleaving_matrix_matches_pairwise_counts() {
        let s = "ABCDEA".parse::<SymSeq>().unwrap().repeat(4).to_lines();
        let m = InterleavingMatrix::build(&s);
        for (i, &li) in m.lines.iter().enumerate() {
            for (j, &lj) in m.lines.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert_eq!(
                    m.counts[i][j] as usize,
                    interleaving_count(&s, li, lj),
                    "mismatch for ({li}, {lj})"
                );
            }
        }
    }

    #[test]
    fn interleaving_matrix_mutual_symmetric_pattern() {
        let s = "AB".parse::<SymSeq>().unwrap().repeat(10).to_lines();
        let m = InterleavingMatrix::build(&s);
        assert_eq!(m.lines.len(), 2);
        assert_eq!(m.mutual(0, 1), 9);
    }

    #[test]
    fn nested_pattern_is_asymmetric() {
        // A B A B ... then C only once: C interleaves nothing.
        let mut s = "AB".parse::<SymSeq>().unwrap().repeat(5).to_lines();
        s.push(LineId(2));
        let m = InterleavingMatrix::build(&s);
        let ci = m.lines.iter().position(|&l| l == LineId(2)).unwrap();
        assert_eq!(m.counts[ci].iter().sum::<u32>(), 0);
    }
}
