//! A small imperative IR with a trace-emitting interpreter.
//!
//! The paper analyses C programs compiled for a LEON3-like platform; the
//! artefacts its techniques consume are (a) the program's **control-flow
//! structure** (conditionals = paths, loops = bounds) and (b) the
//! **interleaved instruction/data address sequence** each path produces.
//! This crate provides exactly that substrate in library form:
//!
//! * [`Expr`] / [`Stmt`] / [`Program`] — an AST with scalars
//!   (register-allocated), arrays (memory-resident), two-way conditionals
//!   and bounded loops, rich enough to express the Mälardalen kernels;
//! * [`layout_program`] — deterministic code layout assigning every
//!   statement its instruction addresses (the I-cache view);
//! * [`execute`] — an interpreter that runs a program on concrete
//!   [`Inputs`], yielding the [`Trace`](mbcr_trace::Trace) of fetches and
//!   data accesses, the [`PathRecord`] identifying the traversed path, and
//!   the final [`ExecState`];
//! * [`Stmt::Touch`] / [`Stmt::Nop`] — the functionally-innocuous statement
//!   kinds PUB inserts (see the `mbcr-pub` crate).
//!
//! Design notes relevant to PUB soundness:
//!
//! * **No short-circuit evaluation** — every operand of an expression is
//!   evaluated, so an expression's data-access sequence is input-independent.
//! * **Enforced loop bounds** — `max_iter` is trusted analysis metadata; the
//!   interpreter errors if a run exceeds it.
//!
//! # Examples
//!
//! A two-path program, executed on both paths:
//!
//! ```
//! use mbcr_ir::{execute, Expr, Inputs, ProgramBuilder, Stmt};
//!
//! let mut b = ProgramBuilder::new("abs");
//! let (x, y) = (b.var("x"), b.var("y"));
//! b.push(Stmt::if_(
//!     Expr::var(x).lt(Expr::c(0)),
//!     vec![Stmt::Assign(y, Expr::var(x).neg())],
//!     vec![Stmt::Assign(y, Expr::var(x))],
//! ));
//! let p = b.build()?;
//!
//! let neg = execute(&p, &Inputs::new().with_var(x, -3)).unwrap();
//! let pos = execute(&p, &Inputs::new().with_var(x, 3)).unwrap();
//! assert_eq!(neg.state.var(y), 3);
//! assert_eq!(pos.state.var(y), 3);
//! assert_ne!(neg.path.path_id(), pos.path.path_id()); // different paths
//! # Ok::<(), mbcr_ir::ProgramError>(())
//! ```

mod analysis;
mod blpath;
mod cachean;
mod cfg;
mod expr;
mod fold;
mod interp;
mod layout;
mod pass;
mod paths;
mod pretty;
mod program;
mod stmt;
mod verify;

pub use analysis::{const_eval, dominators, reverse_postorder, Analysis, NaturalLoop};
pub use blpath::{PathError, PathSignature, PathSpace, StaticPath};
pub use cachean::{
    classify, validate_classification, AccessSite, CacheClassification, Classification,
    ClassifiedSite, Rollup, RollupSide, Scope, SiteLoc,
};
pub use cfg::{Block, BlockId, Cfg, Terminator};
pub use expr::{BinOp, Expr, UnOp};
pub use fold::{fold_expr, ConstFold};
pub use interp::{execute, execute_with, ExecState, Inputs, InterpConfig, InterpError, Run};
pub use layout::{layout_program, InstrSpan, Layout, LayoutNode, CODE_ALIGN, INSTRS_PER_LINE};
pub use pass::{fnv1a, Pass, Pipeline, FNV_OFFSET};
pub use paths::{Decision, PathRecord};
pub use pretty::pretty_print;
pub use program::{
    ArrayDecl, ArrayId, Program, ProgramBuilder, ProgramError, Var, ARRAY_ALIGN, CODE_BASE,
    DATA_BASE, ELEM_BYTES, INSTR_BYTES,
};
pub use stmt::Stmt;
pub use verify::{verify_balance, verify_pair, DiagCode, Diagnostic, Diagnostics};

/// Runs a program on several input vectors and groups them by traversed path.
///
/// Returns, for each distinct path (by [`PathRecord::path_id`]), the indices
/// of the inputs that exercised it — the library-level equivalent of the
/// paper's "8 different cases lead to different paths".
///
/// # Errors
///
/// Propagates the first [`InterpError`] encountered, including
/// [`InterpError::PathIdCollision`] if two *different* records ever share a
/// fingerprint — a collision must surface as an error, never as silent
/// mis-grouping.
pub fn group_inputs_by_path(
    program: &Program,
    inputs: &[Inputs],
) -> Result<Vec<(PathRecord, Vec<usize>)>, InterpError> {
    // Group by the 64-bit fingerprint (one hash + map lookup per input
    // instead of a full-record comparison against every known path), but
    // cross-check record equality so a collision cannot merge two paths.
    let mut groups: Vec<(PathRecord, Vec<usize>)> = Vec::new();
    let mut by_id: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, inp) in inputs.iter().enumerate() {
        let run = execute(program, inp)?;
        let id = run.path.path_id();
        match by_id.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let (known, members) = &mut groups[*e.get()];
                if *known != run.path {
                    return Err(InterpError::PathIdCollision { path_id: id });
                }
                members.push(i);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push((run.path, vec![i]));
            }
        }
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_inputs_by_path_separates_paths() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![Stmt::Assign(y, Expr::c(1))],
            vec![Stmt::Assign(y, Expr::c(2))],
        ));
        let p = b.build().unwrap();
        let inputs = vec![
            Inputs::new().with_var(x, 1),
            Inputs::new().with_var(x, -1),
            Inputs::new().with_var(x, 5),
        ];
        let groups = group_inputs_by_path(&p, &inputs).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, vec![0, 2]);
        assert_eq!(groups[1].1, vec![1]);
    }
}
