//! Property test for the campaign batching invariant: the batched
//! multi-layout simulation must be bit-identical to the serial reference
//! stream across random geometries × placement/replacement policies ×
//! batch widths × chunk cut points — including widths that do not divide
//! the chunk, chunks that do not divide the campaign, and unaligned slice
//! starts.
//!
//! Each case derives everything (geometries, policies, trace, campaign
//! shape) from one generated seed via SplitMix64, so a failing case
//! reproduces from the reported seed alone.

use mbcr_cache::{CacheGeometry, PlacementPolicy, ReplacementPolicy};
use mbcr_cpu::{
    campaign_slice, campaign_slice_chunked, campaign_slice_with, Parallelism, PlatformConfig,
};
use mbcr_rng::{Rng64, SplitMix64};
use mbcr_trace::{Access, Trace};
use proptest::prelude::*;

fn gen_geometry(g: &mut SplitMix64) -> CacheGeometry {
    let sets = 1u64 << (g.next_u64() % 6); // 1..32 sets
    let ways = 1 + (g.next_u64() % 4); // 1..4 ways
    let line = 32u64 << (g.next_u64() % 2); // 32 or 64 B lines
    CacheGeometry::new(sets * ways * line, ways as u32, line).expect("sets are a power of two")
}

fn gen_config(g: &mut SplitMix64) -> PlatformConfig {
    let placement = if g.next_u64().is_multiple_of(2) {
        PlacementPolicy::Modulo
    } else {
        PlacementPolicy::RandomHash
    };
    let replacement = match g.next_u64() % 3 {
        0 => ReplacementPolicy::Random,
        1 => ReplacementPolicy::Lru,
        _ => ReplacementPolicy::Fifo,
    };
    let mut cfg = PlatformConfig::paper_default();
    cfg.il1 = gen_geometry(g);
    cfg.dl1 = gen_geometry(g);
    cfg.placement = placement;
    cfg.replacement = replacement;
    cfg
}

fn gen_trace(g: &mut SplitMix64, cfg: &PlatformConfig) -> Trace {
    // Footprint a few times the larger cache so conflict misses (and thus
    // replacement RNG draws) actually happen.
    let foot = 3 * cfg.il1.lines().max(cfg.dl1.lines());
    let len = 100 + (g.next_u64() % 400) as usize;
    (0..len)
        .map(|_| {
            // Sub-line offsets exercise the Address → LineId quantization.
            let addr = (g.next_u64() % foot) * 32 + g.next_u64() % 32;
            match g.next_u64() % 3 {
                0 => Access::fetch(addr),
                1 => Access::read(addr),
                _ => Access::write(addr),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_campaigns_match_the_serial_stream(case_seed in 0u64..u64::MAX,) {
        let mut g = SplitMix64::new(case_seed);
        let cfg = gen_config(&mut g);
        let trace = gen_trace(&mut g, &cfg);
        let master_seed = g.next_u64();
        let start = (g.next_u64() % 300) as usize;
        let runs = 20 + (g.next_u64() % 120) as usize;

        let serial = campaign_slice(&cfg, &trace, start, runs, master_seed);

        for width in [1usize, 3, 7, 64] {
            // Plain batched slice (threads = 1 isolates the width knob).
            let par = Parallelism::serial().batch_width(width);
            let batched = campaign_slice_with(&cfg, &trace, start, runs, master_seed, &par);
            prop_assert!(
                batched == serial,
                "slice mismatch width={} seed={}", width, case_seed
            );

            // Chunked through the checkpoint grid, with a cut the width
            // need not divide; the sink must see contiguous grid-aligned
            // chunks that concatenate to the same stream.
            let chunk_runs = 1 + (g.next_u64() % (runs as u64 + 20)) as usize;
            let mut sunk: Vec<u64> = Vec::new();
            let mut next_at = start;
            let mut grid_ok = true;
            let chunked = campaign_slice_chunked(
                &cfg,
                &trace,
                start,
                runs,
                master_seed,
                &par,
                chunk_runs,
                |at, chunk| {
                    grid_ok &= at == next_at;
                    next_at = at + chunk.len();
                    sunk.extend_from_slice(chunk);
                    true
                },
            );
            prop_assert!(grid_ok, "contiguous chunks width={} seed={}", width, case_seed);
            prop_assert!(
                chunked == serial,
                "chunked mismatch width={} chunk_runs={} seed={}", width, chunk_runs, case_seed
            );
            prop_assert!(sunk == serial, "sink mismatch width={} seed={}", width, case_seed);

            // Batching composes with intra-campaign threading.
            let par = Parallelism {
                threads: 2 + (g.next_u64() % 3) as usize,
                min_parallel_runs: 2,
                batch_width: width,
            };
            let threaded = campaign_slice_with(&cfg, &trace, start, runs, master_seed, &par);
            prop_assert!(
                threaded == serial,
                "threaded mismatch width={} seed={}", width, case_seed
            );
        }
    }
}
