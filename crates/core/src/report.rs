//! Human-readable analysis reports.
//!
//! Renders a [`PubTacAnalysis`] the way a timing engineer would want to read
//! it: what PUB inserted, what TAC found, how long the campaign was, the
//! pWCET at the probabilities of interest, and an ASCII sketch of the
//! pWCET curve against the measured ECCDF (the paper's Figure 4 view).

use std::fmt::Write as _;

use crate::PubTacAnalysis;

/// Renders the full report.
///
/// # Examples
///
/// ```no_run
/// use mbcr::prelude::*;
/// use mbcr::render_report;
/// # fn demo(analysis: &mbcr::PubTacAnalysis) {
/// println!("{}", render_report("bs", analysis));
/// # }
/// ```
#[must_use]
pub fn render_report(name: &str, a: &PubTacAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== pWCET analysis report: {name} ==");
    let _ = writeln!(
        out,
        "PUB   : {} conditionals equalized, {} instrs + {} data refs inserted, \
         {} widening touches, {} loops padded",
        a.pub_report.constructs.len(),
        a.pub_report.total_inserted_instrs(),
        a.pub_report.total_inserted_data_refs(),
        a.pub_report.widened_touches,
        a.pub_report.loops_padded,
    );
    let _ = writeln!(
        out,
        "TAC   : IL1 {} relevant groups (R = {}), DL1 {} relevant groups (R = {})",
        a.tac_il1.relevant_groups.len(),
        a.tac_il1.runs_required,
        a.tac_dl1.relevant_groups.len(),
        a.tac_dl1.runs_required,
    );
    let _ = writeln!(
        out,
        "runs  : R_pub = {}, R_tac = {}, R_p+t = {}, executed = {}{}",
        a.r_pub,
        a.r_tac,
        a.r_pub_tac,
        a.campaign_runs,
        if a.campaign_capped { " (capped)" } else { "" },
    );
    let sample_max = a.sample.iter().copied().max().unwrap_or(0);
    let _ = writeln!(
        out,
        "pWCET : {:.0} cycles @1e-12 (PUB-only estimate {:.0}; observed max {sample_max})",
        a.pwcet_pub_tac, a.pwcet_pub,
    );
    let _ = writeln!(
        out,
        "iid   : KS p = {:.3}, Ljung-Box p = {:.3}, runs-test p = {:.3}",
        a.iid.ks.p_value, a.iid.ljung_box.p_value, a.iid.runs.p_value,
    );
    out.push('\n');
    out.push_str(&render_curve(a, 58, 12));
    out
}

/// ASCII sketch of the pWCET curve: exceedance probability (log decades,
/// top = 1) against execution time. `#` marks the fitted pWCET curve, `o`
/// the empirical ECCDF where the sample still resolves the decade.
#[must_use]
pub fn render_curve(a: &PubTacAnalysis, width: usize, decades: u32) -> String {
    let width = width.max(20);
    let lo = a.pwcet.eccdf().min();
    let hi = a
        .pwcet
        .quantile(10f64.powi(-(decades as i32)))
        .max(lo + 1.0);
    let col = |x: f64| {
        (((x - lo) / (hi - lo)) * (width as f64 - 1.0))
            .round()
            .clamp(0.0, width as f64 - 1.0) as usize
    };
    let n = a.pwcet.eccdf().len() as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exceedance   execution time ({lo:.0} .. {hi:.0} cycles)"
    );
    for d in 0..=decades {
        let p = 10f64.powi(-(d as i32));
        // Probability 1 is not a quantile of interest; start at 1e-1-ish.
        let p = if d == 0 { 0.5 } else { p };
        let mut row = vec![b' '; width];
        if p >= 1.0 / n {
            row[col(a.pwcet.eccdf().quantile(p))] = b'o';
        }
        let c = col(a.pwcet.quantile(p));
        row[c] = b'#';
        let label = if d == 0 {
            "  5e-1".to_string()
        } else {
            format!("  1e-{d:<2}")
        };
        let _ = writeln!(out, "{label:>7} |{}", String::from_utf8_lossy(&row));
    }
    out.push_str("         (o = measured ECCDF, # = fitted pWCET curve)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_pub_tac, AnalysisConfig};
    use mbcr_ir::{Expr, Inputs, ProgramBuilder, Stmt};

    fn analysis() -> PubTacAnalysis {
        let mut b = ProgramBuilder::new("report_demo");
        let arr = b.array("arr", 64);
        let (x, y, i) = (b.var("x"), b.var("y"), b.var("i"));
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(16),
            16,
            vec![Stmt::Assign(
                y,
                Expr::var(y).add(Expr::load(arr, Expr::var(i).mul(Expr::c(4)))),
            )],
        ));
        b.push(Stmt::if_(
            Expr::var(x).gt(Expr::c(0)),
            vec![Stmt::Assign(y, Expr::load(arr, Expr::c(0)))],
            vec![],
        ));
        let p = b.build().unwrap();
        let cfg = AnalysisConfig::builder().seed(5).quick().threads(1).build();
        analyze_pub_tac(&p, &Inputs::new().with_var(x, 1), &cfg).unwrap()
    }

    #[test]
    fn report_contains_all_sections() {
        let a = analysis();
        let r = render_report("report_demo", &a);
        assert!(r.contains("== pWCET analysis report: report_demo =="));
        assert!(r.contains("PUB   :"));
        assert!(r.contains("TAC   :"));
        assert!(r.contains("runs  :"));
        assert!(r.contains("pWCET :"));
        assert!(r.contains("iid   :"));
        assert!(r.contains("# = fitted pWCET curve"));
    }

    #[test]
    fn curve_is_monotone_left_to_right() {
        let a = analysis();
        let curve = render_curve(&a, 40, 9);
        // The '#' column must not move left as probability decreases.
        let mut last = 0usize;
        for line in curve.lines().filter(|l| l.contains('|')) {
            let row = line.split('|').nth(1).unwrap_or("");
            if let Some(pos) = row.find('#') {
                assert!(pos >= last, "curve went left: {curve}");
                last = pos;
            }
        }
    }

    #[test]
    fn curve_width_is_clamped() {
        let a = analysis();
        let narrow = render_curve(&a, 1, 3);
        for line in narrow.lines().filter(|l| l.contains('|')) {
            assert!(line.len() <= 9 + 20 + 1, "line too long: {line}");
        }
    }
}
