//! Paper Figure 4 — the ECCDF "knee": pWCET of `bs` with vector v9 from
//! `R_pub` vs `R_pub+tac` runs.
//!
//! A small campaign (`R_pub = 1 000`) misses the abrupt ECCDF change caused
//! by a low-probability conflictive cache placement; the TAC-sized campaign
//! (paper: 70 000 runs) observes it and the resulting pWCET upper-bounds
//! the long-run empirical curve (paper: 6 000 000 runs; harness default
//! 600 000 = 10× scaled).

use mbcr_bench::{banner, harness_config, scaled, write_csv, Table};
use mbcr_cpu::campaign_parallel;
use mbcr_evt::{Dither, Eccdf, FitMethod, Pwcet, TailConfig};
use mbcr_ir::execute;
use mbcr_pub::{pub_transform, PubConfig};
use mbcr_tac::analyze_lines;

fn main() {
    banner("Figure 4: pWCET for bs v9 with R_pub vs R_pub+tac runs");
    let cfg = harness_config(0xF164);
    let seed = 0xF164;

    let program = mbcr_malardalen::bs::program();
    let pubbed = pub_transform(&program, &PubConfig::paper()).expect("pub bs");
    let v9 = mbcr_malardalen::bs::input_vectors()
        .into_iter()
        .find(|v| v.name == "v9")
        .expect("v9 exists");
    let trace = execute(&pubbed.program, &v9.inputs)
        .expect("run bs_pub")
        .trace;

    // TAC requirement for this path.
    let il1 = analyze_lines(
        &trace.instr_lines(cfg.platform.il1.line_size()),
        &cfg.tac.for_cache(&cfg.platform.il1, seed),
    );
    let dl1 = analyze_lines(
        &trace.data_lines(cfg.platform.dl1.line_size()),
        &cfg.tac.for_cache(&cfg.platform.dl1, seed ^ 1),
    );
    let r_tac = il1.runs_required.max(dl1.runs_required);
    println!(
        "TAC: IL1 requires {} runs ({} groups), DL1 requires {} runs ({} groups)",
        il1.runs_required,
        il1.relevant_groups.len(),
        dl1.runs_required,
        dl1.relevant_groups.len()
    );
    println!("paper: R_pub = 1 000, R_p+t = 70 000; ours: R_tac = {r_tac}\n");

    // Campaigns: R_pub-sized, TAC-sized (capped) and the long reference.
    let r_pub = 1_000;
    let r_pt = usize::try_from(r_tac)
        .unwrap_or(usize::MAX)
        .clamp(r_pub, scaled(100_000));
    let long = scaled(600_000);

    let times_long = campaign_parallel(&cfg.platform, &trace, long, seed, cfg.threads);
    let times_pub = &times_long[..r_pub];
    let times_pt = &times_long[..r_pt];

    let fit = |sample: &[u64]| {
        Pwcet::fit(
            sample,
            FitMethod::ExpTailCv,
            &TailConfig::default(),
            Dither::Uniform { seed: 7 },
        )
        .expect("fit")
    };
    let pw_pub = fit(times_pub);
    let pw_pt = fit(times_pt);
    let reference = Eccdf::from_u64(&times_long);

    let mut t = Table::new(&[
        "exceedance",
        "pWCET (R_pub runs)",
        "pWCET (R_p+t runs)",
        "long-run ECCDF",
    ]);
    for exp in [3, 6, 9, 12] {
        let p = 10f64.powi(-exp);
        let emp = if p >= 1.0 / long as f64 {
            format!("{:.0}", reference.quantile(p))
        } else {
            "-".to_string()
        };
        t.row(&[
            &format!("1e-{exp}"),
            &format!("{:.0}", pw_pub.quantile(p)),
            &format!("{:.0}", pw_pt.quantile(p)),
            &emp,
        ]);
    }
    t.print();

    // The knee: does the small campaign even see the conflictive layouts?
    // Probe at the exceedance level the TAC-sized campaign is designed to
    // resolve (~2 expected observations in R_p+t runs, ~2·R_pub/R_p+t in
    // R_pub runs).
    let knee_threshold = reference.quantile((2.0 / r_pt as f64).max(5.0 / long as f64));
    let seen_pub = times_pub
        .iter()
        .filter(|&&t| t as f64 >= knee_threshold)
        .count();
    let seen_pt = times_pt
        .iter()
        .filter(|&&t| t as f64 >= knee_threshold)
        .count();
    println!(
        "\nknee region (>= {knee_threshold:.0} cycles): {seen_pub} observations in R_pub runs, \
         {seen_pt} in R_p+t runs"
    );
    let covered = pw_pt.quantile(1e-12) >= reference.max();
    println!(
        "pWCET@1e-12 from R_p+t runs ({:.0}) upper-bounds the long-run maximum ({:.0}): {}",
        pw_pt.quantile(1e-12),
        reference.max(),
        if covered {
            "YES (Figure 4 REPRODUCED)"
        } else {
            "NO"
        }
    );
    assert!(
        seen_pt >= seen_pub,
        "more runs cannot see fewer knee events"
    );
    assert!(covered, "the TAC-sized campaign must cover the knee");

    // CSV: both fitted curves + the reference ECCDF.
    let mut rows = Vec::new();
    for (x, p) in reference.points(500) {
        rows.push(format!("eccdf_long,{x},{p:e}"));
    }
    for exp in 1..=12 {
        let p = 10f64.powi(-exp);
        rows.push(format!("pwcet_rpub,{},{p:e}", pw_pub.quantile(p)));
        rows.push(format!("pwcet_rpt,{},{p:e}", pw_pt.quantile(p)));
    }
    let path = write_csv("fig4_bs_knee.csv", "series,cycles,probability", &rows);
    println!("series written to {}", path.display());
}
