//! Pseudo-C pretty-printer for programs.
//!
//! Renders the IR back into a C-like surface syntax — invaluable when
//! inspecting what PUB inserted where. The output is stable, making it
//! usable in golden tests.

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::program::Program;
use crate::stmt::Stmt;

/// Renders a whole program as pseudo-C.
///
/// # Examples
///
/// ```
/// use mbcr_ir::{pretty_print, Expr, ProgramBuilder, Stmt};
/// let mut b = ProgramBuilder::new("demo");
/// let x = b.var("x");
/// b.push(Stmt::Assign(x, Expr::c(1)));
/// let p = b.build().unwrap();
/// assert!(pretty_print(&p).contains("x = 1;"));
/// ```
#[must_use]
pub fn pretty_print(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program {}", p.name());
    for a in p.arrays() {
        let _ = writeln!(out, "int {}[{}]; // base {:#x}", a.name, a.len, a.base);
    }
    if !p.var_names().is_empty() {
        let _ = writeln!(out, "int {};", p.var_names().join(", "));
    }
    let _ = writeln!(out, "void {}() {{", p.name());
    print_stmts(p, p.body(), 1, &mut out);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn expr_str(p: &Program, e: &Expr) -> String {
    // Reuse Expr's Display, then substitute declared names for the generic
    // v<i>/arr<i> placeholders.
    let mut s = e.to_string();
    for (i, name) in p.var_names().iter().enumerate().rev() {
        s = s.replace(&format!("v{i}"), name);
    }
    for (i, a) in p.arrays().iter().enumerate().rev() {
        s = s.replace(&format!("arr{i}"), &a.name);
    }
    s
}

fn print_stmts(p: &Program, stmts: &[Stmt], depth: usize, out: &mut String) {
    for s in stmts {
        print_stmt(p, s, depth, out);
    }
}

fn print_stmt(p: &Program, s: &Stmt, depth: usize, out: &mut String) {
    indent(out, depth);
    match s {
        Stmt::Assign(v, e) => {
            let name = &p.var_names()[v.0 as usize];
            let _ = writeln!(out, "{name} = {};", expr_str(p, e));
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let name = &p.arrays()[array.0 as usize].name;
            let _ = writeln!(
                out,
                "{name}[{}] = {};",
                expr_str(p, index),
                expr_str(p, value)
            );
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_str(p, cond));
            print_stmts(p, then_branch, depth + 1, out);
            if else_branch.is_empty() {
                indent(out, depth);
                out.push_str("}\n");
            } else {
                indent(out, depth);
                out.push_str("} else {\n");
                print_stmts(p, else_branch, depth + 1, out);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While {
            cond,
            max_iter,
            body,
        } => {
            let _ = writeln!(out, "while ({}) {{ // bound {max_iter}", expr_str(p, cond));
            print_stmts(p, body, depth + 1, out);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For {
            var,
            from,
            to,
            max_iter,
            body,
        } => {
            let name = &p.var_names()[var.0 as usize];
            let _ = writeln!(
                out,
                "for ({name} = {}; {name} < {}; {name}++) {{ // bound {max_iter}",
                expr_str(p, from),
                expr_str(p, to)
            );
            print_stmts(p, body, depth + 1, out);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Touch { refs, pad } => {
            let targets: Vec<String> = refs
                .iter()
                .map(|(a, idx)| format!("{}[{}]", p.arrays()[a.0 as usize].name, expr_str(p, idx)))
                .collect();
            let _ = writeln!(out, "__pub_touch({}); // +{pad} nops", targets.join(", "));
        }
        Stmt::Nop { count } => {
            let _ = writeln!(out, "__pub_nop({count});");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn demo() -> Program {
        let mut b = ProgramBuilder::new("demo");
        let a = b.array("tab", 8);
        let x = b.var("x");
        let i = b.var("i");
        b.push(Stmt::for_(
            i,
            Expr::c(0),
            Expr::c(8),
            8,
            vec![Stmt::if_(
                Expr::load(a, Expr::var(i)).gt(Expr::c(0)),
                vec![Stmt::Assign(x, Expr::var(x).add(Expr::c(1)))],
                vec![Stmt::store(a, Expr::var(i), Expr::c(0))],
            )],
        ));
        b.build().unwrap()
    }

    #[test]
    fn renders_declarations_and_control_flow() {
        let text = pretty_print(&demo());
        assert!(text.contains("int tab[8];"));
        assert!(text.contains("int x, i;"));
        assert!(text.contains("for (i = 0; i < 8; i++) { // bound 8"));
        assert!(text.contains("if ((tab[i] > 0)) {"));
        assert!(text.contains("x = (x + 1);"));
        assert!(text.contains("} else {"));
        assert!(text.contains("tab[i] = 0;"));
    }

    #[test]
    fn renders_pub_statements() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 4);
        b.push(Stmt::Touch {
            refs: vec![(a, Expr::c(0))],
            pad: 2,
        });
        b.push(Stmt::Nop { count: 3 });
        let text = pretty_print(&b.build().unwrap());
        assert!(text.contains("__pub_touch(a[0]); // +2 nops"));
        assert!(text.contains("__pub_nop(3);"));
    }

    #[test]
    fn output_is_stable() {
        assert_eq!(pretty_print(&demo()), pretty_print(&demo()));
    }

    #[test]
    fn while_renders_bound() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::while_(
            Expr::var(x).lt(Expr::c(3)),
            3,
            vec![Stmt::Assign(x, Expr::var(x).add(Expr::c(1)))],
        ));
        let text = pretty_print(&b.build().unwrap());
        assert!(text.contains("while ((x < 3)) { // bound 3"));
    }
}
