//! Server-side HTTP/1.1: hardened request parsing and response writing.

use std::io::{self, Read, Write};

use mbcr_json::Json;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY: usize = 8 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request target; always starts with `/`. Any `?query` suffix is
    /// kept verbatim — the routes this crate fronts do not use queries.
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// Non-UTF-8 or malformed JSON bodies.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| format!("body not UTF-8: {e}"))?;
        mbcr_json::parse(text).map_err(|e| format!("body not JSON: {e}"))
    }
}

fn torn(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("torn request: {what}"))
}

fn malformed(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// One `\n`-terminated line, hard-capped. `Ok(None)` only when the
/// stream was cleanly closed before the first byte *and* the caller
/// allowed it (`start_of_request`); EOF anywhere else is a torn request.
fn read_line<R: Read>(
    reader: &mut R,
    cap: usize,
    start_of_request: bool,
) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if start_of_request && line.is_empty() {
                    return Ok(None);
                }
                return Err(torn("EOF mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| malformed("request line is not UTF-8"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > cap {
                    return Err(malformed(format!("line exceeds {cap} bytes")));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads and validates one request off `reader`. `Ok(None)` when the
/// peer closed cleanly before sending anything; any mid-request EOF,
/// cap violation, or malformed line is an error (the caller answers
/// `400` and closes — one request per connection, like the daemon's
/// binary peers get one handshake).
///
/// # Errors
///
/// I/O failures and, as [`io::ErrorKind::InvalidData`], every
/// adversarial shape: torn request lines/headers/bodies, oversized
/// lines, header floods, bad `Content-Length`, `Transfer-Encoding`.
pub fn read_request<R: Read>(reader: &mut R) -> io::Result<Option<Request>> {
    let Some(line) = read_line(reader, MAX_REQUEST_LINE, true)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(malformed(format!("bad request line '{line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version '{version}'")));
    }
    if !path.starts_with('/') {
        return Err(malformed(format!("bad request target '{path}'")));
    }
    let (method, path) = (method.to_string(), path.to_string());
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, MAX_HEADER_LINE, false)?.expect("EOF handled as torn");
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(malformed(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(format!("header without a colon: '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(malformed("transfer-encoding is not supported"));
    }
    if let Some(length) = request.header("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| malformed(format!("bad content-length '{length}'")))?;
        if length > MAX_BODY {
            return Err(malformed(format!(
                "body of {length} bytes exceeds {MAX_BODY}"
            )));
        }
        let mut body = vec![0u8; length];
        reader
            .read_exact(&mut body)
            .map_err(|_| torn("EOF mid-body"))?;
        request.body = body;
    }
    Ok(Some(request))
}

/// The standard reason phrase of the status codes the gateway uses.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn respond_bytes<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len(),
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes a JSON response (compact body, `Connection: close`).
///
/// # Errors
///
/// Write failures (the peer vanished; callers drop the connection).
pub fn respond_json<W: Write>(writer: &mut W, status: u16, body: &Json) -> io::Result<()> {
    respond_bytes(
        writer,
        status,
        "application/json",
        body.to_compact().as_bytes(),
    )
}

/// Writes an `{"error": reason}` JSON response.
///
/// # Errors
///
/// Write failures.
pub fn respond_error<W: Write>(writer: &mut W, status: u16, reason: &str) -> io::Result<()> {
    respond_json(
        writer,
        status,
        &Json::Obj(vec![("error".to_string(), reason.into())]),
    )
}

/// Writes a bodyless response.
///
/// # Errors
///
/// Write failures.
pub fn respond_empty<W: Write>(writer: &mut W, status: u16) -> io::Result<()> {
    respond_bytes(writer, status, "application/json", b"")
}

/// Writes a plain-text response (`text/plain; version=0.0.4` — the
/// Prometheus exposition content type, which is also valid generic text).
///
/// # Errors
///
/// Write failures.
pub fn respond_text<W: Write>(writer: &mut W, status: u16, body: &str) -> io::Result<()> {
    respond_bytes(
        writer,
        status,
        "text/plain; version=0.0.4; charset=utf-8",
        body.as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> io::Result<Option<Request>> {
        read_request(&mut io::Cursor::new(bytes))
    }

    #[test]
    fn parses_a_request_with_headers_and_body() {
        let raw = b"POST /v1/sweeps HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let request = parse(raw).unwrap().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/sweeps");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.body, b"abcd");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let request = parse(b"GET /v1/healthz HTTP/1.1\nAccept: */*\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(request.path, "/v1/healthz");
        assert_eq!(request.header("accept"), Some("*/*"));
    }

    #[test]
    fn clean_eof_before_any_byte_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn torn_at_every_byte_is_an_error_never_a_hang_or_a_parse() {
        let raw: &[u8] = b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"spec\":{}}";
        assert!(parse(raw).unwrap().is_some(), "the whole request parses");
        for cut in 1..raw.len() {
            let err = parse(&raw[..cut]).expect_err("every truncation is torn");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 1));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn header_floods_and_oversized_headers_are_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(parse(&raw).is_err(), "one header too many");

        let mut raw = b"GET / HTTP/1.1\r\nh: ".to_vec();
        raw.extend(std::iter::repeat_n(b'v', MAX_HEADER_LINE + 1));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(parse(&raw).is_err(), "one header line too long");
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1 extra\r\n\r\n".to_vec(),
            b"GET /x FTP/1.0\r\n\r\n".to_vec(),
            b"GET relative HTTP/1.1\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            b"GET \xff\xfe HTTP/1.1\r\n\r\n".to_vec(),
        ] {
            let err = parse(&raw).expect_err("must be rejected");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn responses_render_status_line_length_and_body() {
        let mut out = Vec::new();
        respond_json(
            &mut out,
            201,
            &Json::Obj(vec![("ok".to_string(), Json::Bool(true))]),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        respond_error(&mut out, 404, "unknown sweep").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"unknown sweep\"}"), "{text}");
    }
}
