//! A domain-flavoured scenario from the paper's introduction: an automotive
//! engine-controller task with mode-dependent control paths, swept across
//! candidate cache geometries by the batch engine.
//!
//! The task reads a sensor block, selects one of three control laws
//! (if/else chain — different table lookups per mode), and writes actuator
//! commands. The timing engineer cannot enumerate which mode combination
//! is the worst case — PUB+TAC bounds them all from a single input vector,
//! and the engine answers the next question: *which cache would this ECU
//! need?* Custom programs plug into the same sweep machinery as the
//! Mälardalen suite via [`Registry::insert`].
//!
//! Run with `cargo run --release --example engine_controller`.

use mbcr_engine::render_rows;
use mbcr_ir::ProgramBuilder;
use mbcr_malardalen::{BenchClass, Benchmark, NamedInput};
use mbcr_repro::prelude::*;

fn build_controller() -> (Program, Inputs) {
    let mut b = ProgramBuilder::new("engine_controller");
    let sensors = b.array("sensors", 32);
    let map_low = b.array("map_low", 32);
    let map_mid = b.array("map_mid", 32);
    let map_high = b.array("map_high", 32);
    let actuators = b.array("actuators", 8);
    let (i, load, rpm, cmd) = (b.var("i"), b.var("load"), b.var("rpm"), b.var("cmd"));

    // Aggregate the sensor block.
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(32),
        32,
        vec![Stmt::Assign(
            load,
            Expr::var(load).add(Expr::load(sensors, Expr::var(i))),
        )],
    ));
    b.push(Stmt::Assign(
        rpm,
        Expr::var(load).mul(Expr::c(3)).rem(Expr::c(9000)),
    ));

    // Mode-dependent control law: three lookup tables, data-dependent.
    b.push(Stmt::if_(
        Expr::var(rpm).lt(Expr::c(2000)),
        vec![Stmt::Assign(
            cmd,
            Expr::load(map_low, Expr::var(rpm).rem(Expr::c(32))),
        )],
        vec![Stmt::if_(
            Expr::var(rpm).lt(Expr::c(6000)),
            vec![Stmt::Assign(
                cmd,
                Expr::load(map_mid, Expr::var(rpm).rem(Expr::c(32)))
                    .add(Expr::load(map_low, Expr::c(0))),
            )],
            vec![Stmt::Assign(
                cmd,
                Expr::load(map_high, Expr::var(rpm).rem(Expr::c(32)))
                    .mul(Expr::c(2))
                    .add(Expr::load(map_mid, Expr::c(0))),
            )],
        )],
    ));

    // Fan the command out to the actuators.
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(8),
        8,
        vec![Stmt::store(
            actuators,
            Expr::var(i),
            Expr::var(cmd).add(Expr::var(i)),
        )],
    ));

    let program = b.build().expect("controller is well-formed");
    let inputs = Inputs::new().with_array(sensors, (0..32).map(|k| 40 + k % 7).collect());
    (program, inputs)
}

/// Three operating regimes — the per-path jobs the multipath combination
/// feeds on. PUB makes every one of them a sound bound; the engine keeps
/// the tightest (Corollary 2).
fn controller_benchmark() -> Benchmark {
    let (program, idle) = build_controller();
    let sensors = program.array_by_name("sensors").expect("sensors");
    let regime = |scale: i64| -> Inputs {
        Inputs::new().with_array(sensors, (0..32).map(|k| scale + k % 7).collect())
    };
    Benchmark {
        name: "engine_controller",
        program,
        default_input: idle,
        input_vectors: vec![
            NamedInput {
                name: "idle".into(),
                inputs: regime(40),
            },
            NamedInput {
                name: "cruise".into(),
                inputs: regime(120),
            },
            NamedInput {
                name: "redline".into(),
                inputs: regime(250),
            },
        ],
        class: BenchClass::MultipathWorstUnknown,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Register the custom task alongside nothing else: this sweep is about
    // one ECU task, four candidate cache geometries.
    let mut registry = Registry::empty();
    registry.insert(controller_benchmark());

    let spec = SweepSpec::new("engine-controller")
        .inputs(InputSelection::All)
        .geometries([
            GeometrySpec::parse("1024:2:32")?,
            GeometrySpec::parse("2048:2:32")?,
            GeometrySpec::paper_l1(),
            GeometrySpec::parse("8192:4:32")?,
        ])
        .seeds([0xEC0]);

    let store = ArtifactStore::open(std::env::temp_dir().join("mbcr-engine-controller"))?;
    println!("sweeping 'engine_controller' across 4 candidate geometries…\n");
    let outcome = run_sweep(&spec, &registry, &store, &RunOptions::default())?;

    println!("{}", render_rows(&outcome.rows));
    println!(
        "{} jobs executed ({} cached) in {:.1}s — artifacts under {}",
        outcome.executed,
        outcome.skipped,
        outcome.elapsed.as_secs_f64(),
        store.root().display(),
    );
    println!("\nEvery pWCET above holds for *every* mode path and *every* cache layout");
    println!("of probability above the configured floor — no path enumeration needed.");
    println!("The multipath column is the certification-grade bound per geometry;");
    println!("pick the smallest cache whose bound meets the task deadline.");
    Ok(())
}
