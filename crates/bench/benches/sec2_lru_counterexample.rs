//! Paper Section 2 — why PUB needs time-randomized caches.
//!
//! Reproduces the inline example: in a 2-way cache, `{ABCA}` suffers 4
//! misses under LRU while the PUB-extended `{ABACA}` suffers only 3 —
//! inserting an access *improved* a deterministic cache, violating the
//! upper-bounding property. Under random replacement, the inserted access
//! can only worsen the expected behaviour.

use mbcr_bench::{banner, Table};
use mbcr_cache::{single_set, Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
use mbcr_trace::{LineId, SymSeq};

fn lines(s: &str) -> Vec<LineId> {
    s.parse::<SymSeq>().expect("valid sequence").to_lines()
}

fn lru_misses(seq: &str) -> u64 {
    let tiny = CacheGeometry::new(64, 2, 32).expect("valid geometry");
    let mut c = Cache::new(tiny, PlacementPolicy::Modulo, ReplacementPolicy::Lru, 0);
    c.run_lines(&lines(seq)).misses
}

fn random_mean_misses(seq: &str, reps: u32) -> f64 {
    let group: Vec<LineId> = {
        let mut g = lines(seq);
        g.sort_unstable();
        g.dedup();
        g
    };
    single_set::expected_misses(&lines(seq), &group, 2, reps, 2024)
}

fn main() {
    banner("Section 2: the LRU counter-example (paper inline example)");

    let reps = 4000;
    let orig = "ABCA";
    let pubbed = "ABACA";

    let lru_o = lru_misses(orig);
    let lru_p = lru_misses(pubbed);
    let rnd_o = random_mean_misses(orig, reps);
    let rnd_p = random_mean_misses(pubbed, reps);
    // Expected execution time with 100-cycle misses and 1-cycle hits: the
    // paper's dominance claim is about *time* — an inserted access that hits
    // still costs its hit latency.
    let time = |accesses: usize, misses: f64| misses * 100.0 + (accesses as f64 - misses);
    let time_o = time(orig.len(), rnd_o);
    let time_p = time(pubbed.len(), rnd_p);

    let mut t = Table::new(&[
        "sequence",
        "LRU misses",
        "random E[misses]",
        "random E[cycles]",
    ]);
    t.row(&[
        orig,
        &lru_o.to_string(),
        &format!("{rnd_o:.3}"),
        &format!("{time_o:.1}"),
    ]);
    t.row(&[
        pubbed,
        &lru_p.to_string(),
        &format!("{rnd_p:.3}"),
        &format!("{time_p:.1}"),
    ]);
    t.print();

    println!();
    println!("paper: LRU {orig} = 4 misses, {pubbed} = 3 misses (insertion HELPED -> PUB unsound)");
    println!(
        "ours : LRU {orig} = {lru_o}, {pubbed} = {lru_p} -> insertion helped: {}",
        lru_p < lru_o
    );
    println!(
        "ours : random replacement E[cycles] {orig} = {time_o:.1} <= {pubbed} = {time_p:.1} -> \
         insertion can only worsen: {}",
        time_p >= time_o
    );

    assert_eq!(
        (lru_o, lru_p),
        (4, 3),
        "LRU counter-example must match the paper"
    );
    assert!(rnd_p >= rnd_o, "insertion must not reduce expected misses");
    assert!(
        time_p > time_o,
        "insertion must strictly worsen expected time"
    );
    println!("\nSection 2 counter-example: REPRODUCED");
}
