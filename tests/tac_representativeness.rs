//! TAC behaves as the paper describes: the Section 3.1 numbers, and — the
//! core representativeness claim — campaigns of the TAC-derived length
//! actually observe the conflictive layouts.

use mbcr::prelude::*;
use mbcr_cpu::campaign_parallel;
use mbcr_tac::{analyze_symbolic, comapping_probability, runs_for_probability};
use mbcr_trace::SymSeq;

fn seq(s: &str) -> SymSeq {
    s.parse().expect("valid sequence")
}

#[test]
fn section_31_numbers_match_paper() {
    let cfg = TacConfig::paper_example();
    assert_eq!(
        analyze_symbolic(&seq("ABCA").repeat(1000), &cfg).runs_required,
        0
    );
    let r1 = analyze_symbolic(&seq("ABCDEA").repeat(1000), &cfg).runs_required;
    let r2 = analyze_symbolic(&seq("ABCDEFA").repeat(1000), &cfg).runs_required;
    // Paper: > 84 875 and > 14 138 (rounded probabilities).
    assert!((r1 as f64 - 84_875.0).abs() / 84_875.0 < 1e-3, "r1 = {r1}");
    assert!((r2 as f64 - 14_138.0).abs() / 14_138.0 < 1e-3, "r2 = {r2}");
}

/// The probability math: with R = runs_for_probability(p, target) runs, the
/// chance of observing at least one event of per-run probability p is at
/// least 1 - target. Validate empirically at a testable scale.
#[test]
fn derived_run_counts_observe_the_event() {
    // Event: 3 specific lines co-mapped in an S=8 set -> p = 1/64.
    let p_event = comapping_probability(3, 8);
    let r = runs_for_probability(p_event, 0.01); // 1% miss chance for testability
    assert!(r > 0);

    // Simulate: count campaigns (of length r) that never see the event.
    let mut misses = 0u32;
    let trials: u64 = 400;
    for t in 0..trials {
        let mut seen = false;
        for i in 0..r {
            let seed = t * 1_000_003 + i;
            let s0 = PlacementPolicy::RandomHash.set_of(mbcr_trace::LineId(1), 8, seed);
            let s1 = PlacementPolicy::RandomHash.set_of(mbcr_trace::LineId(2), 8, seed);
            let s2 = PlacementPolicy::RandomHash.set_of(mbcr_trace::LineId(3), 8, seed);
            if s0 == s1 && s1 == s2 {
                seen = true;
                break;
            }
        }
        if !seen {
            misses += 1;
        }
    }
    let miss_rate = f64::from(misses) / trials as f64;
    // Expected miss rate <= 1%; allow generous sampling slack.
    assert!(miss_rate <= 0.04, "miss rate = {miss_rate}");
}

/// End-to-end Figure 4 logic: a TAC-sized campaign captures execution times
/// that a convergence-sized campaign misses.
#[test]
fn tac_sized_campaign_sees_the_knee() {
    let platform = PlatformConfig::paper_default();
    // {ABCDEA}-style stress: 5 lines that overflow a 4-way set... on the
    // paper L1 (2-way, 64 sets), 3 round-robin lines suffice.
    let trace = seq("ABC").repeat(400).to_trace(32);

    let small = campaign_parallel(&platform, &trace, 300, 99, 2);
    let large = campaign_parallel(&platform, &trace, 90_000, 99, 4);

    let max_small = *small.iter().max().expect("non-empty");
    let max_large = *large.iter().max().expect("non-empty");
    // The conflictive layout (all 3 lines in one set) occurs with
    // p = (1/64)^2 ~ 2.4e-4: almost surely absent in 300 runs, almost
    // surely present in 90 000.
    assert!(
        max_large as f64 >= 1.5 * max_small as f64,
        "knee not visible: small max {max_small}, large max {max_large}"
    );
}

#[test]
fn tac_requirement_scales_with_cache_and_pattern() {
    // More sets -> rarer co-mapping -> more runs.
    let s8 = analyze_symbolic(&seq("ABCDEA").repeat(500), &TacConfig::new(8, 4));
    let s16 = analyze_symbolic(&seq("ABCDEA").repeat(500), &TacConfig::new(16, 4));
    assert!(s16.runs_required > s8.runs_required);

    // More equally-damaging groups -> higher aggregate probability -> fewer
    // runs (the paper's 3.1.2 effect).
    let five = analyze_symbolic(&seq("ABCDEA").repeat(500), &TacConfig::paper_example());
    let six = analyze_symbolic(&seq("ABCDEFA").repeat(500), &TacConfig::paper_example());
    assert!(six.runs_required < five.runs_required);
}

#[test]
fn pipeline_r_combines_pub_and_tac() {
    let b = mbcr_malardalen::bs::benchmark();
    let cfg = AnalysisConfig::builder().seed(42).quick().build();
    let a = analyze_pub_tac(&b.program, &b.default_input, &cfg).expect("analyze");
    assert_eq!(
        a.r_pub_tac,
        a.r_tac.max(a.r_pub as u64),
        "R_p+t = max(R_pub, R_tac)"
    );
}
