//! A minimal composable pass framework over [`Program`].
//!
//! A [`Pass`] is a named, digest-keyed program transformation; a
//! [`Pipeline`] chains passes, threading each output into the next input
//! and folding the per-pass digests into one pipeline digest. Digests feed
//! the artifact-store keys of the analysis stage graph, so a change to any
//! pass (name or configuration) invalidates exactly the cached results that
//! depended on it.
//!
//! Passes fail with structured [`Diagnostics`] rather than strings, so a
//! lint driver can report machine-readable codes (`PUB001` …) and map them
//! to exit status.

use crate::program::Program;
use crate::verify::Diagnostics;

/// FNV-1a offset basis (64-bit), the conventional digest seed.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a chain starting from `seed`. Matches the
/// digest convention used across the workspace: chain calls to mix
/// several fields into one key.
#[must_use]
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(seed, |h, b| (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

/// One program transformation step.
pub trait Pass {
    /// Stable, human-readable pass name (shows up in lint output and
    /// digest chains).
    fn name(&self) -> &'static str;

    /// Folds this pass's identity (name + configuration) into an upstream
    /// digest. The default mixes the name only; passes with configuration
    /// that changes their output must override and mix it in.
    fn digest(&self, upstream: u64) -> u64 {
        fnv1a(upstream, self.name().as_bytes())
    }

    /// Transforms a program, or fails with diagnostics.
    ///
    /// # Errors
    ///
    /// Structured [`Diagnostics`] describing every violated invariant.
    fn run(&self, program: &Program) -> Result<Program, Diagnostics>;
}

/// An ordered chain of passes.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// An empty pipeline (identity transformation).
    #[must_use]
    pub fn new() -> Pipeline {
        Pipeline { passes: Vec::new() }
    }

    /// Appends a pass, builder-style.
    #[must_use]
    pub fn with(mut self, pass: impl Pass + 'static) -> Pipeline {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// Number of passes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// `true` when the pipeline holds no passes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The pass names, in execution order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Folds every pass's digest over `seed`, in execution order.
    #[must_use]
    pub fn digest(&self, seed: u64) -> u64 {
        self.passes.iter().fold(seed, |d, p| p.digest(d))
    }

    /// Runs the chain, feeding each pass's output into the next.
    ///
    /// # Errors
    ///
    /// The first failing pass's [`Diagnostics`], unchanged.
    pub fn run(&self, program: &Program) -> Result<Program, Diagnostics> {
        let mut cur = program.clone();
        for pass in &self.passes {
            cur = pass.run(&cur)?;
        }
        Ok(cur)
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("passes", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::stmt::Stmt;
    use crate::verify::DiagCode;

    struct Rename(&'static str);

    impl Pass for Rename {
        fn name(&self) -> &'static str {
            "rename"
        }
        fn digest(&self, upstream: u64) -> u64 {
            fnv1a(fnv1a(upstream, b"rename"), self.0.as_bytes())
        }
        fn run(&self, p: &Program) -> Result<Program, Diagnostics> {
            Ok(p.clone().renamed(self.0))
        }
    }

    struct AppendNop;

    impl Pass for AppendNop {
        fn name(&self) -> &'static str {
            "append-nop"
        }
        fn run(&self, p: &Program) -> Result<Program, Diagnostics> {
            let mut body = p.body().to_vec();
            body.push(Stmt::Nop { count: 1 });
            p.with_body(body).map_err(|e| {
                let mut d = Diagnostics::new();
                d.push(DiagCode::InvalidProgram, None, format!("{e:?}"));
                d
            })
        }
    }

    struct AlwaysFail;

    impl Pass for AlwaysFail {
        fn name(&self) -> &'static str {
            "always-fail"
        }
        fn run(&self, _: &Program) -> Result<Program, Diagnostics> {
            let mut d = Diagnostics::new();
            d.push(DiagCode::Pub001, Some(0), "synthetic failure");
            Err(d)
        }
    }

    fn program() -> Program {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::c(1)));
        b.build().unwrap()
    }

    #[test]
    fn pipeline_threads_outputs() {
        let pl = Pipeline::new()
            .with(AppendNop)
            .with(Rename("t2"))
            .with(AppendNop);
        let out = pl.run(&program()).unwrap();
        assert_eq!(out.name(), "t2");
        assert_eq!(out.body().len(), 3);
        assert_eq!(pl.names(), vec!["append-nop", "rename", "append-nop"]);
    }

    #[test]
    fn failure_stops_the_chain() {
        let pl = Pipeline::new().with(AlwaysFail).with(AppendNop);
        let err = pl.run(&program()).unwrap_err();
        assert_eq!(err.codes(), vec![DiagCode::Pub001]);
    }

    #[test]
    fn digests_depend_on_order_and_config() {
        let a = Pipeline::new().with(AppendNop).with(Rename("x"));
        let b = Pipeline::new().with(Rename("x")).with(AppendNop);
        let c = Pipeline::new().with(AppendNop).with(Rename("y"));
        let (da, db, dc) = (
            a.digest(FNV_OFFSET),
            b.digest(FNV_OFFSET),
            c.digest(FNV_OFFSET),
        );
        assert_ne!(da, db, "order must matter");
        assert_ne!(da, dc, "configuration must matter");
        assert_eq!(da, a.digest(FNV_OFFSET), "digests are deterministic");
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let pl = Pipeline::new();
        assert!(pl.is_empty());
        let out = pl.run(&program()).unwrap();
        assert_eq!(out, program());
    }
}
