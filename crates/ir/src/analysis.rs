//! Classic CFG analyses: reachability, dominators, natural loops — plus the
//! structural cross-validation the path numbering relies on.
//!
//! The analyses are standard (iterative dominators over a reverse post
//! order, natural-loop bodies from back edges), but their role here is
//! mostly *adversarial*: the Ball-Larus numbering in [`crate::blpath`]
//! assumes the graph is reducible with single-headed natural loops that
//! coincide one-to-one with the AST's `while`/`for` constructs. Instead of
//! trusting the lowering, [`Analysis::validate`] re-derives those facts from
//! the graph and reports any mismatch.

use std::collections::BTreeSet;

use crate::cfg::{BlockId, Cfg, Terminator};
use crate::expr::{BinOp, Expr, UnOp};
use crate::stmt::Stmt;

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge, dominates the body).
    pub header: BlockId,
    /// Construct id carried by the header's [`Terminator::LoopHead`].
    pub construct: u32,
    /// All blocks of the loop, header included.
    pub body: BTreeSet<BlockId>,
}

/// Derived facts about a [`Cfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Immediate dominator of every block (`None` for the entry and for
    /// unreachable blocks).
    pub idom: Vec<Option<BlockId>>,
    /// Blocks reachable from the entry.
    pub reachable: Vec<bool>,
    /// Back edges `(source, header)` where the header dominates the source.
    pub back_edges: Vec<(BlockId, BlockId)>,
    /// One natural loop per back edge, in header construct-id order.
    pub loops: Vec<NaturalLoop>,
}

impl Analysis {
    /// Runs all analyses on a graph.
    #[must_use]
    pub fn of(cfg: &Cfg) -> Analysis {
        let rpo = reverse_postorder(cfg);
        let reachable = {
            let mut r = vec![false; cfg.len()];
            for &b in &rpo {
                r[b.idx()] = true;
            }
            r
        };
        let idom = dominators(cfg, &rpo);
        let mut back_edges = Vec::new();
        for (i, _) in cfg.blocks().iter().enumerate() {
            let u = BlockId(i as u32);
            if !reachable[u.idx()] {
                continue;
            }
            for v in cfg.succs(u) {
                if dominates(&idom, v, u) {
                    back_edges.push((u, v));
                }
            }
        }
        let preds = cfg.preds();
        let mut loops: Vec<NaturalLoop> = back_edges
            .iter()
            .map(|&(src, header)| {
                let construct = match cfg.blocks()[header.idx()].term {
                    Terminator::LoopHead { construct, .. } => construct,
                    // Validation reports this; use a sentinel meanwhile.
                    _ => u32::MAX,
                };
                NaturalLoop {
                    header,
                    construct,
                    body: natural_loop_body(header, src, &preds),
                }
            })
            .collect();
        loops.sort_by_key(|l| l.construct);
        Analysis {
            idom,
            reachable,
            back_edges,
            loops,
        }
    }

    /// Does `a` dominate `b`?
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        dominates(&self.idom, a, b)
    }

    /// Cross-validates the graph against the structural invariants the path
    /// numbering needs, returning human-readable findings (empty = sound):
    ///
    /// * every block reachable from the entry;
    /// * every loop header carries a [`Terminator::LoopHead`] and each
    ///   `LoopHead` block heads exactly one natural loop (single back edge);
    /// * the natural-loop count equals the AST's `while`/`for` count, with
    ///   matching construct ids.
    #[must_use]
    pub fn validate(&self, cfg: &Cfg, ast_body: &[Stmt]) -> Vec<String> {
        let mut findings = Vec::new();
        for (i, ok) in self.reachable.iter().enumerate() {
            if !ok {
                findings.push(format!("bb{i} is unreachable from the entry"));
            }
        }
        for l in &self.loops {
            if !matches!(
                cfg.blocks()[l.header.idx()].term,
                Terminator::LoopHead { .. }
            ) {
                findings.push(format!(
                    "natural loop headed by {} has no LoopHead terminator",
                    l.header
                ));
            }
        }
        let mut headers: Vec<BlockId> = self.loops.iter().map(|l| l.header).collect();
        headers.sort_unstable();
        headers.dedup();
        if headers.len() != self.loops.len() {
            findings.push("a loop header has more than one back edge".to_string());
        }
        let mut ast_loop_ids = Vec::new();
        collect_loop_ids(ast_body, &mut 0, &mut ast_loop_ids);
        let mut cfg_loop_ids: Vec<u32> = self.loops.iter().map(|l| l.construct).collect();
        cfg_loop_ids.sort_unstable();
        let mut ast_sorted = ast_loop_ids.clone();
        ast_sorted.sort_unstable();
        if cfg_loop_ids != ast_sorted {
            findings.push(format!(
                "natural loops {cfg_loop_ids:?} do not match AST loops {ast_sorted:?}"
            ));
        }
        findings
    }
}

/// Blocks in reverse post order from the entry (unreachable blocks absent).
#[must_use]
pub fn reverse_postorder(cfg: &Cfg) -> Vec<BlockId> {
    let mut visited = vec![false; cfg.len()];
    let mut post = Vec::with_capacity(cfg.len());
    // Iterative DFS with an explicit phase marker (enter/exit).
    let mut stack = vec![(cfg.entry(), false)];
    while let Some((b, done)) = stack.pop() {
        if done {
            post.push(b);
            continue;
        }
        if visited[b.idx()] {
            continue;
        }
        visited[b.idx()] = true;
        stack.push((b, true));
        // Push successors reversed so the first successor is visited first.
        for s in cfg.succs(b).into_iter().rev() {
            if !visited[s.idx()] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

/// Iterative dominator computation (Cooper–Harvey–Kennedy) over the reverse
/// post order. Entry's idom is `None`; unreachable blocks keep `None`.
#[must_use]
pub fn dominators(cfg: &Cfg, rpo: &[BlockId]) -> Vec<Option<BlockId>> {
    let mut order = vec![usize::MAX; cfg.len()];
    for (i, &b) in rpo.iter().enumerate() {
        order[b.idx()] = i;
    }
    let preds = cfg.preds();
    let mut idom: Vec<Option<BlockId>> = vec![None; cfg.len()];
    if rpo.is_empty() {
        return idom;
    }
    let entry = rpo[0];
    idom[entry.idx()] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo[1..] {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.idx()] {
                if idom[p.idx()].is_none() {
                    continue; // not yet processed / unreachable
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order, p, cur),
                });
            }
            if new_idom.is_some() && idom[b.idx()] != new_idom {
                idom[b.idx()] = new_idom;
                changed = true;
            }
        }
    }
    // Normalize: the entry's self-idom becomes None for callers.
    idom[entry.idx()] = None;
    idom
}

fn intersect(idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while order[a.idx()] > order[b.idx()] {
            a = idom[a.idx()].expect("processed block has an idom");
        }
        while order[b.idx()] > order[a.idx()] {
            b = idom[b.idx()].expect("processed block has an idom");
        }
    }
    a
}

fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.idx()] {
            Some(next) => cur = next,
            None => return false,
        }
    }
}

/// The natural loop of back edge `src → header`: header plus everything
/// that reaches `src` without passing through the header.
fn natural_loop_body(header: BlockId, src: BlockId, preds: &[Vec<BlockId>]) -> BTreeSet<BlockId> {
    let mut body: BTreeSet<BlockId> = BTreeSet::new();
    body.insert(header);
    let mut stack = vec![src];
    while let Some(b) = stack.pop() {
        if body.insert(b) {
            for &p in &preds[b.idx()] {
                stack.push(p);
            }
        }
    }
    body
}

fn collect_loop_ids(stmts: &[Stmt], next_id: &mut u32, out: &mut Vec<u32>) {
    for s in stmts {
        match s {
            Stmt::Assign(..) | Stmt::Store { .. } | Stmt::Touch { .. } | Stmt::Nop { .. } => {}
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                *next_id += 1;
                collect_loop_ids(then_branch, next_id, out);
                collect_loop_ids(else_branch, next_id, out);
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                out.push(*next_id);
                *next_id += 1;
                collect_loop_ids(body, next_id, out);
            }
        }
    }
}

/// Evaluates a constant expression, if it is one.
///
/// Variables and loads are unknown (`None`); division/remainder by a
/// constant zero is `None` too (the interpreter would fault). Semantics
/// mirror the interpreter's wrapping arithmetic exactly, so a `Some` result
/// is the value every run computes.
#[must_use]
pub fn const_eval(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(v) => Some(*v),
        Expr::Var(_) | Expr::Load(..) => None,
        Expr::Un(op, e) => {
            let v = const_eval(e)?;
            Some(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => !v,
                UnOp::LNot => i64::from(v == 0),
            })
        }
        Expr::Bin(op, l, r) => {
            let a = const_eval(l)?;
            let b = const_eval(r)?;
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::Eq => i64::from(a == b),
                BinOp::Ne => i64::from(a != b),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn c(v: i64) -> Expr {
        Expr::c(v)
    }

    fn analyzed(p: &crate::program::Program) -> (Cfg, Analysis) {
        let cfg = Cfg::of(p);
        let a = Analysis::of(&cfg);
        (cfg, a)
    }

    #[test]
    fn diamond_dominators() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::if_(
            Expr::var(x).gt(c(0)),
            vec![Stmt::Assign(x, c(1))],
            vec![Stmt::Assign(x, c(2))],
        ));
        let p = b.build().unwrap();
        let (cfg, a) = analyzed(&p);
        assert!(a.reachable.iter().all(|&r| r));
        // Entry dominates everything; join's idom is the entry, not an arm.
        assert_eq!(a.idom[cfg.exit().idx()], Some(cfg.entry()));
        assert!(a.dominates(cfg.entry(), cfg.exit()));
        assert!(a.back_edges.is_empty());
        assert!(a.loops.is_empty());
        assert!(a.validate(&cfg, p.body()).is_empty());
    }

    #[test]
    fn while_yields_one_natural_loop() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        b.push(Stmt::while_(
            Expr::var(i).lt(c(3)),
            3,
            vec![Stmt::Assign(i, Expr::var(i).add(c(1)))],
        ));
        let p = b.build().unwrap();
        let (cfg, a) = analyzed(&p);
        assert_eq!(a.back_edges.len(), 1);
        assert_eq!(a.loops.len(), 1);
        let l = &a.loops[0];
        assert_eq!(l.construct, 0);
        // Header + body block.
        assert_eq!(l.body.len(), 2);
        assert!(a.dominates(l.header, *l.body.iter().last().unwrap()));
        assert!(a.validate(&cfg, p.body()).is_empty());
    }

    #[test]
    fn nested_loops_and_branches_validate() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        let i = b.var("i");
        let j = b.var("j");
        b.push(Stmt::for_(
            i,
            c(0),
            c(3),
            3,
            vec![Stmt::if_(
                Expr::var(x).gt(c(0)),
                vec![Stmt::while_(
                    Expr::var(j).lt(c(2)),
                    2,
                    vec![Stmt::Assign(j, Expr::var(j).add(c(1)))],
                )],
                vec![Stmt::Assign(x, c(0))],
            )],
        ));
        let p = b.build().unwrap();
        let (cfg, a) = analyzed(&p);
        assert_eq!(a.loops.len(), 2);
        assert_eq!(a.loops[0].construct, 0, "for loop");
        assert_eq!(a.loops[1].construct, 2, "inner while");
        // The inner loop's body is strictly inside the outer loop's body.
        assert!(a.loops[1].body.is_subset(&a.loops[0].body));
        assert!(a.loops[1].body.len() < a.loops[0].body.len());
        assert!(a.validate(&cfg, p.body()).is_empty());
    }

    #[test]
    fn const_eval_mirrors_interpreter() {
        assert_eq!(const_eval(&c(2).add(c(3)).mul(c(4))), Some(20));
        assert_eq!(const_eval(&c(7).div(c(0))), None);
        assert_eq!(const_eval(&c(1).lt(c(2))), Some(1));
        assert_eq!(const_eval(&Expr::var(crate::program::Var(0))), None);
        assert_eq!(const_eval(&c(5).neg().add(c(5))), Some(0));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::if_(Expr::var(x).gt(c(0)), vec![], vec![]));
        let p = b.build().unwrap();
        let cfg = Cfg::of(&p);
        let rpo = reverse_postorder(&cfg);
        assert_eq!(rpo[0], cfg.entry());
        assert_eq!(rpo.len(), cfg.len());
    }
}
