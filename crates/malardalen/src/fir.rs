//! `fir` — finite impulse response filter with output saturation
//! (Mälardalen `fir.c`, scaled: 64-sample signal, 8 taps).
//!
//! Multipath through the per-sample saturation branch; the default input
//! saturates every output (the longer branch), i.e. the worst-case path.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Signal length (scaled down from 700).
pub const SIGNAL: u32 = 64;
/// Number of filter taps (scaled down from 35).
pub const TAPS: u32 = 8;
/// Saturation limit.
pub const SAT: i64 = 65_535;

/// Builds the `fir` program.
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("fir");
    let input = b.array("input", SIGNAL);
    let coef = b.array("coef", TAPS);
    let output = b.array("output", SIGNAL);
    let i = b.var("i");
    let j = b.var("j");
    let acc = b.var("acc");

    let outs = i64::from(SIGNAL - TAPS + 1);
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(outs),
        SIGNAL - TAPS + 1,
        vec![
            Stmt::Assign(acc, Expr::c(0)),
            Stmt::for_(
                j,
                Expr::c(0),
                Expr::c(i64::from(TAPS)),
                TAPS,
                vec![Stmt::Assign(
                    acc,
                    Expr::var(acc).add(
                        Expr::load(input, Expr::var(i).add(Expr::var(j)))
                            .mul(Expr::load(coef, Expr::var(j))),
                    ),
                )],
            ),
            Stmt::if_(
                Expr::var(acc).gt(Expr::c(SAT)),
                vec![Stmt::Assign(acc, Expr::c(SAT))],
                vec![],
            ),
            Stmt::store(output, Expr::var(i), Expr::var(acc).shr(Expr::c(5))),
        ],
    ));
    b.build().expect("fir is well-formed")
}

fn signal_inputs(p: &Program, samples: Vec<i64>, taps: Vec<i64>) -> Inputs {
    let input = p.array_by_name("input").expect("input array");
    let coef = p.array_by_name("coef").expect("coef array");
    Inputs::new()
        .with_array(input, samples)
        .with_array(coef, taps)
}

/// Default input: large samples, every output saturates (worst path).
#[must_use]
pub fn default_input() -> Inputs {
    let p = program();
    let samples: Vec<i64> = (0..SIGNAL).map(|k| 4000 + i64::from(k) * 3).collect();
    let taps: Vec<i64> = (0..TAPS).map(|k| 16 + i64::from(k)).collect();
    signal_inputs(&p, samples, taps)
}

/// Saturating, non-saturating and mixed signals.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    let p = program();
    let taps: Vec<i64> = (0..TAPS).map(|k| 16 + i64::from(k)).collect();
    let hot: Vec<i64> = (0..SIGNAL).map(|k| 4000 + i64::from(k) * 3).collect();
    let cold: Vec<i64> = (0..SIGNAL).map(|k| i64::from(k % 13)).collect();
    let mixed: Vec<i64> = (0..SIGNAL)
        .map(|k| if k % 2 == 0 { 4000 } else { 1 })
        .collect();
    vec![
        NamedInput {
            name: "saturating".into(),
            inputs: signal_inputs(&p, hot, taps.clone()),
        },
        NamedInput {
            name: "quiet".into(),
            inputs: signal_inputs(&p, cold, taps.clone()),
        },
        NamedInput {
            name: "mixed".into(),
            inputs: signal_inputs(&p, mixed, taps),
        },
    ]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "fir",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::MultipathWorstKnown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn saturating_input_clamps_every_output() {
        let p = program();
        let run = execute(&p, &default_input()).unwrap();
        let out = run.state.array(p.array_by_name("output").unwrap());
        for (k, &o) in out.iter().enumerate().take((SIGNAL - TAPS + 1) as usize) {
            assert_eq!(o, SAT >> 5, "output {k}");
        }
    }

    #[test]
    fn quiet_input_computes_convolution() {
        let p = program();
        let vecs = input_vectors();
        let run = execute(&p, &vecs[1].inputs).unwrap();
        let out = run.state.array(p.array_by_name("output").unwrap());
        // Check one output against a direct computation.
        let samples: Vec<i64> = (0..SIGNAL).map(|k| i64::from(k % 13)).collect();
        let taps: Vec<i64> = (0..TAPS).map(|k| 16 + i64::from(k)).collect();
        let acc: i64 = (0..TAPS as usize).map(|j| samples[j] * taps[j]).sum();
        assert_eq!(out[0], acc >> 5);
    }

    #[test]
    fn saturation_changes_the_path() {
        let p = program();
        let vecs = input_vectors();
        let hot = execute(&p, &vecs[0].inputs).unwrap();
        let cold = execute(&p, &vecs[1].inputs).unwrap();
        assert_ne!(hot.path.path_id(), cold.path.path_id());
    }
}
