//! Programs: declarations, memory layout, and the builder.

use std::collections::HashMap;
use std::fmt;

use crate::expr::Expr;
use crate::stmt::Stmt;

/// Base address of the data segment (arrays).
pub const DATA_BASE: u64 = 0x8000_0000;
/// Base address of the code segment.
pub const CODE_BASE: u64 = 0x0000_1000;
/// Bytes per instruction.
pub const INSTR_BYTES: u64 = 4;
/// Bytes per array element (C `int`).
pub const ELEM_BYTES: u64 = 4;
/// Arrays are aligned to this many bytes (one cache line).
pub const ARRAY_ALIGN: u64 = 32;

/// A scalar variable (register-allocated: reads/writes emit no memory
/// accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// An array identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// An array declaration: `len` elements of [`ELEM_BYTES`] bytes at `base`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of elements.
    pub len: u32,
    /// Base byte address (assigned by [`ProgramBuilder::build`]).
    pub base: u64,
}

impl ArrayDecl {
    /// Byte address of element `index` (no bounds check here; the
    /// interpreter checks).
    #[must_use]
    pub fn elem_addr(&self, index: i64) -> u64 {
        self.base
            .wrapping_add((index as u64).wrapping_mul(ELEM_BYTES))
    }
}

/// Error validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An expression refers to a variable id ≥ the declared count.
    UnknownVar(u32),
    /// A statement or expression refers to an undeclared array.
    UnknownArray(u32),
    /// A loop declares a zero maximum iteration count but has a body.
    ZeroLoopBound,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownVar(v) => write!(f, "unknown variable v{v}"),
            ProgramError::UnknownArray(a) => write!(f, "unknown array arr{a}"),
            ProgramError::ZeroLoopBound => write!(f, "loop with zero max_iter"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated program: declarations plus the statement tree.
///
/// Construct programs with [`ProgramBuilder`]; [`Program::body`] exposes the
/// statement tree for analyses and transformations (PUB rebuilds it).
///
/// # Examples
///
/// ```
/// use mbcr_ir::{Expr, ProgramBuilder, Stmt};
///
/// let mut b = ProgramBuilder::new("sum");
/// let a = b.array("a", 4);
/// let (i, acc) = (b.var("i"), b.var("acc"));
/// b.push(Stmt::Assign(acc, Expr::c(0)));
/// b.push(Stmt::for_(
///     i,
///     Expr::c(0),
///     Expr::c(4),
///     4,
///     vec![Stmt::Assign(acc, Expr::var(acc).add(Expr::load(a, Expr::var(i))))],
/// ));
/// let p = b.build()?;
/// assert_eq!(p.arrays().len(), 1);
/// # Ok::<(), mbcr_ir::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    var_names: Vec<String>,
    arrays: Vec<ArrayDecl>,
    body: Vec<Stmt>,
}

impl Program {
    /// The program's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of declared scalar variables.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Declared variable names (indexed by [`Var`] id).
    #[must_use]
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// Looks up a variable by name.
    #[must_use]
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// The array declarations (indexed by [`ArrayId`]).
    #[must_use]
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Looks up an array by name.
    #[must_use]
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// The top-level statement list.
    #[must_use]
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Builds a new program with the same declarations but a different body
    /// (used by PUB, which only inserts innocuous statements).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the new body references undeclared
    /// variables or arrays.
    pub fn with_body(&self, body: Vec<Stmt>) -> Result<Program, ProgramError> {
        let p = Program {
            name: self.name.clone(),
            var_names: self.var_names.clone(),
            arrays: self.arrays.clone(),
            body,
        };
        p.validate()?;
        Ok(p)
    }

    /// Renames the program (e.g. `bs` → `bs_pub`).
    #[must_use]
    pub fn renamed(mut self, name: impl Into<String>) -> Program {
        self.name = name.into();
        self
    }

    /// Builds a new program with additional scalar variables and a new body.
    ///
    /// Used by transformations that need scratch state (e.g. PUB's loop
    /// padding introduces continuation flags). Returns the new program and
    /// the ids of the added variables, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the new body is invalid.
    pub fn extended(
        &self,
        extra_vars: &[&str],
        body: Vec<Stmt>,
    ) -> Result<(Program, Vec<Var>), ProgramError> {
        let mut var_names = self.var_names.clone();
        let mut ids = Vec::with_capacity(extra_vars.len());
        for name in extra_vars {
            ids.push(Var(var_names.len() as u32));
            var_names.push((*name).to_string());
        }
        let p = Program {
            name: self.name.clone(),
            var_names,
            arrays: self.arrays.clone(),
            body,
        };
        p.validate()?;
        Ok((p, ids))
    }

    /// Returns the array whose data segment contains `addr`, if any.
    ///
    /// Useful for classifying trace accesses back to program objects.
    #[must_use]
    pub fn array_containing(&self, addr: u64) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|d| addr >= d.base && addr < d.base + u64::from(d.len) * ELEM_BYTES)
            .map(|i| ArrayId(i as u32))
    }

    fn validate(&self) -> Result<(), ProgramError> {
        fn check_expr(e: &Expr, vars: usize, arrays: usize) -> Result<(), ProgramError> {
            match e {
                Expr::Const(_) => Ok(()),
                Expr::Var(v) => {
                    if (v.0 as usize) < vars {
                        Ok(())
                    } else {
                        Err(ProgramError::UnknownVar(v.0))
                    }
                }
                Expr::Load(a, idx) => {
                    if (a.0 as usize) >= arrays {
                        return Err(ProgramError::UnknownArray(a.0));
                    }
                    check_expr(idx, vars, arrays)
                }
                Expr::Un(_, e) => check_expr(e, vars, arrays),
                Expr::Bin(_, l, r) => {
                    check_expr(l, vars, arrays)?;
                    check_expr(r, vars, arrays)
                }
            }
        }
        fn check_stmts(stmts: &[Stmt], vars: usize, arrays: usize) -> Result<(), ProgramError> {
            for s in stmts {
                match s {
                    Stmt::Assign(v, e) => {
                        if (v.0 as usize) >= vars {
                            return Err(ProgramError::UnknownVar(v.0));
                        }
                        check_expr(e, vars, arrays)?;
                    }
                    Stmt::Store {
                        array,
                        index,
                        value,
                    } => {
                        if (array.0 as usize) >= arrays {
                            return Err(ProgramError::UnknownArray(array.0));
                        }
                        check_expr(index, vars, arrays)?;
                        check_expr(value, vars, arrays)?;
                    }
                    Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    } => {
                        check_expr(cond, vars, arrays)?;
                        check_stmts(then_branch, vars, arrays)?;
                        check_stmts(else_branch, vars, arrays)?;
                    }
                    Stmt::While {
                        cond,
                        max_iter,
                        body,
                    } => {
                        if *max_iter == 0 && !body.is_empty() {
                            return Err(ProgramError::ZeroLoopBound);
                        }
                        check_expr(cond, vars, arrays)?;
                        check_stmts(body, vars, arrays)?;
                    }
                    Stmt::For {
                        var,
                        from,
                        to,
                        max_iter,
                        body,
                    } => {
                        if (var.0 as usize) >= vars {
                            return Err(ProgramError::UnknownVar(var.0));
                        }
                        if *max_iter == 0 && !body.is_empty() {
                            return Err(ProgramError::ZeroLoopBound);
                        }
                        check_expr(from, vars, arrays)?;
                        check_expr(to, vars, arrays)?;
                        check_stmts(body, vars, arrays)?;
                    }
                    Stmt::Touch { refs, .. } => {
                        for (a, idx) in refs {
                            if (a.0 as usize) >= arrays {
                                return Err(ProgramError::UnknownArray(a.0));
                            }
                            check_expr(idx, vars, arrays)?;
                        }
                    }
                    Stmt::Nop { .. } => {}
                }
            }
            Ok(())
        }
        check_stmts(&self.body, self.var_names.len(), self.arrays.len())
    }
}

/// Incremental builder for [`Program`].
///
/// Allocates variables and arrays, then assembles the body. Array base
/// addresses are laid out sequentially in the data segment, each aligned to a
/// cache line ([`ARRAY_ALIGN`]).
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    var_names: Vec<String>,
    var_index: HashMap<String, Var>,
    arrays: Vec<(String, u32)>,
    body: Vec<Stmt>,
}

impl ProgramBuilder {
    /// Starts a new program.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            var_names: Vec::new(),
            var_index: HashMap::new(),
            arrays: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Declares (or retrieves) a scalar variable by name.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.var_index.get(name) {
            return v;
        }
        let v = Var(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.var_index.insert(name.to_string(), v);
        v
    }

    /// Declares an array with `len` elements.
    pub fn array(&mut self, name: &str, len: u32) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push((name.to_string(), len));
        id
    }

    /// Appends a statement to the top-level body.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.body.push(stmt);
        self
    }

    /// Appends several statements.
    pub fn extend(&mut self, stmts: impl IntoIterator<Item = Stmt>) -> &mut Self {
        self.body.extend(stmts);
        self
    }

    /// Finalizes the program: assigns array base addresses and validates all
    /// references.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on references to undeclared variables or
    /// arrays, or zero loop bounds.
    pub fn build(self) -> Result<Program, ProgramError> {
        let mut base = DATA_BASE;
        let mut arrays = Vec::with_capacity(self.arrays.len());
        for (name, len) in self.arrays {
            arrays.push(ArrayDecl { name, len, base });
            let bytes = u64::from(len) * ELEM_BYTES;
            base += bytes.div_ceil(ARRAY_ALIGN) * ARRAY_ALIGN;
        }
        let p = Program {
            name: self.name,
            var_names: self.var_names,
            arrays,
            body: self.body,
        };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_and_aligns_arrays() {
        let mut b = ProgramBuilder::new("t");
        let a0 = b.array("a", 3); // 12 bytes -> rounds to 32
        let a1 = b.array("b", 8); // starts one line later
        let p = b.build().unwrap();
        assert_eq!(p.arrays()[a0.0 as usize].base, DATA_BASE);
        assert_eq!(p.arrays()[a1.0 as usize].base, DATA_BASE + 32);
        assert_eq!(p.arrays()[a0.0 as usize].elem_addr(2), DATA_BASE + 8);
    }

    #[test]
    fn var_is_idempotent_by_name() {
        let mut b = ProgramBuilder::new("t");
        let x1 = b.var("x");
        let y = b.var("y");
        let x2 = b.var("x");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        let p = b.build().unwrap();
        assert_eq!(p.var_by_name("y"), Some(y));
        assert_eq!(p.var_by_name("nope"), None);
    }

    #[test]
    fn validation_rejects_unknown_refs() {
        let mut b = ProgramBuilder::new("t");
        let _x = b.var("x");
        b.push(Stmt::Assign(Var(5), Expr::c(0)));
        assert_eq!(b.build().unwrap_err(), ProgramError::UnknownVar(5));

        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::load(ArrayId(0), Expr::c(0))));
        assert_eq!(b.build().unwrap_err(), ProgramError::UnknownArray(0));
    }

    #[test]
    fn validation_rejects_zero_loop_bound() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::while_(
            Expr::c(0),
            0,
            vec![Stmt::Assign(x, Expr::c(1))],
        ));
        assert_eq!(b.build().unwrap_err(), ProgramError::ZeroLoopBound);
    }

    #[test]
    fn with_body_revalidates() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x");
        b.push(Stmt::Assign(x, Expr::c(0)));
        let p = b.build().unwrap();
        assert!(p.with_body(vec![Stmt::Assign(Var(9), Expr::c(0))]).is_err());
        let p2 = p.with_body(vec![Stmt::Nop { count: 1 }]).unwrap();
        assert_eq!(p2.body().len(), 1);
        assert_eq!(p2.name(), "t");
        assert_eq!(p2.renamed("t_pub").name(), "t_pub");
    }

    #[test]
    fn error_display() {
        assert!(ProgramError::UnknownVar(3).to_string().contains("v3"));
        assert!(ProgramError::UnknownArray(2).to_string().contains("arr2"));
    }
}
