//! Mälardalen WCET benchmark models in the mbcr IR.
//!
//! The paper evaluates on the Mälardalen suite (Gustafsson et al., WCET'10)
//! "with default input sets, considering them representative of the worst
//! case for loop bounds". This crate models the eleven benchmarks of the
//! paper's Table 2 / Figure 5 — control structure, data layout and
//! input-dependent paths faithful to the C originals, with array sizes
//! scaled where noted so the full campaign suite runs on a laptop:
//!
//! The *static* and *observed* path columns below are **computed**, not
//! hand-maintained: static counts come from Ball–Larus path numbering
//! ([`mbcr_ir::PathSpace`]) and observed counts from running every shipped
//! input vector ([`Benchmark::path_profile`]); a test asserts this table
//! against both. "> 2^128" marks spaces whose exact count saturates 128-bit
//! arithmetic (membership is still statically checkable).
//!
//! | module | original | scaling | static paths | observed paths |
//! |--------|----------|---------|--------------|----------------|
//! | [`bs`] | binary search, 15 entries | unchanged | 121 | 8 max-iteration paths (§3.3) |
//! | [`cnt`] | 10×10 matrix count/sum | unchanged | 2^100 | 3, worst path = default input |
//! | [`fir`] | FIR filter, 700×35 | 64 samples × 8 taps | 2^57 | 2 (saturation), worst = default |
//! | [`janne`] | janne_complex | unchanged | > 2^128 | 4, worst = default |
//! | [`crc`] | CRC-CCITT over 40 bytes | unchanged | > 2^128 | 3, worst path unknown |
//! | [`edn`] | DSP kernels | 64-element vectors | 1 | 1 (single path) |
//! | [`insertsort`] | 10-element insertion sort | unchanged | ≈ 1.23·10^27 | 3 (reversed default) |
//! | [`jfdc`] | jfdctint 8×8 | unchanged | 1 | 1 (single path) |
//! | [`matmult`] | 20×20 matmul | 8×8 | 1 | 1 (single path) |
//! | [`fdct`] | fdct 8×8 | unchanged | 1 | 1 (single path) |
//! | [`ns`] | 5⁴ nested search | unchanged | > 2^128 | 3 (full scan) |
//!
//! # Examples
//!
//! ```
//! use mbcr_ir::execute;
//!
//! let bench = mbcr_malardalen::bs::benchmark();
//! let run = execute(&bench.program, &bench.default_input).unwrap();
//! assert!(!run.trace.is_empty());
//! ```

pub mod bs;
pub mod cnt;
pub mod crc;
pub mod edn;
pub mod fdct;
pub mod fir;
pub mod insertsort;
pub mod janne;
pub mod jfdc;
pub mod matmult;
pub mod ns;

use mbcr_ir::{group_inputs_by_path, Inputs, InterpError, PathSpace, Program};

/// A named input vector (the paper's `v1`, `v3`, … notation).
#[derive(Debug, Clone)]
pub struct NamedInput {
    /// Vector name.
    pub name: String,
    /// The concrete input values.
    pub inputs: Inputs,
}

/// Path-structure class of a benchmark, as discussed around the paper's
/// Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// No data-dependent control flow (or none under the default input).
    SinglePath,
    /// Multipath, but the default input triggers the worst-case path.
    MultipathWorstKnown,
    /// Multipath with an unknown worst-case path (`crc`).
    MultipathWorstUnknown,
}

/// A packaged benchmark: program, inputs and classification.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (matches the paper's tables).
    pub name: &'static str,
    /// The program model.
    pub program: Program,
    /// The default input set.
    pub default_input: Inputs,
    /// Exploratory input vectors (first one = default-equivalent).
    pub input_vectors: Vec<NamedInput>,
    /// Path-structure class.
    pub class: BenchClass,
}

/// Computed path statistics of one benchmark: the static (Ball–Larus) path
/// count against the paths actually exercised by the shipped input vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathProfile {
    /// Number of static paths ([`PathSpace::num_paths`]); `u128::MAX` when
    /// `saturated`.
    pub static_paths: u128,
    /// `true` when the true static count exceeds 128-bit arithmetic.
    pub saturated: bool,
    /// Distinct paths observed across [`Benchmark::input_vectors`].
    pub default_input_paths: usize,
}

impl Benchmark {
    /// Computes the benchmark's [`PathProfile`], cross-checking along the
    /// way that every observed path lies in the static path space.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (cannot happen for shipped vectors).
    ///
    /// # Panics
    ///
    /// If an observed path falls outside the static enumeration — that
    /// would mean the static analysis is wrong, never a data problem.
    pub fn path_profile(&self) -> Result<PathProfile, InterpError> {
        let space = PathSpace::of(&self.program);
        let inputs: Vec<Inputs> = self
            .input_vectors
            .iter()
            .map(|v| v.inputs.clone())
            .collect();
        let groups = group_inputs_by_path(&self.program, &inputs)?;
        for (record, members) in &groups {
            assert!(
                space.contains(record),
                "{}: observed path {record} (inputs {members:?}) is outside the static path space",
                self.name
            );
        }
        Ok(PathProfile {
            static_paths: space.num_paths(),
            saturated: space.is_saturated(),
            default_input_paths: groups.len(),
        })
    }
}

/// The full suite, in the paper's Table 2 order.
#[must_use]
pub fn suite() -> Vec<Benchmark> {
    vec![
        bs::benchmark(),
        cnt::benchmark(),
        fir::benchmark(),
        janne::benchmark(),
        crc::benchmark(),
        edn::benchmark(),
        insertsort::benchmark(),
        jfdc::benchmark(),
        matmult::benchmark(),
        fdct::benchmark(),
        ns::benchmark(),
    ]
}

/// Looks a benchmark up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn suite_matches_paper_order() {
        let names: Vec<&str> = suite().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "bs",
                "cnt",
                "fir",
                "janne",
                "crc",
                "edn",
                "insertsort",
                "jfdc",
                "matmult",
                "fdct",
                "ns"
            ]
        );
    }

    #[test]
    fn every_benchmark_runs_on_every_vector() {
        for b in suite() {
            for v in &b.input_vectors {
                let run = execute(&b.program, &v.inputs);
                assert!(run.is_ok(), "{}:{} failed: {:?}", b.name, v.name, run.err());
                assert!(!run.unwrap().trace.is_empty(), "{}:{}", b.name, v.name);
            }
        }
    }

    #[test]
    fn single_path_benchmarks_have_one_vector_class() {
        use std::collections::HashSet;
        for b in suite()
            .into_iter()
            .filter(|b| b.class == BenchClass::SinglePath)
        {
            // "Single path" is a statement about the *default input* (the
            // paper's classification): insertsort and ns have exploratory
            // vectors that deliberately deviate (sortedness / hit position),
            // so the cross-vector check applies to the rest.
            if b.input_vectors.len() == 1 || b.name == "insertsort" || b.name == "ns" {
                continue;
            }
            let lens: HashSet<usize> = b
                .input_vectors
                .iter()
                .map(|v| execute(&b.program, &v.inputs).unwrap().trace.len())
                .collect();
            assert_eq!(lens.len(), 1, "{} should be single-path", b.name);
        }
    }

    /// The crate-level doc table, as data: (name, static paths — `None`
    /// means saturated/> 2^128, observed paths over the shipped vectors).
    const DOC_TABLE: &[(&str, Option<u128>, usize)] = &[
        ("bs", Some(121), 8),
        ("cnt", Some(1 << 100), 3),
        ("fir", Some(1 << 57), 2),
        ("janne", None, 4),
        ("crc", None, 3),
        ("edn", Some(1), 1),
        ("insertsort", Some(1_227_102_111_503_512_992_112_190_463), 3),
        ("jfdc", Some(1), 1),
        ("matmult", Some(1), 1),
        ("fdct", Some(1), 1),
        ("ns", None, 3),
    ];

    #[test]
    fn doc_table_matches_computed_path_profiles() {
        for (name, static_paths, observed) in DOC_TABLE {
            let b = by_name(name).unwrap();
            let profile = b.path_profile().unwrap();
            match static_paths {
                Some(n) => {
                    assert!(!profile.saturated, "{name} unexpectedly saturated");
                    assert_eq!(profile.static_paths, *n, "{name} static path count");
                }
                None => assert!(profile.saturated, "{name} should exceed u128"),
            }
            assert_eq!(
                profile.default_input_paths, *observed,
                "{name} observed path count"
            );
        }
        // The paper's §3.3 headline number, spelled out.
        assert_eq!(
            by_name("bs")
                .unwrap()
                .path_profile()
                .unwrap()
                .default_input_paths,
            8,
            "bs must expose exactly 8 max-iteration paths"
        );
    }

    #[test]
    fn observed_paths_roundtrip_through_bl_ids() {
        use mbcr_ir::PathSpace;
        for b in suite() {
            let space = PathSpace::of(&b.program);
            for v in &b.input_vectors {
                let run = execute(&b.program, &v.inputs).unwrap();
                assert!(
                    space.contains(&run.path),
                    "{}:{} path outside static space",
                    b.name,
                    v.name
                );
                if !space.is_saturated() {
                    let id = space.index_of(&run.path).unwrap();
                    assert_eq!(
                        space.record_of(id).unwrap(),
                        run.path,
                        "{}:{} BL id must roundtrip",
                        b.name,
                        v.name
                    );
                }
            }
        }
    }

    #[test]
    fn bs_static_paths_enumerate_and_cover_observed() {
        use mbcr_ir::PathSpace;
        use std::collections::HashSet;
        let b = by_name("bs").unwrap();
        let space = PathSpace::of(&b.program);
        let all = space.enumerate_paths(1024).unwrap();
        assert_eq!(all.len(), 121);
        let statics: HashSet<u64> = all.iter().map(|p| p.record.path_id()).collect();
        for v in &b.input_vectors {
            let run = execute(&b.program, &v.inputs).unwrap();
            assert!(
                statics.contains(&run.path.path_id()),
                "bs:{} observed path missing from enumeration",
                v.name
            );
            // The static signature predicts the concrete trace exactly.
            let sig = space.signature_of(&run.path).unwrap();
            assert_eq!(
                sig.instr_fetches as usize,
                run.trace.instr_fetches().count(),
                "bs:{}",
                v.name
            );
            assert_eq!(
                sig.instr_fetches + sig.data_accesses,
                run.trace.len() as u64,
                "bs:{}",
                v.name
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("bs").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn default_inputs_differ_in_footprint() {
        // Sanity: the workloads are genuinely different programs.
        use std::collections::HashSet;
        let lens: HashSet<usize> = suite()
            .iter()
            .map(|b| execute(&b.program, &b.default_input).unwrap().trace.len())
            .collect();
        assert!(
            lens.len() >= 10,
            "benchmarks should have distinct trace lengths"
        );
    }
}
