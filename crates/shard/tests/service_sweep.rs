//! End-to-end guarantees of the multi-sweep service daemon, driven
//! through the real `mbcr` binary:
//!
//! * two overlapping sweeps submitted **concurrently** to one daemon
//!   produce per-sweep manifests and Table 2 CSVs byte-identical to
//!   sequential single-process runs of the same specs against one store,
//!   with every digest-shared stage executed exactly once (the second
//!   sweep's manifest reports it `skipped` — truthful counts on both
//!   sides);
//! * a daemon killed with SIGKILL mid-campaign resumes its whole queue
//!   on restart: journaled job records replay with their original
//!   statuses, the interrupted campaign adopts its chunk log, and every
//!   artifact matches the clean reference byte-for-byte — the manifests
//!   differing only in `campaign_resumed`;
//! * a worker sent SIGTERM drains gracefully: it checkpoints and flushes
//!   the in-flight campaign chunk, hands its leases back, and exits 0,
//!   while the surviving fleet adopts the campaign and the outputs stay
//!   byte-identical to a single-process run.

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const MBCR: &str = env!("CARGO_BIN_EXE_mbcr");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbcr-service-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_ok(args: &[&str]) -> String {
    let output = Command::new(MBCR).args(args).output().expect("spawn mbcr");
    assert!(
        output.status.success(),
        "mbcr {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Every file under a directory, relative path → bytes, sorted. `*.tmpN`
/// strays a `kill -9`'d writer left mid-`write_atomic` are skipped — the
/// store contract says scans ignore them; they are not artifacts.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir").flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, root, out);
            } else if path
                .extension()
                .is_some_and(|e| e.to_string_lossy().starts_with("tmp"))
            {
                continue;
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_dirs_identical(a: &Path, b: &Path, what: &str) {
    let snap_a = snapshot(a);
    let snap_b = snapshot(b);
    let names = |snap: &[(String, Vec<u8>)]| -> Vec<String> {
        snap.iter().map(|(n, _)| n.clone()).collect()
    };
    assert_eq!(names(&snap_a), names(&snap_b), "{what}: file sets differ");
    for ((name_a, bytes_a), (_, bytes_b)) in snap_a.iter().zip(&snap_b) {
        assert_eq!(
            bytes_a,
            bytes_b,
            "{what}: {name_a} differs between {} and {}",
            a.display(),
            b.display()
        );
    }
}

/// Strips the `campaign_resumed` lines a resumed/adopted campaign is
/// allowed (and required) to differ in.
fn normalize_manifest(text: &str) -> String {
    text.lines()
        .filter(|l| !l.contains("\"campaign_resumed\""))
        .collect::<Vec<_>>()
        .join("\n")
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(out: &Path) -> Self {
        let mut child = Command::new(MBCR)
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(["--out", &out.display().to_string()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("read daemon stdout");
            if let Some(addr) = line.strip_prefix("service listening on ") {
                break addr.to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});
        Self { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker(addr: &str) -> Child {
    Command::new(MBCR)
        .args(["worker", "--connect", addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

fn submit(addr: &str, args: &[&str]) -> String {
    let mut all = vec!["submit", "--connect", addr];
    all.extend(args);
    let stdout = run_ok(&all);
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("submitted "))
        .expect("submit prints the sweep id")
        .trim()
        .to_string()
}

/// Blocks until every sweep on the daemon is terminal.
fn follow_until_done(addr: &str) {
    run_ok(&["report", "--connect", addr, "--follow"]);
}

/// Total bytes of campaign chunk logs currently in a store.
fn slog_bytes(out: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(out.join("stages")) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".samples.slog"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// Sequential single-process reference: runs each spec with `mbcr sweep`
/// against one store, capturing (manifest, table2) after each — exactly
/// what the daemon's per-sweep scopes must reproduce byte-for-byte.
fn sequential_reference(store: &Path, specs: &[Vec<String>]) -> Vec<(String, String)> {
    let mut captured = Vec::new();
    for spec in specs {
        let mut args: Vec<&str> = vec!["sweep", "--out"];
        let out = store.display().to_string();
        args.push(&out);
        args.extend(spec.iter().map(String::as_str));
        run_ok(&args);
        captured.push((
            fs::read_to_string(store.join("manifest.json")).expect("manifest"),
            fs::read_to_string(store.join("table2.csv")).expect("table2"),
        ));
    }
    captured
}

/// The sweep-spec arguments of the two overlapping campaigns used by the
/// dedup test: same benchmark and seed 11 everywhere (whole pipelines
/// shared), beta adding seed 12 (sharing only the seed-free pub/trace
/// stages with alpha).
fn overlap_specs(quick: bool) -> Vec<Vec<String>> {
    let (alpha_seeds, beta_seeds) = ("11", "11,12");
    let cap = if quick { "600" } else { "60000" };
    let make = |name: &str, seeds: &str| -> Vec<String> {
        [
            "--name",
            name,
            "--benchmarks",
            "bs",
            "--seeds",
            seeds,
            "--analyses",
            "pub_tac",
            "--max-campaign-runs",
            cap,
            "--checkpoint-interval",
            "200",
        ]
        .into_iter()
        .map(str::to_string)
        .collect()
    };
    vec![make("alpha", alpha_seeds), make("beta", beta_seeds)]
}

#[test]
fn concurrent_overlapping_sweeps_dedup_and_match_sequential_runs_byte_for_byte() {
    let reference = tmp_dir("dedup-ref");
    let specs = overlap_specs(true);
    let captured = sequential_reference(&reference, &specs);

    let out = tmp_dir("dedup-daemon");
    let daemon = Daemon::spawn(&out);
    // Submit both before any worker exists: when the fleet comes up, both
    // sweeps are active concurrently and the scheduler interleaves them.
    let spec_refs: Vec<Vec<&str>> = specs
        .iter()
        .map(|s| s.iter().map(String::as_str).collect())
        .collect();
    let id_alpha = submit(&daemon.addr, &spec_refs[0]);
    let id_beta = submit(&daemon.addr, &spec_refs[1]);
    assert_ne!(id_alpha, id_beta);
    let mut workers: Vec<Child> = (0..2).map(|_| spawn_worker(&daemon.addr)).collect();
    follow_until_done(&daemon.addr);
    for w in &mut workers {
        let _ = w.kill();
        let _ = w.wait();
    }

    // Per-sweep manifests and tables: byte-identical to the sequential
    // single-process runs.
    for (id, (ref_manifest, ref_table)) in [&id_alpha, &id_beta].iter().zip(&captured) {
        let scope = out.join("sweeps").join(id);
        assert_eq!(
            &fs::read_to_string(scope.join("manifest.json")).expect("manifest"),
            ref_manifest,
            "{id} manifest must match its sequential reference"
        );
        assert_eq!(
            &fs::read_to_string(scope.join("table2.csv")).expect("table2"),
            ref_table,
            "{id} table2 must match its sequential reference"
        );
    }
    // Shared content: the same artifact universe, byte for byte (this is
    // also what proves shared stages executed once — a re-execution would
    // have been recorded as `executed` in beta's manifest, which already
    // matched the sequential reference above).
    assert_dirs_identical(&reference.join("jobs"), &out.join("jobs"), "jobs/");
    assert_dirs_identical(&reference.join("stages"), &out.join("stages"), "stages/");

    // Truthful counts, stated explicitly: alpha executed its pipeline,
    // beta skipped every stage it shares with alpha (all of seed 11) and
    // executed only its own seed-12 work.
    let counts = |manifest: &str| {
        let doc = mbcr_json::parse(manifest).expect("manifest parses");
        let counts = doc.get("counts").expect("counts").clone();
        (
            counts
                .get("executed")
                .and_then(mbcr_json::Json::as_u64)
                .unwrap(),
            counts
                .get("skipped")
                .and_then(mbcr_json::Json::as_u64)
                .unwrap(),
        )
    };
    let (alpha_executed, alpha_skipped) = counts(&captured[0].0);
    let (beta_executed, beta_skipped) = counts(&captured[1].0);
    assert!(alpha_executed > 0 && alpha_skipped == 0);
    assert!(
        beta_skipped >= alpha_executed,
        "beta must skip at least alpha's whole shared pipeline"
    );
    assert!(beta_executed > 0, "beta still executes its seed-12 stages");

    let _ = fs::remove_dir_all(&reference);
    let _ = fs::remove_dir_all(&out);
}

/// One kill attempt for the daemon-restart test. Returns the maximum
/// `campaign_resumed` found across both sweeps' manifests (`0` when the
/// SIGKILL missed every in-flight campaign — the caller retries).
fn kill_daemon_mid_campaign(out: &Path, specs: &[Vec<String>]) -> u64 {
    let spec_refs: Vec<Vec<&str>> = specs
        .iter()
        .map(|s| s.iter().map(String::as_str).collect())
        .collect();
    let ids: Vec<String>;
    {
        let daemon = Daemon::spawn(out);
        ids = spec_refs.iter().map(|s| submit(&daemon.addr, s)).collect();
        let mut workers: Vec<Child> = (0..2).map(|_| spawn_worker(&daemon.addr)).collect();
        // Let the campaigns stream well past the convergence prefix, then
        // SIGKILL the daemon mid-flight.
        let deadline = Instant::now() + Duration::from_secs(300);
        while slog_bytes(out) < 8 * 1024 {
            assert!(Instant::now() < deadline, "campaign logs never grew");
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(daemon); // SIGKILL (Drop uses Child::kill)
        for w in &mut workers {
            let _ = w.kill();
            let _ = w.wait();
        }
    }
    // Restart over the same store: the queue and record journals must
    // bring both sweeps back, mid-campaign work adopted from chunk logs.
    let daemon = Daemon::spawn(out);
    let mut workers: Vec<Child> = (0..2).map(|_| spawn_worker(&daemon.addr)).collect();
    follow_until_done(&daemon.addr);
    let status = run_ok(&["status", "--connect", &daemon.addr]);
    for w in &mut workers {
        let _ = w.kill();
        let _ = w.wait();
    }
    for id in &ids {
        assert!(
            status.contains(id.as_str()),
            "restarted daemon must still know sweep {id}:\n{status}"
        );
    }
    ids.iter()
        .map(|id| {
            let manifest = fs::read_to_string(out.join("sweeps").join(id).join("manifest.json"))
                .expect("manifest after restart");
            let doc = mbcr_json::parse(&manifest).expect("manifest parses");
            doc.get("jobs")
                .and_then(mbcr_json::Json::as_array)
                .map(|jobs| {
                    jobs.iter()
                        .filter_map(|j| j.get("summary"))
                        .filter_map(|s| s.get("campaign_resumed"))
                        .filter_map(mbcr_json::Json::as_u64)
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

#[test]
fn sigkilled_daemon_resumes_its_whole_queue_byte_identically() {
    let specs = overlap_specs(false); // ~21k-run campaigns: room to interrupt
    let reference = tmp_dir("daemon-kill-ref");
    let captured = sequential_reference(&reference, &specs);

    let mut resumed = 0;
    for attempt in 0..4 {
        let out = tmp_dir(&format!("daemon-kill-{attempt}"));
        resumed = kill_daemon_mid_campaign(&out, &specs);
        if resumed > 0 {
            // Shared content identical to the clean sequential store...
            assert_dirs_identical(&reference.join("jobs"), &out.join("jobs"), "jobs/");
            assert_dirs_identical(&reference.join("stages"), &out.join("stages"), "stages/");
            // ...and the per-sweep manifests/tables differ from the clean
            // references only in the resumed-run counts.
            let ids = ["s000-alpha", "s001-beta"];
            for (id, (ref_manifest, ref_table)) in ids.iter().zip(&captured) {
                let scope = out.join("sweeps").join(id);
                let manifest = fs::read_to_string(scope.join("manifest.json")).expect("manifest");
                assert_eq!(
                    normalize_manifest(&manifest),
                    normalize_manifest(ref_manifest),
                    "{id}: manifests must agree on everything but campaign_resumed"
                );
                assert_eq!(
                    &fs::read_to_string(scope.join("table2.csv")).expect("table2"),
                    ref_table,
                    "{id}: table2 must match the clean reference"
                );
            }
            let _ = fs::remove_dir_all(&out);
            break;
        }
        eprintln!("attempt {attempt}: kill missed every in-flight campaign; retrying");
        let _ = fs::remove_dir_all(&out);
    }
    assert!(
        resumed > 0,
        "no attempt interrupted a campaign mid-flight; the queue-resume \
         adoption path was never exercised"
    );
    let _ = fs::remove_dir_all(&reference);
}

/// One drain attempt: coord + two workers, SIGTERM one worker once the
/// campaign logs have grown, assert it exits 0 (graceful drain), let the
/// survivor finish. Returns the manifest's max resumed-run count (`0`
/// when the drain missed every in-flight campaign).
#[cfg(unix)]
fn drain_one_worker_mid_campaign(out: &Path, spec_args: &[&str]) -> u64 {
    let mut coordinator = Command::new(MBCR)
        .arg("coord")
        .args(spec_args)
        .args(["--out", &out.display().to_string()])
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");
    let stdout = coordinator.stdout.take().expect("coordinator stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("coordinator exited before announcing its address")
            .expect("read coordinator stdout");
        if let Some(addr) = line.strip_prefix("coordinator listening on ") {
            break addr.to_string();
        }
    };
    std::thread::spawn(move || for _ in lines {});
    let mut victim = spawn_worker(&addr);
    let mut survivor = spawn_worker(&addr);

    let deadline = Instant::now() + Duration::from_secs(300);
    while slog_bytes(out) < 8 * 1024 {
        assert!(Instant::now() < deadline, "campaign logs never grew");
        if let Ok(Some(status)) = coordinator.try_wait() {
            panic!("coordinator exited early with {status}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // SIGTERM, not SIGKILL: the worker must checkpoint, flush, send its
    // Drain frame, and exit zero.
    let term = Command::new("kill")
        .arg(victim.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill(1) failed");
    let drained = victim.wait().expect("reap the drained worker");
    assert!(
        drained.success(),
        "a SIGTERM'd worker must drain gracefully and exit 0, got {drained}"
    );

    let status = coordinator.wait().expect("wait for the coordinator");
    let _ = survivor.kill();
    let _ = survivor.wait();
    assert!(
        status.success(),
        "the sweep must complete despite the drained worker"
    );

    let manifest = fs::read_to_string(out.join("manifest.json")).expect("manifest");
    let doc = mbcr_json::parse(&manifest).expect("manifest parses");
    let jobs = doc.get("jobs").and_then(mbcr_json::Json::as_array).unwrap();
    jobs.iter()
        .filter_map(|j| j.get("summary"))
        .filter_map(|s| s.get("campaign_resumed"))
        .filter_map(mbcr_json::Json::as_u64)
        .max()
        .unwrap_or(0)
}

#[cfg(unix)]
#[test]
fn sigtermed_worker_drains_gracefully_and_the_fleet_adopts_its_campaign() {
    let spec_args = [
        "--benchmarks",
        "bs",
        "--seeds",
        "7,8",
        "--analyses",
        "pub_tac",
        "--max-campaign-runs",
        "60000",
        "--checkpoint-interval",
        "500",
    ];
    let reference = tmp_dir("drain-ref");
    let mut single: Vec<&str> = vec!["sweep"];
    single.extend(spec_args);
    let reference_out = reference.display().to_string();
    single.extend(["--out", &reference_out]);
    run_ok(&single);
    let ref_manifest = fs::read_to_string(reference.join("manifest.json")).expect("manifest");

    let mut resumed = 0;
    for attempt in 0..4 {
        let out = tmp_dir(&format!("drain-{attempt}"));
        resumed = drain_one_worker_mid_campaign(&out, &spec_args);
        if resumed > 0 {
            let manifest = fs::read_to_string(out.join("manifest.json")).expect("manifest");
            assert_eq!(
                normalize_manifest(&manifest),
                normalize_manifest(&ref_manifest),
                "manifests must agree on everything but campaign_resumed"
            );
            assert_dirs_identical(&reference.join("jobs"), &out.join("jobs"), "jobs/");
            assert_dirs_identical(&reference.join("stages"), &out.join("stages"), "stages/");
            assert_eq!(
                fs::read_to_string(out.join("table2.csv")).expect("table2"),
                fs::read_to_string(reference.join("table2.csv")).expect("table2"),
            );
            let _ = fs::remove_dir_all(&out);
            break;
        }
        eprintln!("attempt {attempt}: drain missed every in-flight campaign; retrying");
        let _ = fs::remove_dir_all(&out);
    }
    assert!(
        resumed > 0,
        "no attempt drained a worker mid-campaign; the graceful-drain \
         adoption path was never exercised"
    );
    let _ = fs::remove_dir_all(&reference);
}
