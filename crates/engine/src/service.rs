//! The multi-sweep service layer: a [`SweepRegistry`] owns N concurrent
//! sweeps against one artifact store and one worker fleet.
//!
//! This dissolves the one-coordinator-one-sweep assumption: where
//! [`crate::run_sweep`] (and the shard coordinator before this layer)
//! was born holding exactly one [`SweepPlan`] and died when it drained,
//! the registry accepts a *stream* of sweep submissions, schedules their
//! jobs fair-share across whatever claims work, and finalizes each sweep
//! into its own run scope ([`crate::ArtifactStore::run_scope`]) as it
//! drains — manifest and Table 2 byte-identical to a single-process run
//! of the same spec against the same store.
//!
//! Three mechanisms carry the design:
//!
//! * **Fair-share claiming** — [`SweepRegistry::claim`] round-robins
//!   across active sweeps, so one huge campaign cannot starve a small
//!   sweep submitted behind it. Workers stay sweep-agnostic: a claim is
//!   just (sweep id, job index, plan).
//! * **Cross-sweep stage dedup** — stage digests are content addresses,
//!   so when sweep B plans a job whose digest sweep A is already
//!   executing, B's job is parked ([`crate::JobScheduler::hold`]) until
//!   A's completes, then released to cache-probe the shared store: the
//!   stage executes once, both manifests reference it, and B's record
//!   says `skipped` — exactly what a sequential A-then-B run of the two
//!   specs against one store would produce.
//! * **Queue persistence** — every submission is durable before it is
//!   acknowledged (`queue/<id>.json`), and every terminal job record is
//!   journaled (`sweeps/<id>/records.jsonl`) as it lands. A `kill -9`'d
//!   daemon therefore resumes its *whole* queue: completed jobs replay
//!   with their original statuses (a pre-kill `executed` stays
//!   `executed`), in-flight campaigns resume from their chunk logs, and
//!   the final artifacts are byte-identical to an uninterrupted run —
//!   the only manifest delta a truthful `campaign_resumed` count.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::sync::Arc;
use std::time::Instant;

use mbcr_json::{Json, Serialize};

use crate::store::write_atomic;
use crate::{
    finalize_sweep, AnalysisKnobs, ArtifactStore, CampaignProgress, EngineError, JobRecord,
    JobScheduler, JobSummary, Registry, RunOptions, SampleLog, StageKind, SweepOutcome, SweepPlan,
    SweepSpec,
};

/// Where one submitted sweep is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepState {
    /// Accepted and planned; no job handed out yet.
    Queued,
    /// At least one job claimed.
    Running,
    /// Every job terminal; manifest and Table 2 written.
    Done,
    /// Cancelled by a client; never finalized.
    Canceled,
}

impl SweepState {
    /// Stable spelling for queue entries and status reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SweepState::Queued => "queued",
            SweepState::Running => "running",
            SweepState::Done => "done",
            SweepState::Canceled => "canceled",
        }
    }

    /// Inverse of [`SweepState::name`].
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "queued" => Some(SweepState::Queued),
            "running" => Some(SweepState::Running),
            "done" => Some(SweepState::Done),
            "canceled" => Some(SweepState::Canceled),
            _ => None,
        }
    }

    /// Whether the sweep can make no further progress.
    #[must_use]
    pub fn terminal(self) -> bool {
        matches!(self, SweepState::Done | SweepState::Canceled)
    }
}

/// Per-submission execution options.
#[derive(Debug, Clone, Copy)]
pub struct SubmitOptions {
    /// Re-execute jobs even when cached artifacts exist.
    pub force: bool,
    /// Checkpoint-interval override for this sweep's campaigns.
    pub checkpoint_interval: Option<usize>,
    /// Campaign layouts-per-pass override for this sweep (digest-neutral).
    pub batch_width: Option<usize>,
    /// Persist the submission (queue entry + record journal) and
    /// finalize into `sweeps/<id>/`. `false` is the compatibility mode
    /// for the one-shot `coord` / `sweep --shards` paths: the sweep is
    /// ephemeral (dies with the process, resumes from artifact caching
    /// alone) and finalizes at the store root, exactly where a
    /// single-process sweep writes its manifest.
    pub persist: bool,
    /// Fair-share weight (stride scheduling): a priority-3 sweep claims
    /// three jobs for every one a priority-1 sweep claims while both
    /// have ready work. `0` is normalized to `1`.
    pub priority: u32,
    /// Cap on this sweep's concurrently leased jobs (`None` = no cap).
    pub max_concurrent: Option<usize>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            force: false,
            checkpoint_interval: None,
            batch_width: None,
            persist: false,
            priority: 1,
            max_concurrent: None,
        }
    }
}

/// One fair-share scheduling decision: which job of which sweep a worker
/// should run, plus everything the (sweep-agnostic) executor needs.
#[derive(Debug, Clone)]
pub struct ServiceClaim {
    /// The owning sweep's id.
    pub sweep: String,
    /// Node index within that sweep's plan.
    pub job: usize,
    /// The sweep's plan (keys, configs, graph).
    pub plan: Arc<SweepPlan>,
    /// Whether the sweep runs with `--force`.
    pub force: bool,
    /// Whether the sweep journals its records (drivers pre-journal
    /// outside their lock exactly when this is set).
    pub persist: bool,
    /// The sweep's analysis knobs (what a remote worker rebuilds the
    /// job's config from).
    pub knobs: AnalysisKnobs,
}

/// A summary row of one sweep, for status reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepStatus {
    /// Sweep id (unique per submission, stable across daemon restarts).
    pub id: String,
    /// The spec's campaign name.
    pub name: String,
    /// Life-cycle state.
    pub state: SweepState,
    /// Jobs in the plan.
    pub total: usize,
    /// Jobs terminal so far.
    pub done: usize,
    /// Of those: executed here.
    pub executed: usize,
    /// Of those: satisfied from the store.
    pub skipped: usize,
    /// Of those: failed.
    pub failed: usize,
}

/// A full progress snapshot of one sweep: per-job statuses (what the
/// status table renders) plus per-campaign chunk-log progress — the
/// payload a `Follow` stream ships to `mbcr report --follow`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSnapshot {
    /// Sweep id.
    pub id: String,
    /// The spec's campaign name.
    pub name: String,
    /// Life-cycle state.
    pub state: SweepState,
    /// Per-job `(label, status, campaign_resumed)` rows, completed jobs
    /// only, in plan order.
    pub jobs: Vec<(String, String, u64)>,
    /// Jobs in the plan.
    pub total: usize,
    /// Progress of this sweep's streamed campaigns.
    pub campaigns: Vec<CampaignProgress>,
}

/// Scheduler-level telemetry of the whole registry — what an
/// autoscaler or load balancer polls (`GET /v1/metrics` on the gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryMetrics {
    /// Claimable jobs across all active sweeps (quota caps not applied).
    pub ready: usize,
    /// Jobs currently leased to workers across all active sweeps.
    pub leased: usize,
    /// Non-terminal sweeps.
    pub active: usize,
    /// Jobs ever parked behind another sweep's in-flight stage digest —
    /// each is an execution the cross-sweep dedup avoided.
    pub dedup_parked: u64,
    /// One row per sweep, in submission order.
    pub sweeps: Vec<SweepMetrics>,
}

/// Per-sweep scheduling telemetry (one [`RegistryMetrics`] row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepMetrics {
    /// Sweep id.
    pub id: String,
    /// Life-cycle state.
    pub state: SweepState,
    /// Fair-share weight.
    pub priority: u32,
    /// Concurrency cap, if any.
    pub max_concurrent: Option<usize>,
    /// Jobs claimed from this sweep so far (fairness counter).
    pub claims: u64,
    /// Jobs currently claimable.
    pub ready: usize,
    /// Jobs currently leased.
    pub leased: usize,
    /// Jobs terminal so far.
    pub done: usize,
    /// Jobs in the plan.
    pub total: usize,
    /// Of the terminal jobs: satisfied from the store (dedup hits).
    pub skipped: usize,
}

/// `(executed, skipped, failed)` counts out of a manifest.
type Counts = (usize, usize, usize);

/// `(label, status, campaign_resumed)` rows out of a manifest.
type JobRows = Vec<(String, String, u64)>;

struct Entry {
    id: String,
    seq: u64,
    spec: SweepSpec,
    opts: SubmitOptions,
    state: SweepState,
    plan: Option<Arc<SweepPlan>>,
    sched: Option<JobScheduler>,
    records: Vec<Option<JobRecord>>,
    summaries: Vec<Option<JobSummary>>,
    outcome: Option<SweepOutcome>,
    started: Instant,
    /// Stride-scheduling virtual time: the active sweep with the lowest
    /// pass claims next; each claim advances it by `STRIDE_ONE/priority`.
    pass: u64,
    /// Jobs claimed from this sweep so far (fairness telemetry).
    claims: u64,
}

impl Entry {
    fn active(&self) -> bool {
        !self.state.terminal()
    }

    /// The stride one claim advances this sweep's pass by.
    fn stride(&self) -> u64 {
        STRIDE_ONE / u64::from(self.opts.priority.max(1))
    }
}

/// Schema tag of queue entries and record journals.
const QUEUE_SCHEMA: &str = "mbcr-queue/1";

/// Stride-scheduling quantum: a priority-`p` sweep's pass advances by
/// `STRIDE_ONE / p` per claim, so relative claim rates follow priority
/// ratios. Large enough that integer division keeps distinct strides
/// for any plausible priority.
const STRIDE_ONE: u64 = 1 << 20;

/// The multi-sweep scheduling and persistence layer (see the module
/// docs). One registry owns one store; callers drive it under their own
/// lock — like [`crate::JobScheduler`] it is deliberately thread-free
/// state, so the in-process and TCP-serving drivers share one rule set.
pub struct SweepRegistry {
    store: ArtifactStore,
    /// Benchmark registry sweeps were planned against — finalization
    /// resolves the manifest's path-coverage block against it.
    benchmarks: Registry,
    entries: Vec<Entry>,
    /// Stage digest → the latest job registered for it. A later sweep
    /// sharing the digest parks behind this job while it is pending and
    /// cache-probes the shared store once it completes.
    owners: HashMap<u64, (usize, usize)>,
    /// Owner job → the parked `(entry, job)`s released when it lands.
    waiters: HashMap<(usize, usize), Vec<(usize, usize)>>,
    next_seq: u64,
    revision: u64,
    /// Jobs ever parked behind another in-flight digest (dedup telemetry).
    dedup_parked: u64,
}

impl SweepRegistry {
    /// Opens the registry over `store`, resuming any persisted queue:
    /// every non-terminal queue entry is re-planned, its record journal
    /// replayed (original statuses preserved), its cross-sweep holds
    /// re-derived, and — when the journal already covers every job (the
    /// daemon died between the last record and the manifest write) — the
    /// sweep finalized on the spot.
    ///
    /// # Errors
    ///
    /// Store I/O and plan-expansion failures. A malformed queue entry or
    /// journal line is skipped, not fatal: the jobs it described simply
    /// re-execute (or cache-probe) like any other cold work.
    pub fn open(store: &ArtifactStore, registry: &Registry) -> Result<Self, EngineError> {
        let mut service = Self {
            store: store.clone(),
            benchmarks: registry.clone(),
            entries: Vec::new(),
            owners: HashMap::new(),
            waiters: HashMap::new(),
            next_seq: 0,
            revision: 0,
            dedup_parked: 0,
        };
        let mut persisted: Vec<(u64, String, SweepState, SubmitOptions, SweepSpec)> = Vec::new();
        if let Ok(entries) = fs::read_dir(service.store.queue_dir()) {
            for entry in entries.flatten() {
                let Some(name) = entry.file_name().to_str().map(str::to_string) else {
                    continue;
                };
                if !name.ends_with(".json") {
                    continue;
                }
                let Ok(text) = fs::read_to_string(entry.path()) else {
                    continue;
                };
                let Ok(doc) = mbcr_json::parse(&text) else {
                    continue;
                };
                if doc.get("schema").and_then(Json::as_str) != Some(QUEUE_SCHEMA) {
                    continue;
                }
                let parsed = (|| {
                    let id = doc.get("id")?.as_str()?.to_string();
                    let seq = doc.get("seq")?.as_u64()?;
                    let state = SweepState::parse(doc.get("state")?.as_str()?)?;
                    let spec = SweepSpec::from_json(doc.get("spec")?).ok()?;
                    let opts = SubmitOptions {
                        force: doc.get("force")?.as_bool()?,
                        checkpoint_interval: match doc.get("checkpoint_interval") {
                            None | Some(Json::Null) => None,
                            Some(other) => Some(other.as_usize()?),
                        },
                        batch_width: doc.get("batch_width").and_then(Json::as_usize),
                        persist: true,
                        // Pre-gateway queue entries lack the scheduling
                        // knobs; default them instead of dropping the sweep.
                        priority: doc
                            .get("priority")
                            .and_then(Json::as_u64)
                            .map_or(1, |v| u32::try_from(v).unwrap_or(u32::MAX)),
                        max_concurrent: doc.get("max_concurrent").and_then(Json::as_usize),
                    };
                    Some((seq, id, state, opts, spec))
                })();
                if let Some(row) = parsed {
                    persisted.push(row);
                }
            }
        }
        persisted.sort_by_key(|(seq, ..)| *seq);
        for (seq, id, state, opts, spec) in persisted {
            service.next_seq = service.next_seq.max(seq + 1);
            if state.terminal() {
                service.entries.push(Entry {
                    id,
                    seq,
                    spec,
                    opts,
                    state,
                    plan: None,
                    sched: None,
                    records: Vec::new(),
                    summaries: Vec::new(),
                    outcome: None,
                    started: Instant::now(),
                    pass: 0,
                    claims: 0,
                });
                continue;
            }
            // Per-sweep resume failures must not brick the whole queue: a
            // spec that no longer plans (a benchmark renamed between
            // binaries, say) parks as canceled in memory — the queue file
            // keeps its state, so a fixed binary resumes it later — and
            // every other sweep comes back normally. Journal and finalize
            // hiccups likewise degrade to re-running (artifacts are
            // content-addressed; re-runs are wasted work, never wrong).
            match service.activate(id.clone(), seq, spec.clone(), opts, registry) {
                Ok(at) => {
                    if let Err(e) = service.replay_journal(at) {
                        eprintln!(
                            "service: replaying records of sweep {id} failed: {e}; \
                             unreplayed jobs will re-run"
                        );
                    }
                    if let Err(e) = service.finalize_if_drained(at) {
                        eprintln!("service: finalizing resumed sweep {id} failed: {e}");
                    }
                }
                Err(e) => {
                    eprintln!("service: sweep {id} no longer plans ({e}); parking it");
                    service.entries.push(Entry {
                        id,
                        seq,
                        spec,
                        opts,
                        state: SweepState::Canceled,
                        plan: None,
                        sched: None,
                        records: Vec::new(),
                        summaries: Vec::new(),
                        outcome: None,
                        started: Instant::now(),
                        pass: 0,
                        claims: 0,
                    });
                }
            }
        }
        Ok(service)
    }

    /// Plans a sweep, registers its cross-sweep holds, and appends the
    /// entry. Shared by [`SweepRegistry::submit`] and queue resume.
    fn activate(
        &mut self,
        id: String,
        seq: u64,
        spec: SweepSpec,
        opts: SubmitOptions,
        registry: &Registry,
    ) -> Result<usize, EngineError> {
        let run = RunOptions {
            threads: 0,
            force: opts.force,
            checkpoint_interval: opts.checkpoint_interval,
            batch_width: opts.batch_width,
            prescreen: false,
        };
        let plan = Arc::new(SweepPlan::new(&spec, registry, &run)?);
        let mut sched = JobScheduler::new(&plan.graph.deps);
        let at = self.entries.len();
        for (job, digest) in plan.graph.digests.iter().enumerate() {
            let Some(digest) = *digest else { continue };
            if let Some(&(oe, oj)) = self.owners.get(&digest) {
                // An owner in *this* plan (two named inputs resolving to
                // the same vector keep separate nodes with one digest) is
                // pending by construction — it cannot be indexed through
                // `entries` yet, this entry is not pushed until below.
                let pending = oe == at || self.pending_record(oe, oj);
                if pending {
                    // The digest is in flight elsewhere: park this job and
                    // chain ownership, so a third sweep parks behind *us*
                    // and the sequential A→B→C ordering is preserved.
                    sched.hold(job);
                    self.waiters.entry((oe, oj)).or_default().push((at, job));
                    self.dedup_parked += 1;
                }
            }
            self.owners.insert(digest, (at, job));
        }
        let n = plan.len();
        // A new sweep joins at the minimum active pass (the stride-
        // scheduling convention): it competes fairly from now on instead
        // of monopolizing claims to "catch up" on time before it existed.
        let pass = self
            .entries
            .iter()
            .filter(|e| e.active())
            .map(|e| e.pass)
            .min()
            .unwrap_or(0);
        self.entries.push(Entry {
            id,
            seq,
            spec,
            opts,
            state: SweepState::Queued,
            plan: Some(plan),
            sched: Some(sched),
            records: vec![None; n],
            summaries: vec![None; n],
            outcome: None,
            started: Instant::now(),
            pass,
            claims: 0,
        });
        self.revision += 1;
        Ok(at)
    }

    /// Whether entry `oe`'s job `oj` may still produce a record (the
    /// condition under which a same-digest job must park behind it).
    fn pending_record(&self, oe: usize, oj: usize) -> bool {
        let entry = &self.entries[oe];
        entry.active() && entry.records.get(oj).is_some_and(Option::is_none)
    }

    /// Accepts a sweep: plans it, persists the queue entry (when
    /// `opts.persist`), and returns the sweep id. The submission is
    /// durable before this returns — a daemon killed right after resumes
    /// it.
    ///
    /// # Errors
    ///
    /// Plan-expansion failures (unknown benchmarks/inputs, bad
    /// geometries) and store I/O.
    pub fn submit(
        &mut self,
        spec: SweepSpec,
        opts: SubmitOptions,
        registry: &Registry,
    ) -> Result<String, EngineError> {
        let seq = self.next_seq;
        let id = format!("s{seq:03}-{}", slug(&spec.name));
        let at = self.activate(id.clone(), seq, spec, opts, registry)?;
        self.next_seq = seq + 1;
        self.persist_entry(at)?;
        // A degenerate plan with no jobs is born drained.
        self.finalize_if_drained(at)?;
        Ok(id)
    }

    /// Leases the next job to `worker`, weighted-fair across active
    /// sweeps (stride scheduling over [`SubmitOptions::priority`], so no
    /// submission starves and a priority-3 sweep claims three jobs per
    /// priority-1 job while both have ready work), respecting each
    /// sweep's [`SubmitOptions::max_concurrent`] quota. `None` when
    /// nothing is ready anywhere (all blocked, parked, leased, quota-
    /// capped, or finished).
    pub fn claim(&mut self, worker: u64) -> Option<ServiceClaim> {
        self.claim_with(worker, None)
    }

    /// [`SweepRegistry::claim`] with cache-aware placement: when
    /// `resident` is given, the chosen sweep hands out the ready job with
    /// the most upstream stage artifacts already resident on the claiming
    /// worker (`resident(digest)`), ties oldest-first — so a worker that
    /// just computed `pub` is preferred for the dependent `trace` instead
    /// of re-shipping the artifact to a cold peer. Placement only ever
    /// reorders *within* the fair-share winner; priority, quota, and
    /// dedup semantics are identical to a plain claim, and artifact bytes
    /// are placement-independent by construction.
    pub fn claim_with(
        &mut self,
        worker: u64,
        resident: Option<&dyn Fn(u64) -> bool>,
    ) -> Option<ServiceClaim> {
        // Stride scheduling: of the sweeps with claimable work and quota
        // headroom, the lowest virtual time wins (ties oldest-first).
        let at = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.active())
            .filter(|(_, e)| {
                e.sched.as_ref().is_some_and(|s| {
                    s.ready_count() > 0
                        && e.opts
                            .max_concurrent
                            .is_none_or(|cap| s.leased_count() < cap)
                })
            })
            .min_by_key(|(_, e)| (e.pass, e.seq))
            .map(|(at, _)| at)?;
        let plan = Arc::clone(
            self.entries[at]
                .plan
                .as_ref()
                .expect("active entries carry a plan"),
        );
        let sched = self.entries[at]
            .sched
            .as_mut()
            .expect("active entries carry a scheduler");
        let job = match resident {
            Some(resident) => sched.claim_preferred(worker, |job| {
                plan.graph.deps[job]
                    .iter()
                    .filter(|&&dep| plan.graph.digests[dep].is_some_and(resident))
                    .count() as u64
            }),
            None => sched.claim(worker),
        }
        .expect("a sweep with ready_count > 0 has a claimable job");
        let stride = self.entries[at].stride();
        self.entries[at].pass = self.entries[at].pass.saturating_add(stride);
        self.entries[at].claims += 1;
        if self.entries[at].state == SweepState::Queued {
            self.entries[at].state = SweepState::Running;
            self.revision += 1;
            let _ = self.persist_entry(at);
        }
        let entry = &self.entries[at];
        Some(ServiceClaim {
            sweep: entry.id.clone(),
            job,
            plan,
            force: entry.opts.force,
            persist: entry.opts.persist,
            knobs: AnalysisKnobs::from_spec(
                &entry.spec,
                entry.opts.checkpoint_interval,
                entry.opts.batch_width,
            ),
        })
    }

    /// Scheduler-level telemetry: queue depth, lease counts, per-sweep
    /// fairness and dedup counters (see [`RegistryMetrics`]). I/O-free —
    /// safe to call under a driver's state lock.
    #[must_use]
    pub fn metrics(&self) -> RegistryMetrics {
        let mut metrics = RegistryMetrics {
            ready: 0,
            leased: 0,
            active: 0,
            dedup_parked: self.dedup_parked,
            sweeps: Vec::with_capacity(self.entries.len()),
        };
        for entry in &self.entries {
            let (ready, leased) = entry
                .sched
                .as_ref()
                .filter(|_| entry.active())
                .map_or((0, 0), |s| (s.ready_count(), s.leased_count()));
            metrics.ready += ready;
            metrics.leased += leased;
            metrics.active += usize::from(entry.active());
            let status = self.status_of(entry);
            metrics.sweeps.push(SweepMetrics {
                id: entry.id.clone(),
                state: entry.state,
                priority: entry.opts.priority.max(1),
                max_concurrent: entry.opts.max_concurrent,
                claims: entry.claims,
                ready,
                leased,
                done: status.done,
                total: status.total,
                skipped: status.skipped,
            });
        }
        metrics
    }

    /// Returns `worker`'s leases across every sweep to their ready
    /// queues (the worker died or drained), as `(sweep id, job)` pairs.
    pub fn requeue_worker(&mut self, worker: u64) -> Vec<(String, usize)> {
        let mut requeued = Vec::new();
        for entry in &mut self.entries {
            if let Some(sched) = entry.sched.as_mut() {
                for job in sched.requeue_worker(worker) {
                    requeued.push((entry.id.clone(), job));
                }
            }
        }
        requeued
    }

    /// Records a job's terminal state: journals it (persistent sweeps),
    /// completes it in the sweep's scheduler, releases any cross-sweep
    /// waiters parked on it, and finalizes the sweep when it drained.
    /// Duplicate records (a presumed-dead worker's late result) and
    /// records for terminal sweeps (a cancel race) are absorbed.
    ///
    /// Callers holding a contended lock around the registry should
    /// fsync the journal line *first* with [`SweepRegistry::
    /// journal_record`] (no lock needed) and then pass
    /// `journaled = true`, so the whole fleet never queues behind a
    /// per-record fsync.
    ///
    /// # Errors
    ///
    /// Store I/O during finalization. Journal-append failures are
    /// swallowed (the job still completes; a restart re-runs it — costly,
    /// never wrong).
    pub fn record(
        &mut self,
        sweep: &str,
        job: usize,
        record: JobRecord,
        journaled: bool,
    ) -> Result<(), EngineError> {
        let Some(at) = self.index_of(sweep) else {
            return Ok(()); // unknown sweep: a stale result, absorb
        };
        let fresh =
            self.entries[at].active() && matches!(self.entries[at].records.get(job), Some(None));
        if !fresh {
            // Terminal sweep, duplicate, or out-of-range: absorb. The
            // lease (if any) still releases so the scheduler can drain.
            if let Some(sched) = self.entries[at].sched.as_mut() {
                if job < sched.len() && !sched.is_blocked(job) {
                    sched.complete(job);
                }
            }
            return Ok(());
        }
        if !journaled && self.entries[at].opts.persist {
            if let Err(e) = Self::journal_record(&self.store, sweep, job, &record) {
                eprintln!(
                    "service: journaling job {job} of sweep {sweep} failed: {e} \
                     (a restart will re-run it)"
                );
            }
        }
        let entry = &mut self.entries[at];
        entry.summaries[job] = record.summary.clone();
        entry.records[job] = Some(record);
        entry
            .sched
            .as_mut()
            .expect("active entries carry a scheduler")
            .complete(job);
        self.revision += 1;
        if let Some(waiters) = self.waiters.remove(&(at, job)) {
            for (we, wj) in waiters {
                if let Some(sched) = self.entries[we].sched.as_mut() {
                    sched.release(wj);
                }
            }
        }
        self.finalize_if_drained(at)
    }

    /// Re-attempts finalization of any sweep that drained but whose
    /// manifest/table write failed (ENOSPC, transient store trouble) —
    /// [`SweepRegistry::record`] cannot retry on its own because the
    /// drained scheduler receives no further records. Drivers call this
    /// periodically; it is a no-op when nothing is stuck.
    ///
    /// # Errors
    ///
    /// The first finalization failure encountered (the remaining entries
    /// are still attempted).
    pub fn retry_finalize(&mut self) -> Result<(), EngineError> {
        let mut first_error = None;
        for at in 0..self.entries.len() {
            if let Err(e) = self.finalize_if_drained(at) {
                first_error = first_error.or(Some(e));
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Cancels a sweep: it stops claiming, its parked dependents across
    /// other sweeps are released (they re-probe the store themselves),
    /// and in-flight results for it are absorbed. Returns the resulting
    /// state (terminal sweeps cancel to whatever they already were).
    ///
    /// # Errors
    ///
    /// [`EngineError::Spec`] on an unknown sweep id.
    pub fn cancel(&mut self, sweep: &str) -> Result<SweepState, EngineError> {
        let Some(at) = self.index_of(sweep) else {
            return Err(EngineError::Spec(format!("unknown sweep '{sweep}'")));
        };
        if self.entries[at].state.terminal() {
            return Ok(self.entries[at].state);
        }
        self.entries[at].state = SweepState::Canceled;
        let held: Vec<(usize, usize)> = self
            .waiters
            .keys()
            .filter(|(oe, _)| *oe == at)
            .copied()
            .collect();
        for key in held {
            if let Some(waiters) = self.waiters.remove(&key) {
                for (we, wj) in waiters {
                    if let Some(sched) = self.entries[we].sched.as_mut() {
                        sched.release(wj);
                    }
                }
            }
        }
        self.revision += 1;
        self.persist_entry(at).map_err(EngineError::Io)?;
        Ok(SweepState::Canceled)
    }

    /// Dependency summaries of one job (what a combine node consumes).
    #[must_use]
    pub fn dep_summaries(&self, sweep: &str, job: usize) -> Vec<Option<JobSummary>> {
        let Some(at) = self.index_of(sweep) else {
            return Vec::new();
        };
        let entry = &self.entries[at];
        let Some(plan) = entry.plan.as_ref() else {
            return Vec::new();
        };
        plan.graph.deps[job]
            .iter()
            .map(|&dep| entry.summaries[dep].clone())
            .collect()
    }

    /// Whether `job` of `sweep` was never handed out (a result for it is
    /// a protocol violation). `None` for unknown sweeps or out-of-range
    /// jobs.
    #[must_use]
    pub fn result_plausible(&self, sweep: &str, job: usize) -> Option<bool> {
        let at = self.index_of(sweep)?;
        let entry = &self.entries[at];
        if entry.state.terminal() {
            // Terminal sweeps absorb anything addressed to them.
            return Some(true);
        }
        let plan = entry.plan.as_ref()?;
        if job >= plan.len() {
            return Some(false);
        }
        Some(!entry.sched.as_ref()?.is_blocked(job))
    }

    /// The plan of an active sweep (`None` once terminal or unknown).
    #[must_use]
    pub fn plan(&self, sweep: &str) -> Option<Arc<SweepPlan>> {
        self.entries[self.index_of(sweep)?].plan.clone()
    }

    /// Whether every submitted sweep is terminal.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.entries.iter().all(|e| e.state.terminal())
    }

    /// Monotone change counter: bumped on every submission, record and
    /// state transition. Pollers (the `Follow` stream) compare it to
    /// skip rebuilding record snapshots on no-change ticks; it does
    /// *not* cover campaign chunk-log growth, which streams into the
    /// store without touching the registry — poll
    /// [`campaign_progress_for`] for that.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether a sweep journals its records (`SubmitOptions::persist`).
    /// `false` for unknown ids.
    #[must_use]
    pub fn persistent(&self, sweep: &str) -> bool {
        self.index_of(sweep)
            .is_some_and(|at| self.entries[at].opts.persist)
    }

    /// The finalized outcome of a sweep, once it drained.
    #[must_use]
    pub fn outcome(&self, sweep: &str) -> Option<&SweepOutcome> {
        self.entries[self.index_of(sweep)?].outcome.as_ref()
    }

    /// Sweep ids in submission order.
    #[must_use]
    pub fn ids(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.id.clone()).collect()
    }

    /// One status row per sweep, in submission order.
    #[must_use]
    pub fn statuses(&self) -> Vec<SweepStatus> {
        self.entries.iter().map(|e| self.status_of(e)).collect()
    }

    fn status_of(&self, entry: &Entry) -> SweepStatus {
        let mut status = SweepStatus {
            id: entry.id.clone(),
            name: entry.spec.name.clone(),
            state: entry.state,
            total: entry.plan.as_ref().map_or(0, |p| p.len()),
            done: 0,
            executed: 0,
            skipped: 0,
            failed: 0,
        };
        for record in entry.records.iter().flatten() {
            status.done += 1;
            match record.status {
                crate::JobStatus::Executed => status.executed += 1,
                crate::JobStatus::Skipped => status.skipped += 1,
                crate::JobStatus::Failed => status.failed += 1,
            }
        }
        if entry.records.is_empty() && entry.state.terminal() {
            // Resumed-as-terminal entries keep no in-memory records; the
            // persisted manifest still has the truth.
            if let Some((jobs, counts)) = self.manifest_rows(entry) {
                status.total = jobs.len();
                status.done = jobs.len();
                status.executed = counts.0;
                status.skipped = counts.1;
                status.failed = counts.2;
            }
        }
        status
    }

    /// The progress snapshot of one sweep, or `None` for unknown ids.
    ///
    /// Deliberately I/O-free so drivers can call it under their state
    /// lock: `campaigns` comes back **empty** — fill it outside the lock
    /// from [`SweepRegistry::campaign_digests`] and the store's chunk
    /// logs (see [`campaign_progress_for`]). The one exception is a
    /// terminal sweep resumed without in-memory records, whose rows are
    /// read back from its persisted manifest (bounded, once per call).
    #[must_use]
    pub fn snapshot(&self, sweep: &str) -> Option<SweepSnapshot> {
        let entry = &self.entries[self.index_of(sweep)?];
        let mut snapshot = SweepSnapshot {
            id: entry.id.clone(),
            name: entry.spec.name.clone(),
            state: entry.state,
            jobs: Vec::new(),
            total: entry.plan.as_ref().map_or(0, |p| p.len()),
            campaigns: Vec::new(),
        };
        if entry.records.is_empty() && entry.state.terminal() {
            if let Some((jobs, _)) = self.manifest_rows(entry) {
                snapshot.total = jobs.len();
                snapshot.jobs = jobs;
            }
            return Some(snapshot);
        }
        for record in entry.records.iter().flatten() {
            snapshot.jobs.push((
                record.label.clone(),
                record.status.name().to_string(),
                record
                    .summary
                    .as_ref()
                    .and_then(|s| s.campaign_resumed)
                    .unwrap_or(0),
            ));
        }
        Some(snapshot)
    }

    /// The campaign-stage content digests of one sweep's plan — the
    /// addresses of its streamed chunk logs. Empty for unknown or
    /// plan-less (terminal-resumed) sweeps.
    #[must_use]
    pub fn campaign_digests(&self, sweep: &str) -> Vec<u64> {
        let Some(at) = self.index_of(sweep) else {
            return Vec::new();
        };
        let Some(plan) = self.entries[at].plan.as_ref() else {
            return Vec::new();
        };
        plan.graph
            .jobs
            .iter()
            .zip(&plan.graph.digests)
            .filter(|(job, _)| job.kind.stage() == Some(StageKind::Campaign))
            .filter_map(|(_, digest)| *digest)
            .collect()
    }

    /// Whether the registry knows this sweep id.
    #[must_use]
    pub fn contains(&self, sweep: &str) -> bool {
        self.index_of(sweep).is_some()
    }

    /// `(label, status, resumed)` rows and `(executed, skipped, failed)`
    /// counts out of a terminal sweep's persisted manifest.
    fn manifest_rows(&self, entry: &Entry) -> Option<(JobRows, Counts)> {
        let scope = self.store.run_scope(&entry.id).ok()?;
        let manifest = scope.load_manifest()?;
        let jobs = manifest.get("jobs")?.as_array()?;
        let rows = jobs
            .iter()
            .map(|j| {
                (
                    j.get("label")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    j.get("status")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    j.get("summary")
                        .and_then(|s| s.get("campaign_resumed"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                )
            })
            .collect();
        let count = |k: &str| {
            manifest
                .get("counts")
                .and_then(|c| c.get(k))
                .and_then(Json::as_u64)
                .map_or(0, |v| usize::try_from(v).unwrap_or(usize::MAX))
        };
        Some((rows, (count("executed"), count("skipped"), count("failed"))))
    }

    fn index_of(&self, sweep: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.id == sweep)
    }

    /// Finalizes a drained sweep: manifest + Table 2 into its run scope
    /// (persistent submissions) or the store root (ephemeral
    /// compatibility submissions), byte-identical to a single-process
    /// run's.
    fn finalize_if_drained(&mut self, at: usize) -> Result<(), EngineError> {
        let ready = {
            let entry = &self.entries[at];
            entry.active() && entry.sched.as_ref().is_some_and(JobScheduler::finished)
        };
        if !ready {
            return Ok(());
        }
        let (spec, records, persist, id, elapsed) = {
            let entry = &self.entries[at];
            (
                entry.spec.clone(),
                entry
                    .records
                    .iter()
                    .cloned()
                    .map(|r| r.expect("drained sweeps have a record per job"))
                    .collect::<Vec<_>>(),
                entry.opts.persist,
                entry.id.clone(),
                entry.started.elapsed(),
            )
        };
        let scope = if persist {
            self.store.run_scope(&id)?
        } else {
            self.store.clone()
        };
        let outcome = finalize_sweep(&spec, records, &self.benchmarks, &scope, elapsed)?;
        self.entries[at].outcome = Some(outcome);
        self.entries[at].state = SweepState::Done;
        self.revision += 1;
        if persist {
            self.persist_entry(at)?;
        }
        Ok(())
    }

    /// Writes (or rewrites) a sweep's durable queue entry.
    fn persist_entry(&self, at: usize) -> io::Result<()> {
        let entry = &self.entries[at];
        if !entry.opts.persist {
            return Ok(());
        }
        let doc = Json::Obj(vec![
            ("schema".to_string(), QUEUE_SCHEMA.into()),
            ("id".to_string(), entry.id.as_str().into()),
            ("seq".to_string(), Json::UInt(entry.seq)),
            ("state".to_string(), entry.state.name().into()),
            ("force".to_string(), Json::Bool(entry.opts.force)),
            (
                "checkpoint_interval".to_string(),
                Serialize::to_json(&entry.opts.checkpoint_interval.map(|v| v as u64)),
            ),
            (
                "batch_width".to_string(),
                Serialize::to_json(&entry.opts.batch_width.map(|v| v as u64)),
            ),
            (
                "priority".to_string(),
                Json::UInt(u64::from(entry.opts.priority.max(1))),
            ),
            (
                "max_concurrent".to_string(),
                Serialize::to_json(&entry.opts.max_concurrent.map(|v| v as u64)),
            ),
            ("spec".to_string(), entry.spec.to_json()),
        ]);
        let path = self.store.queue_dir().join(format!("{}.json", entry.id));
        write_atomic(&path, doc.to_pretty().as_bytes())
    }

    /// Appends one job record to a sweep's journal, fsync'd — the record
    /// is durable before the scheduler moves on. An associated function
    /// on purpose: it takes no registry state, so drivers run the fsync
    /// *outside* their registry lock and pass `journaled = true` to
    /// [`SweepRegistry::record`]. Concurrent appenders are safe — each
    /// line is one `O_APPEND` write, and replay dedups any duplicate
    /// line a record race produces.
    ///
    /// # Errors
    ///
    /// Filesystem failures (callers log and move on; an unjournaled job
    /// simply re-runs after a restart).
    pub fn journal_record(
        store: &ArtifactStore,
        sweep: &str,
        job: usize,
        record: &JobRecord,
    ) -> io::Result<()> {
        let scope = store.run_scope(sweep)?;
        let line = Json::Obj(vec![
            ("job".to_string(), Json::UInt(job as u64)),
            ("record".to_string(), Serialize::to_json(record)),
        ]);
        let mut text = line.to_compact();
        text.push('\n');
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(scope.records_path())?;
        file.write_all(text.as_bytes())?;
        file.sync_all()
    }

    /// Replays a resumed sweep's record journal: every whole, valid line
    /// restores its job's original record; a torn final line (the kill
    /// landed mid-append) or an out-of-order line is skipped — the job
    /// re-runs, which is safe because artifacts are content-addressed.
    fn replay_journal(&mut self, at: usize) -> Result<(), EngineError> {
        let scope = self.store.run_scope(&self.entries[at].id)?;
        let text = match fs::read_to_string(scope.records_path()) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(EngineError::Io(e)),
        };
        for line in text.lines() {
            let Ok(doc) = mbcr_json::parse(line) else {
                continue;
            };
            let Some((job, record)) = doc
                .get("job")
                .and_then(Json::as_usize)
                .zip(doc.get("record").and_then(JobRecord::from_json))
            else {
                continue;
            };
            let entry = &mut self.entries[at];
            if job >= entry.records.len() || entry.records[job].is_some() {
                continue;
            }
            let sched = entry.sched.as_mut().expect("resumed entries are active");
            if sched.is_blocked(job) {
                continue; // journal disagrees with the plan: re-run instead
            }
            entry.summaries[job] = record.summary.clone();
            entry.records[job] = Some(record);
            sched.complete(job);
            // Waiters cannot be parked on us yet during resume (later
            // sweeps activate after this replay), so no release pass.
        }
        self.revision += 1;
        Ok(())
    }
}

/// Reads the live progress of the chunk logs under `digests` — the
/// I/O half of a [`SweepRegistry::snapshot`], split out so drivers run
/// it *without* holding their registry lock (a paper-scale sweep has
/// hundreds of campaign logs; stalling every worker request behind
/// their metadata scans is exactly the lock-held store I/O the claim
/// path already avoids).
#[must_use]
pub fn campaign_progress_for(store: &ArtifactStore, digests: &[u64]) -> Vec<CampaignProgress> {
    digests
        .iter()
        .filter_map(|&digest| {
            SampleLog::at(store.stage_samples_path(digest))
                .meta()
                .map(|(collected, total)| CampaignProgress {
                    digest,
                    collected: usize::try_from(collected).unwrap_or(usize::MAX),
                    total,
                })
        })
        .collect()
}

/// A filesystem-safe slug of a campaign name for sweep ids.
fn slug(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .take(24)
        .collect();
    if cleaned.is_empty() {
        "sweep".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_combine, execute_stage, JobKind, JobStatus};

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("mbcr-service-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    fn quick_spec(name: &str, seeds: &[u64]) -> SweepSpec {
        SweepSpec {
            max_campaign_runs: Some(200),
            ..SweepSpec::new(name)
                .benchmarks(["bs"])
                .seeds(seeds.iter().copied())
                .analyses([crate::AnalysisKind::PubTac])
        }
    }

    /// Drives the registry to completion in-process, executing claims
    /// exactly like the shard coordinator's claim loop does.
    fn drain(service: &mut SweepRegistry, store: &ArtifactStore, registry: &Registry) {
        while let Some(claim) = service.claim(1) {
            let job = &claim.plan.graph.jobs[claim.job];
            let key = &claim.plan.keys[claim.job];
            if !claim.force {
                if let Some(summary) = claim.plan.cached_summary(claim.job, store) {
                    let record = JobRecord {
                        key: key.clone(),
                        label: job.label(),
                        status: JobStatus::Skipped,
                        error: None,
                        summary: Some(summary),
                    };
                    service
                        .record(&claim.sweep, claim.job, record, false)
                        .unwrap();
                    continue;
                }
            }
            let outcome = match &job.kind {
                JobKind::MultipathCombine => {
                    let deps = service.dep_summaries(&claim.sweep, claim.job);
                    execute_combine(job, key, &deps).and_then(|(summary, result)| {
                        store.write_job(key, &summary, result, None)?;
                        Ok(summary)
                    })
                }
                JobKind::Stage { .. } => {
                    let cfg = claim.knobs.config(&job.geometry, job.job_seed()).unwrap();
                    execute_stage(job, key, &cfg, registry, store, claim.force).and_then(|out| {
                        if let Some((result, sample)) = out.fit {
                            store.write_job(key, &out.summary, result, sample.as_deref())?;
                        }
                        Ok(out.summary)
                    })
                }
            };
            let record = match outcome {
                Ok(summary) => JobRecord {
                    key: key.clone(),
                    label: job.label(),
                    status: JobStatus::Executed,
                    error: None,
                    summary: Some(summary),
                },
                Err(e) => JobRecord {
                    key: key.clone(),
                    label: job.label(),
                    status: JobStatus::Failed,
                    error: Some(e.to_string()),
                    summary: None,
                },
            };
            service
                .record(&claim.sweep, claim.job, record, false)
                .unwrap();
        }
    }

    #[test]
    fn overlapping_sweeps_dedup_shared_stages_with_truthful_counts() {
        let store = tmp_store("dedup");
        let registry = Registry::malardalen();
        let mut service = SweepRegistry::open(&store, &registry).unwrap();
        let opts = SubmitOptions {
            persist: true,
            ..SubmitOptions::default()
        };
        // Same cell twice: every stage of b collides with a.
        let a = service
            .submit(quick_spec("alpha", &[7]), opts, &registry)
            .unwrap();
        let b = service
            .submit(quick_spec("beta", &[7]), opts, &registry)
            .unwrap();
        drain(&mut service, &store, &registry);
        assert!(service.finished());
        let statuses = service.statuses();
        let of = |id: &str| statuses.iter().find(|s| s.id == *id).unwrap();
        assert!(of(&a).executed > 0, "first sweep executes the work");
        assert_eq!(of(&a).failed, 0);
        assert_eq!(
            of(&b).executed,
            0,
            "second sweep executes nothing: every shared stage dedups"
        );
        assert_eq!(of(&b).skipped, of(&b).total);
        // Both manifests exist, in their own scopes, and agree on the
        // job keys (same content addresses).
        for id in [&a, &b] {
            let scope = store.run_scope(id).unwrap();
            assert!(scope.manifest_path().is_file(), "{id} manifest");
            assert!(scope.table2_path().is_file(), "{id} table2");
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn killed_registry_resumes_queue_and_preserves_statuses() {
        let store = tmp_store("resume");
        let registry = Registry::malardalen();
        let opts = SubmitOptions {
            persist: true,
            ..SubmitOptions::default()
        };
        let (a, b) = {
            let mut service = SweepRegistry::open(&store, &registry).unwrap();
            let a = service
                .submit(quick_spec("first", &[1]), opts, &registry)
                .unwrap();
            let b = service
                .submit(quick_spec("second", &[2]), opts, &registry)
                .unwrap();
            // Execute a strict prefix of the work, then "die" (drop).
            for _ in 0..3 {
                let claim = service.claim(9).unwrap();
                let job = &claim.plan.graph.jobs[claim.job];
                let key = &claim.plan.keys[claim.job];
                let cfg = claim.knobs.config(&job.geometry, job.job_seed()).unwrap();
                let out = execute_stage(job, key, &cfg, &registry, &store, false).unwrap();
                let record = JobRecord {
                    key: key.clone(),
                    label: job.label(),
                    status: JobStatus::Executed,
                    error: None,
                    summary: Some(out.summary),
                };
                service
                    .record(&claim.sweep, claim.job, record, false)
                    .unwrap();
            }
            (a, b)
        };
        // A fresh registry over the same store: the queue and the
        // journaled records come back verbatim.
        let mut resumed = SweepRegistry::open(&store, &registry).unwrap();
        assert_eq!(resumed.ids(), vec![a.clone(), b.clone()]);
        let statuses = resumed.statuses();
        let done_before: usize = statuses.iter().map(|s| s.done).sum();
        assert_eq!(done_before, 3, "journaled records replay, not re-run");
        assert!(statuses.iter().all(|s| s.failed == 0));
        drain(&mut resumed, &store, &registry);
        assert!(resumed.finished());
        // The resumed statuses stay truthful: replayed jobs count as
        // executed (they did execute — in the previous life).
        let statuses = resumed.statuses();
        let of = |id: &str| statuses.iter().find(|s| s.id == *id).unwrap();
        assert_eq!(of(&a).done, of(&a).total);
        assert_eq!(of(&b).done, of(&b).total);
        assert_eq!(of(&a).failed + of(&b).failed, 0);
        // A third registry sees both as done without planning anything.
        let third = SweepRegistry::open(&store, &registry).unwrap();
        assert!(third.finished());
        assert!(third
            .statuses()
            .iter()
            .all(|s| s.state == SweepState::Done && s.done == s.total && s.total > 0));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn same_digest_nodes_within_one_plan_chain_instead_of_panicking() {
        // Two *named* inputs resolving to the same vector keep separate
        // pipeline nodes that share every stage digest (the expansion's
        // documented NodeIndex behavior) — the registry must chain them
        // like cross-sweep duplicates, not index an entry it has not
        // pushed yet.
        let store = tmp_store("same-digest");
        let mut registry = Registry::empty();
        let mut benchmark = mbcr_malardalen::bs::benchmark();
        let twin = benchmark.default_input.clone();
        benchmark.input_vectors = vec![
            mbcr_malardalen::NamedInput {
                name: "a".to_string(),
                inputs: twin.clone(),
            },
            mbcr_malardalen::NamedInput {
                name: "b".to_string(),
                inputs: twin,
            },
        ];
        registry.insert(benchmark);
        let mut service = SweepRegistry::open(&store, &registry).unwrap();
        let spec = SweepSpec {
            max_campaign_runs: Some(200),
            ..SweepSpec::new("twins")
                .benchmarks(["bs"])
                .inputs(crate::InputSelection::All)
                .seeds([5])
                .analyses([crate::AnalysisKind::PubTac])
        };
        let opts = SubmitOptions {
            persist: true,
            ..SubmitOptions::default()
        };
        let id = service.submit(spec, opts, &registry).unwrap();
        drain(&mut service, &store, &registry);
        assert!(service.finished());
        let statuses = service.statuses();
        let status = statuses.iter().find(|s| s.id == id).unwrap();
        assert_eq!(status.done, status.total);
        assert_eq!(status.failed, 0);
        // Input `a` executes its pipeline; input `b`'s twin nodes chain
        // behind it and come back cached — deterministic, truthful.
        assert!(status.skipped > 0, "twin-input stages must dedup");
        let _ = fs::remove_dir_all(store.root());
    }

    /// A spec over `benchmark` whose stage digests are disjoint from any
    /// other benchmark's — for scheduling tests that need two sweeps
    /// with independent work (no cross-sweep parking).
    fn disjoint_spec(name: &str, benchmark: &str) -> SweepSpec {
        SweepSpec {
            max_campaign_runs: Some(200),
            ..SweepSpec::new(name)
                .benchmarks([benchmark])
                .seeds([7])
                .analyses([crate::AnalysisKind::PubTac])
        }
    }

    /// Completes a claim with a fabricated failed record — scheduling
    /// tests only care about claim order, never artifact content.
    fn complete_fake(service: &mut SweepRegistry, claim: &ServiceClaim) {
        let record = JobRecord {
            key: claim.plan.keys[claim.job].clone(),
            label: claim.plan.graph.jobs[claim.job].label(),
            status: JobStatus::Failed,
            error: Some("synthetic".to_string()),
            summary: None,
        };
        service
            .record(&claim.sweep, claim.job, record, false)
            .unwrap();
    }

    #[test]
    fn priority_weights_the_claim_interleaving() {
        let store = tmp_store("priority");
        let registry = Registry::malardalen();
        let mut service = SweepRegistry::open(&store, &registry).unwrap();
        let a = service
            .submit(
                disjoint_spec("slow", "bs"),
                SubmitOptions {
                    persist: true,
                    priority: 1,
                    ..SubmitOptions::default()
                },
                &registry,
            )
            .unwrap();
        let b = service
            .submit(
                disjoint_spec("fast", "cnt"),
                SubmitOptions {
                    persist: true,
                    priority: 3,
                    ..SubmitOptions::default()
                },
                &registry,
            )
            .unwrap();
        // Both pipelines are serial chains, so completing each claim
        // immediately keeps exactly one job of each sweep ready: the
        // interleaving is pure stride scheduling. Passes tie at 0 →
        // oldest (a) first; then b claims three times per a claim.
        let mut order = Vec::new();
        for _ in 0..8 {
            let claim = service.claim(1).expect("both sweeps have ready work");
            order.push(claim.sweep.clone());
            complete_fake(&mut service, &claim);
        }
        assert_eq!(order[0], a, "a pass tie goes to the older submission");
        let of = |id: &str| order.iter().filter(|s| *s == id).count();
        assert_eq!(
            (of(&a), of(&b)),
            (2, 6),
            "priority 3 sweep must claim three jobs per priority-1 job"
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn max_concurrent_caps_outstanding_leases_per_sweep() {
        let store = tmp_store("quota");
        let registry = Registry::malardalen();
        let mut service = SweepRegistry::open(&store, &registry).unwrap();
        let a = service
            .submit(
                disjoint_spec("capped", "bs"),
                SubmitOptions {
                    persist: true,
                    max_concurrent: Some(1),
                    ..SubmitOptions::default()
                },
                &registry,
            )
            .unwrap();
        let b = service
            .submit(
                disjoint_spec("open", "cnt"),
                SubmitOptions {
                    persist: true,
                    ..SubmitOptions::default()
                },
                &registry,
            )
            .unwrap();
        let first = service.claim(1).expect("first claim");
        assert_eq!(first.sweep, a, "tie on pass goes to the older sweep");
        // a is at its cap while the lease is outstanding: the next claim
        // must come from b even though a still has the lower pass.
        let second = service.claim(2).expect("second claim");
        assert_eq!(second.sweep, b, "quota-capped sweep must be skipped");
        // Serial chains: with both heads leased, nothing is claimable.
        assert!(service.claim(3).is_none());
        complete_fake(&mut service, &first);
        let third = service.claim(3).expect("cap freed after completion");
        assert_eq!(third.sweep, a);
        let metrics = service.metrics();
        let row = |id: &str| metrics.sweeps.iter().find(|s| s.id == *id).unwrap().clone();
        assert_eq!(row(&a).max_concurrent, Some(1));
        assert_eq!(row(&a).leased, 1);
        assert_eq!(row(&a).claims, 2);
        assert_eq!(row(&b).leased, 1);
        assert_eq!(metrics.leased, 2);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn metrics_count_dedup_parking_and_fairness() {
        let store = tmp_store("metrics");
        let registry = Registry::malardalen();
        let mut service = SweepRegistry::open(&store, &registry).unwrap();
        let opts = SubmitOptions {
            persist: true,
            ..SubmitOptions::default()
        };
        let a = service
            .submit(quick_spec("owner", &[7]), opts, &registry)
            .unwrap();
        let b = service
            .submit(quick_spec("twin", &[7]), opts, &registry)
            .unwrap();
        let before = service.metrics();
        assert!(
            before.dedup_parked > 0,
            "the twin sweep must park behind the owner's digests"
        );
        assert_eq!(before.active, 2);
        assert!(before.ready > 0);
        drain(&mut service, &store, &registry);
        let after = service.metrics();
        assert_eq!(after.ready, 0);
        assert_eq!(after.leased, 0);
        assert_eq!(after.active, 0);
        let row = |id: &str| after.sweeps.iter().find(|s| s.id == *id).unwrap();
        assert!(row(&a).claims > 0);
        assert_eq!(
            row(&b).skipped,
            row(&b).total,
            "every twin job is a dedup hit"
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn queue_entries_persist_scheduling_knobs_across_restarts() {
        let store = tmp_store("knobs");
        let registry = Registry::malardalen();
        let id = {
            let mut service = SweepRegistry::open(&store, &registry).unwrap();
            service
                .submit(
                    quick_spec("knobbed", &[3]),
                    SubmitOptions {
                        persist: true,
                        priority: 5,
                        max_concurrent: Some(2),
                        ..SubmitOptions::default()
                    },
                    &registry,
                )
                .unwrap()
        };
        let resumed = SweepRegistry::open(&store, &registry).unwrap();
        let metrics = resumed.metrics();
        let row = metrics.sweeps.iter().find(|s| s.id == id).unwrap();
        assert_eq!(row.priority, 5);
        assert_eq!(row.max_concurrent, Some(2));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn cancel_releases_cross_sweep_waiters() {
        let store = tmp_store("cancel");
        let registry = Registry::malardalen();
        let mut service = SweepRegistry::open(&store, &registry).unwrap();
        let opts = SubmitOptions {
            persist: true,
            ..SubmitOptions::default()
        };
        let a = service
            .submit(quick_spec("owner", &[3]), opts, &registry)
            .unwrap();
        let b = service
            .submit(quick_spec("waiter", &[3]), opts, &registry)
            .unwrap();
        // Nothing of b is claimable while a owns every digest...
        let claim = service.claim(1).expect("a's first job");
        assert_eq!(claim.sweep, a);
        // ...but cancelling a releases b's parked jobs.
        assert_eq!(service.cancel(&a).unwrap(), SweepState::Canceled);
        drain(&mut service, &store, &registry);
        assert!(service.finished());
        let statuses = service.statuses();
        let of = |id: &str| statuses.iter().find(|s| s.id == *id).unwrap();
        assert_eq!(of(&a).state, SweepState::Canceled);
        assert_eq!(of(&b).state, SweepState::Done);
        assert_eq!(of(&b).done, of(&b).total);
        assert_eq!(of(&b).failed, 0);
        // The claim leased before the cancel reports late; it is absorbed.
        let record = JobRecord {
            key: claim.plan.keys[claim.job].clone(),
            label: claim.plan.graph.jobs[claim.job].label(),
            status: JobStatus::Executed,
            error: None,
            summary: None,
        };
        service.record(&a, claim.job, record, false).unwrap();
        assert_eq!(of(&a).state, SweepState::Canceled);
        let _ = fs::remove_dir_all(store.root());
    }
}
