//! Empirical Complementary Cumulative Distribution Functions — the curves of
//! the paper's Figures 2 and 4.

/// An ECCDF over a sample of execution times.
///
/// `eccdf(x) = #{ samples > x } / n` — the empirical per-run exceedance
/// probability.
///
/// # Examples
///
/// ```
/// use mbcr_evt::Eccdf;
/// let e = Eccdf::from_u64(&[10, 20, 20, 40]);
/// assert_eq!(e.exceedance(9.0), 1.0);
/// assert_eq!(e.exceedance(20.0), 0.25);
/// assert_eq!(e.exceedance(40.0), 0.0);
/// assert_eq!(e.max(), 40.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Eccdf {
    sorted: Vec<f64>,
}

impl Eccdf {
    /// Builds an ECCDF from a sample (values are copied and sorted).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    #[must_use]
    pub fn new(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "ECCDF needs a non-empty sample");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECCDF sample"));
        Self { sorted }
    }

    /// Builds an ECCDF from cycle counts.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    #[must_use]
    pub fn from_u64(sample: &[u64]) -> Self {
        assert!(!sample.is_empty(), "ECCDF needs a non-empty sample");
        let mut sorted: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Sample size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction rejects empty samples); provided for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Empirical exceedance probability `P(X > x)`.
    #[must_use]
    pub fn exceedance(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x.
        let le = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - le) as f64 / self.sorted.len() as f64
    }

    /// The value at exceedance probability `p`: the smallest sample value
    /// `x` with `eccdf(x) <= p`. For `p` below `1/n` this is the sample
    /// maximum (the empirical curve cannot extrapolate — that is EVT's job).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "exceedance probability must be in (0, 1]"
        );
        let n = self.sorted.len();
        // Need #{ > x } <= p*n: the largest count k with k/n <= p may
        // leave more than k samples above x only if x is too small, so
        // index n - k is the answer. `floor(p * n)` alone under-counts k
        // when the product lands one ULP below an integer (0.29 * 100 ==
        // 28.999999999999996), so correct the seed by the exact k/n <= p
        // comparison in both directions.
        let mut allowed_above = ((p * n as f64).floor() as usize).min(n);
        while allowed_above < n && (allowed_above + 1) as f64 / n as f64 <= p {
            allowed_above += 1;
        }
        while allowed_above > 0 && allowed_above as f64 / n as f64 > p {
            allowed_above -= 1;
        }
        let idx = n - allowed_above;
        self.sorted[idx.min(n - 1)]
    }

    /// Minimum observed value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observed value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The sorted sample (ascending).
    #[must_use]
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// At most `max_points` (x, eccdf(x)) pairs for plotting, always
    /// including the extremes.
    #[must_use]
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let max_points = max_points.max(2);
        // Reserve one slot for the appended maximum: ceil(n / step) sampled
        // points never exceed max_points - 1, so the total honors the cap.
        let step = n.div_ceil(max_points - 1).max(1);
        let mut out = Vec::with_capacity(max_points);
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (n - i - 1) as f64 / n as f64));
            i += step;
        }
        let last = (self.sorted[n - 1], 0.0);
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }

    /// Returns `true` if `self` upper-bounds `other` at every probed
    /// exceedance probability: for each probability `p` in `probes`,
    /// `self.quantile(p) >= other.quantile(p) - slack`.
    ///
    /// This is the empirical check of the paper's Equation 1 / Figure 2
    /// (each pubbed path's ECCDF lies right of every original path's).
    #[must_use]
    pub fn dominates(&self, other: &Eccdf, probes: &[f64], slack: f64) -> bool {
        probes
            .iter()
            .all(|&p| self.quantile(p) >= other.quantile(p) - slack)
    }
}

impl mbcr_json::Serialize for Eccdf {
    fn to_json(&self) -> mbcr_json::Json {
        mbcr_json::Json::Obj(vec![(
            "values".to_string(),
            mbcr_json::Serialize::to_json(&self.sorted),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceedance_steps() {
        let e = Eccdf::from_u64(&[1, 2, 3, 4]);
        assert_eq!(e.exceedance(0.0), 1.0);
        assert_eq!(e.exceedance(1.0), 0.75);
        assert_eq!(e.exceedance(2.5), 0.5);
        assert_eq!(e.exceedance(4.0), 0.0);
    }

    #[test]
    fn quantile_inverts_exceedance() {
        let e = Eccdf::from_u64(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(e.quantile(1.0), 10.0);
        assert_eq!(e.quantile(0.5), 60.0);
        assert_eq!(e.quantile(0.1), 100.0);
        // Below 1/n resolution: the maximum.
        assert_eq!(e.quantile(0.01), 100.0);
        // Consistency: eccdf(quantile(p)) <= p.
        for p in [1.0, 0.7, 0.5, 0.2, 0.1] {
            assert!(e.exceedance(e.quantile(p)) <= p + 1e-12);
        }
    }

    #[test]
    fn quantile_survives_floats_that_land_just_below_an_integer() {
        // 0.29 * 100 == 28.999999999999996: a plain floor would allow only
        // 28 samples above and return sorted[72] instead of sorted[71].
        let sample: Vec<u64> = (1..=100).collect();
        let e = Eccdf::from_u64(&sample);
        assert_eq!(e.quantile(0.29), 72.0, "29 samples (73..=100) may exceed");
        assert_eq!(e.exceedance(72.0), 0.28);

        // Adversarial (p, n) pairs checked against an exact integer
        // reference: the largest k with k/n <= p, found by linear search.
        for n in [1usize, 3, 7, 10, 50, 100, 1000] {
            let sample: Vec<u64> = (0..n as u64).collect();
            let e = Eccdf::from_u64(&sample);
            for p in [0.01, 0.07, 0.1, 0.13, 0.29, 0.3, 0.58, 0.7, 0.999, 1.0] {
                let k = (0..=n)
                    .rev()
                    .find(|&k| k as f64 / n as f64 <= p)
                    .expect("k = 0 always qualifies");
                let expected = e.sorted_values()[(n - k).min(n - 1)];
                assert_eq!(e.quantile(p), expected, "p={p}, n={n}");
                // The defining inequality, on the nose.
                assert!(e.exceedance(e.quantile(p)) <= p, "p={p}, n={n}");
            }
        }
    }

    #[test]
    fn quantile_with_ties() {
        let e = Eccdf::from_u64(&[5, 5, 5, 9]);
        assert_eq!(e.quantile(0.25), 9.0);
        assert_eq!(e.quantile(1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = Eccdf::from_u64(&[]);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_probability_panics() {
        let e = Eccdf::from_u64(&[1]);
        let _ = e.quantile(0.0);
    }

    #[test]
    fn summary_stats() {
        let e = Eccdf::from_u64(&[4, 1, 3, 2]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert!((e.mean() - 2.5).abs() < 1e-12);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn points_cover_extremes() {
        let sample: Vec<u64> = (0..1000).collect();
        let e = Eccdf::from_u64(&sample);
        let pts = e.points(50);
        assert!(pts.len() <= 50, "the documented cap is a hard bound");
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts.last().unwrap().0, 999.0);
        assert_eq!(pts.last().unwrap().1, 0.0);
        // Probabilities non-increasing.
        assert!(pts.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn points_honor_the_cap_for_awkward_sizes() {
        // Sizes that used to produce max_points + 2 (step truncation plus
        // the appended extreme), across a spread of caps.
        for n in [1usize, 2, 3, 49, 50, 51, 52, 100, 101, 999, 1000, 1001] {
            let sample: Vec<u64> = (0..n as u64).collect();
            let e = Eccdf::from_u64(&sample);
            for cap in [2usize, 3, 5, 50, 52] {
                let pts = e.points(cap);
                assert!(
                    pts.len() <= cap,
                    "n={n}, cap={cap}: got {} points",
                    pts.len()
                );
                assert_eq!(pts[0].0, 0.0, "n={n}, cap={cap}");
                assert_eq!(pts.last().unwrap().0, (n - 1) as f64, "n={n}, cap={cap}");
                assert_eq!(pts.last().unwrap().1, 0.0);
            }
        }
    }

    #[test]
    fn dominance() {
        let lo = Eccdf::from_u64(&[10, 20, 30]);
        let hi = Eccdf::from_u64(&[15, 25, 35]);
        let probes = [1.0, 0.6, 0.3];
        assert!(hi.dominates(&lo, &probes, 0.0));
        assert!(!lo.dominates(&hi, &probes, 0.0));
        assert!(lo.dominates(&hi, &probes, 5.0), "slack absorbs the gap");
        assert!(lo.dominates(&lo, &probes, 0.0), "reflexive");
    }
}
