//! Criterion performance benches for the cache simulator — the innermost
//! loop of every measurement campaign.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
use mbcr_cpu::{campaign, campaign_slice_with, Parallelism, PlatformConfig, DEFAULT_BATCH_WIDTH};
use mbcr_ir::execute;
use mbcr_json::Json;
use mbcr_trace::{LineId, SymSeq};
use std::hint::black_box;
use std::time::Instant;

fn line_stream(n: usize) -> Vec<LineId> {
    // A mix of reuse and streaming, 64 distinct lines.
    (0..n).map(|i| LineId(((i * 17) % 64) as u64)).collect()
}

fn bench_cache_access(c: &mut Criterion) {
    let stream = line_stream(100_000);
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, placement, replacement) in [
        (
            "random_random",
            PlacementPolicy::RandomHash,
            ReplacementPolicy::Random,
        ),
        (
            "modulo_lru",
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || Cache::new(CacheGeometry::paper_l1(), placement, replacement, 42),
                |mut cache| {
                    for &l in &stream {
                        black_box(cache.access_line(l));
                    }
                    cache
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let bench = mbcr_malardalen::bs::benchmark();
    let trace = execute(&bench.program, &bench.default_input)
        .expect("run bs")
        .trace;
    let cfg = PlatformConfig::paper_default();
    let mut group = c.benchmark_group("campaign");
    group.throughput(Throughput::Elements(100 * trace.len() as u64));
    group.bench_function("bs_100_runs", |b| {
        b.iter(|| black_box(campaign(&cfg, &trace, 100, 7)));
    });
    group.finish();
}

/// Serial vs batched campaign throughput on a `table2_runs`-shaped
/// workload (bs trace, paper-default geometry), written to
/// `BENCH_campaign.json` at the workspace root.
///
/// Timing is best-of-`reps` wall clock over the full slice, not
/// criterion samples, so the JSON record carries runs/sec directly.
/// Under `MBCR_PERF_SMOKE=1` the campaign shrinks to a CI-sized run
/// count and the process exits non-zero if the batched path is slower
/// than the serial one — the perf regression gate.
fn bench_campaign_batched(_c: &mut Criterion) {
    let smoke = std::env::var("MBCR_PERF_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let runs = if smoke { 300 } else { 2_000 };
    let reps = 3;
    let width = DEFAULT_BATCH_WIDTH;
    let bench = mbcr_malardalen::bs::benchmark();
    let trace = execute(&bench.program, &bench.default_input)
        .expect("run bs")
        .trace;
    let cfg = PlatformConfig::paper_default();
    let serial = Parallelism::with_threads(1).batch_width(1);
    let batched = Parallelism::with_threads(1).batch_width(width);

    // Warm-up doubles as the bit-identity check the batched path promises.
    let a = campaign_slice_with(&cfg, &trace, 0, runs, 7, &serial);
    let b = campaign_slice_with(&cfg, &trace, 0, runs, 7, &batched);
    assert_eq!(a, b, "batched campaign must be bit-identical to serial");

    let best_of = |par: &Parallelism| -> f64 {
        (0..reps)
            .map(|_| {
                let start = Instant::now();
                black_box(campaign_slice_with(&cfg, &trace, 0, runs, 7, par));
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let serial_s = best_of(&serial);
    let batched_s = best_of(&batched);
    let serial_rps = runs as f64 / serial_s;
    let batched_rps = runs as f64 / batched_s;
    let speedup = serial_s / batched_s;
    println!(
        "campaign_batched/bs_{runs}_runs             serial {serial_rps:.0} runs/s, \
         batched(W={width}) {batched_rps:.0} runs/s, speedup {speedup:.2}x"
    );

    let record = Json::Obj(vec![
        ("benchmark".into(), Json::Str("bs".into())),
        ("geometry".into(), Json::Str("paper_l1".into())),
        ("trace_ops".into(), Json::UInt(trace.len() as u64)),
        ("runs".into(), Json::UInt(runs as u64)),
        ("batch_width".into(), Json::UInt(width as u64)),
        ("reps".into(), Json::UInt(reps as u64)),
        ("smoke".into(), Json::Bool(smoke)),
        ("serial_runs_per_sec".into(), Json::Num(serial_rps)),
        ("batched_runs_per_sec".into(), Json::Num(batched_rps)),
        ("speedup".into(), Json::Num(speedup)),
    ]);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_campaign.json");
    std::fs::write(&path, record.to_pretty() + "\n").expect("write BENCH_campaign.json");
    println!("wrote {}", path.display());

    if smoke && speedup < 1.0 {
        eprintln!(
            "perf-smoke FAILED: batched campaign ({batched_rps:.0} runs/s) slower than \
             serial ({serial_rps:.0} runs/s)"
        );
        std::process::exit(1);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_access, bench_campaign, bench_campaign_batched
}
criterion_main!(benches);

// Silence the unused-import lint if SymSeq stops being needed.
#[allow(dead_code)]
fn _keep(s: &str) -> SymSeq {
    s.parse().expect("valid")
}
