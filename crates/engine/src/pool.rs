//! The in-process DAG executor: OS threads over the shared
//! [`JobScheduler`] state machine.
//!
//! Scheduling policy — which job may run when, lease bookkeeping, the
//! malformed-graph checks — lives in [`JobScheduler`], the same state
//! machine the `mbcr-shard` coordinator drives over TCP. This module adds
//! only what an in-process pool needs on top: worker threads, a condvar to
//! park claimers while everything runnable is leased elsewhere, and result
//! collection in submission order (so output is deterministic regardless
//! of the interleaving).
//!
//! Jobs here are whole analysis stages — milliseconds to minutes each —
//! so one central queue behind a mutex is the right trade: claims are
//! vanishingly rare next to job execution, and the earlier per-worker
//! deque design bought its stealing locality with a deadlock class
//! (guards held across sibling locks) that this design cannot express.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::JobScheduler;

/// Executes `deps.len()` jobs respecting the dependency edges, with up to
/// `threads` workers. `run(i)` is called exactly once per job, only after
/// every job in `deps[i]` has completed; the result vector is indexed by
/// job.
///
/// # Panics
///
/// Panics on malformed graphs: out-of-range or self dependencies, or a
/// dependency cycle (rejected by [`JobScheduler::new`] before any worker
/// spawns).
pub fn execute_dag<R, F>(deps: &[Vec<usize>], threads: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    execute_dag_inner(deps, threads, None, run)
}

/// [`execute_dag`] with a claim-ordering hint: among *ready* jobs, workers
/// lease the one with the highest `priority[i]` (ties broken towards the
/// oldest, so a constant table degenerates to plain [`execute_dag`]).
/// Dependency edges still gate readiness, and results stay in submission
/// order — the priorities reorder wall-clock execution only, never the
/// output.
///
/// # Panics
///
/// Panics on malformed graphs (see [`execute_dag`]) or when
/// `priority.len() != deps.len()`.
pub fn execute_dag_prioritized<R, F>(
    deps: &[Vec<usize>],
    threads: usize,
    priority: &[u64],
    run: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert_eq!(
        priority.len(),
        deps.len(),
        "one priority per job, got {} for {} jobs",
        priority.len(),
        deps.len()
    );
    execute_dag_inner(deps, threads, Some(priority), run)
}

fn execute_dag_inner<R, F>(
    deps: &[Vec<usize>],
    threads: usize,
    priority: Option<&[u64]>,
    run: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = deps.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    let sched = Mutex::new(JobScheduler::new(deps));
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let wake = Condvar::new();

    std::thread::scope(|scope| {
        for me in 0..threads {
            let run = &run;
            let sched = &sched;
            let results = &results;
            let wake = &wake;
            scope.spawn(move || loop {
                // The claim span covers lock acquisition and any parked
                // waiting — i.e. this worker's idle time between jobs.
                let claim_span = mbcr_obs::span(mbcr_obs::SpanKind::SchedulerClaim, "pool-claim");
                let job = {
                    let mut guard = sched.lock().expect("scheduler poisoned");
                    loop {
                        if guard.finished() {
                            wake.notify_all();
                            return;
                        }
                        let claimed = match priority {
                            Some(priority) => guard.claim_preferred(me as u64, |job| priority[job]),
                            None => guard.claim(me as u64),
                        };
                        if let Some(job) = claimed {
                            break job;
                        }
                        // Everything runnable is leased to siblings; park
                        // until a completion may have unblocked work. The
                        // timeout is belt-and-braces against a lost wake.
                        guard = wake
                            .wait_timeout(guard, Duration::from_millis(2))
                            .expect("scheduler poisoned")
                            .0;
                    }
                };
                drop(claim_span);
                let busy_start = if mbcr_obs::enabled() {
                    Some(mbcr_obs::now_ns())
                } else {
                    None
                };
                let result = run(job);
                if let Some(start) = busy_start {
                    let busy = mbcr_obs::now_ns().saturating_sub(start);
                    mbcr_obs::observe("mbcr_worker_busy_seconds", &[], busy);
                }
                *results[job].lock().expect("result slot poisoned") = Some(result);
                let (unblocked, finished) = {
                    let mut guard = sched.lock().expect("scheduler poisoned");
                    (guard.complete(job), guard.finished())
                };
                if unblocked > 0 || finished {
                    wake.notify_all();
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scheduler drained without running every job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_graph_is_fine() {
        let out: Vec<u32> = execute_dag(&[], 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn independent_jobs_all_run_once() {
        let deps: Vec<Vec<usize>> = vec![Vec::new(); 100];
        let calls = AtomicU64::new(0);
        let out = execute_dag(&deps, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn dependencies_complete_first() {
        // Chain 0 -> 1 -> 2 plus a fan-in job 3 depending on everything.
        let deps = vec![vec![], vec![0], vec![1], vec![0, 1, 2]];
        let order = Mutex::new(Vec::new());
        execute_dag(&deps, 4, |i| {
            order.lock().unwrap().push(i);
        });
        let order = order.into_inner().unwrap();
        let position = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(position(0) < position(1));
        assert!(position(1) < position(2));
        assert_eq!(position(3), 3);
    }

    #[test]
    fn wide_diamond_under_contention() {
        // 1 source -> 200 middles -> 1 sink, 8 workers.
        let n = 202;
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for middle in deps.iter_mut().take(201).skip(1) {
            *middle = vec![0];
        }
        deps[201] = (1..=200).collect();
        let out = execute_dag(&deps, 8, |i| i as u64);
        assert_eq!(out.len(), n);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn chains_under_idle_worker_pressure_do_not_deadlock() {
        // One long chain keeps at most one job runnable, so every other
        // worker constantly runs dry and parks — the shape that deadlocked
        // the old per-worker-deque pool (reliably so on a single-CPU
        // host). The watchdog turns a regression into a failure instead
        // of a hung suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for _round in 0..50 {
                let n = 40;
                let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
                for (i, d) in deps.iter_mut().enumerate().skip(1) {
                    *d = vec![i - 1];
                }
                let out = execute_dag(&deps, 8, |i| i);
                assert_eq!(out.len(), n);
            }
            tx.send(()).expect("watchdog receiver gone");
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("execute_dag deadlocked under idle-worker pressure");
    }

    #[test]
    fn prioritized_claims_highest_score_first() {
        let deps: Vec<Vec<usize>> = vec![Vec::new(); 4];
        let priority = vec![1, 9, 3, 9];
        let order = Mutex::new(Vec::new());
        let out = execute_dag_prioritized(&deps, 1, &priority, |i| {
            order.lock().unwrap().push(i);
            i * 10
        });
        // Highest score first; the 9-tie breaks towards the oldest.
        assert_eq!(order.into_inner().unwrap(), vec![1, 3, 2, 0]);
        // Results are still in submission order, not execution order.
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn prioritized_still_respects_dependencies() {
        // Job 2 outranks everything but depends on low-priority job 0.
        let deps = vec![vec![], vec![], vec![0]];
        let priority = vec![0, 5, 100];
        let order = Mutex::new(Vec::new());
        execute_dag_prioritized(&deps, 1, &priority, |i| {
            order.lock().unwrap().push(i);
        });
        let order = order.into_inner().unwrap();
        let position = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(position(0) < position(2), "edges gate readiness");
        assert_eq!(position(1), 0, "job 1 outranks job 0 among ready jobs");
    }

    #[test]
    #[should_panic(expected = "one priority per job")]
    fn prioritized_rejects_mismatched_table() {
        execute_dag_prioritized(&[vec![], vec![]], 1, &[1], |_| ());
    }

    #[test]
    fn single_thread_executes_in_topological_order() {
        let deps = vec![vec![1], vec![], vec![0]]; // 1 -> 0 -> 2
        let order = Mutex::new(Vec::new());
        execute_dag(&deps, 1, |i| {
            order.lock().unwrap().push(i);
        });
        assert_eq!(order.into_inner().unwrap(), vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn rejects_out_of_range_dependency() {
        execute_dag(&[vec![5]], 1, |_| ());
    }

    #[test]
    #[should_panic(expected = "depends on itself")]
    fn rejects_self_dependency() {
        execute_dag(&[vec![0]], 1, |_| ());
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn rejects_cycles() {
        execute_dag(&[vec![1], vec![0]], 2, |_| ());
    }
}
