//! Minimal, offline, API-compatible stand-in for the subset of
//! [proptest](https://docs.rs/proptest) used by `tests/props.rs`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the property-test sources unchanged: it provides
//! the [`Strategy`] trait (ranges, tuples, [`prop::collection::vec`],
//! [`prop_map`](Strategy::prop_map), [`any`]), the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros and [`ProptestConfig`].
//! Unlike real proptest there is **no shrinking** — a failing case reports
//! the case index and the deterministic per-test seed instead of a minimal
//! counterexample.
//!
//! Generation is deterministic: each test derives its RNG seed from the
//! test name, so failures are reproducible run over run. Set
//! `PROPTEST_CASES` to override the per-test case count.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — the same generator family the main crates pin, kept
/// local so the shim stays dependency-free.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic generator driving value production.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives a per-test seed from the test name (FNV-1a).
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state);
        mix(self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-data generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring proptest's `Strategy` (minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Full-range strategy for a primitive, mirroring `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Produces any value of `T` (full range).
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// A length range for [`vec()`](fn@vec): built from `a..b` or `a..=b`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_inclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    min: r.start,
                    max_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    min: *r.start(),
                    max_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    min: n,
                    max_inclusive: n,
                }
            }
        }

        /// Strategy generating `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_inclusive - self.size.min) as u64;
                let len = self.size.min + rng.below(span + 1) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-block configuration, mirroring proptest's `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The effective case count (`PROPTEST_CASES` overrides).
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
///
/// Note: argument lists must end with a trailing comma (as all call sites
/// in this repository do) — a macro-grammar restriction of the shim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg [$cfg] $($rest)*);
    };
    (@with_cfg [$cfg:expr] $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr,)+) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::TestRng::seed_for(stringify!($name));
            let mut __rng = $crate::TestRng::new(__seed);
            for __case in 0..__cfg.effective_cases() {
                let ($($arg,)+) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        __case + 1,
                        __cfg.effective_cases(),
                        __seed,
                        __msg,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg [$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// Asserts inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!(),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u16..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(0usize..=4), &mut rng);
            assert!(w <= 4);
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::TestRng::new(2);
        let s = prop::collection::vec((0usize..=10, 0u16..4), 1..5);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a <= 10 && b < 4));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new(3);
        let doubled = (1u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = Strategy::generate(&doubled, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = crate::TestRng::new(seed);
            (0..32).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_runnable_tests(
            xs in prop::collection::vec(0u64..100, 0..=8,),
            k in any::<u64>(),
        ) {
            prop_assert!(xs.len() <= 8);
            prop_assert_eq!(k.wrapping_add(0), k);
        }
    }
}
