//! The paper's Section 3.3 walkthrough on the `bs` benchmark: eight
//! maximum-iteration paths, pubbed, TAC-sized campaigns, and the Corollary 2
//! multi-path tightening.
//!
//! Run with `cargo run --release --example bs_paper_walkthrough`.

use mbcr::prelude::*;
use mbcr_ir::group_inputs_by_path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = mbcr_malardalen::bs::program();
    let vectors = mbcr_malardalen::bs::input_vectors();

    // "8 different cases lead to different paths triggering the maximum
    // number of iterations."
    let inputs: Vec<Inputs> = vectors.iter().map(|v| v.inputs.clone()).collect();
    let groups = group_inputs_by_path(&program, &inputs)?;
    println!("distinct max-iteration paths: {} (paper: 8)", groups.len());

    // Analyse each pubbed path; any of them upper-bounds all original
    // paths (Observation 3), so the per-exceedance minimum is the tightest
    // reliable estimate (Corollary 2).
    let cfg = AnalysisConfig::builder().seed(0xB5).quick().build();
    let named: Vec<(String, Inputs)> = vectors.into_iter().map(|v| (v.name, v.inputs)).collect();
    let multi = analyze_multipath(&program, &named, &cfg)?;

    println!("\nper-path pWCET@1e-12 (pubbed program):");
    for (name, a) in &multi.per_input {
        println!(
            "  {name:>4}: R_pub = {:>5}, R_tac = {:>6}, pWCET = {:>7.0} cycles",
            a.r_pub, a.r_tac, a.pwcet_pub_tac
        );
    }
    println!(
        "\nCorollary 2: tightest reliable bound = {:.0} cycles (from {})",
        multi.best_pwcet, multi.best_input
    );
    Ok(())
}
