//! Path records: which way every conditional went, how often every loop
//! iterated.

use std::fmt;

/// One control-flow decision taken during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Conditional `id` evaluated with the given outcome.
    Branch {
        /// Pre-order construct id (see [`crate::layout_program`]).
        id: u32,
        /// `true` if the then-branch was taken.
        taken: bool,
    },
    /// Loop `id` exited after `iters` iterations.
    Loop {
        /// Pre-order construct id.
        id: u32,
        /// Number of completed iterations.
        iters: u32,
    },
}

/// The full control-flow path of one program run.
///
/// Two runs follow the same path of the control-flow graph exactly when
/// their `PathRecord`s are equal. [`path_id`](PathRecord::path_id) condenses
/// the record into a stable 64-bit fingerprint for grouping runs by path.
///
/// # Examples
///
/// ```
/// use mbcr_ir::{Decision, PathRecord};
/// let mut p = PathRecord::new();
/// p.push(Decision::Branch { id: 0, taken: true });
/// p.push(Decision::Loop { id: 1, iters: 4 });
/// assert_eq!(p.to_string(), "b0:T l1:4");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PathRecord {
    decisions: Vec<Decision>,
}

impl PathRecord {
    /// Creates an empty record.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a decision.
    pub fn push(&mut self, d: Decision) {
        self.decisions.push(d);
    }

    /// The decisions in execution order.
    #[must_use]
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Number of recorded decisions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Returns `true` for a straight-line run (no conditionals or loops).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Stable 64-bit fingerprint of the path (FNV-1a over the decisions).
    #[must_use]
    pub fn path_id(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for d in &self.decisions {
            match *d {
                Decision::Branch { id, taken } => {
                    eat(1);
                    eat(u64::from(id));
                    eat(u64::from(taken));
                }
                Decision::Loop { id, iters } => {
                    eat(2);
                    eat(u64::from(id));
                    eat(u64::from(iters));
                }
            }
        }
        h
    }

    /// Total loop iterations across all loops (a crude path-length measure).
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.decisions
            .iter()
            .map(|d| match d {
                Decision::Loop { iters, .. } => u64::from(*iters),
                Decision::Branch { .. } => 0,
            })
            .sum()
    }

    /// Iterations recorded for loop `id` (first exit record), if any.
    #[must_use]
    pub fn loop_iters(&self, id: u32) -> Option<u32> {
        self.decisions.iter().find_map(|d| match *d {
            Decision::Loop { id: lid, iters } if lid == id => Some(iters),
            _ => None,
        })
    }
}

impl fmt::Display for PathRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match d {
                Decision::Branch { id, taken } => {
                    write!(f, "b{id}:{}", if *taken { 'T' } else { 'F' })?;
                }
                Decision::Loop { id, iters } => write!(f, "l{id}:{iters}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_ids_distinguish_paths() {
        let mut a = PathRecord::new();
        a.push(Decision::Branch { id: 0, taken: true });
        let mut b = PathRecord::new();
        b.push(Decision::Branch {
            id: 0,
            taken: false,
        });
        assert_ne!(a.path_id(), b.path_id());
        assert_eq!(a.path_id(), a.clone().path_id());
        assert_ne!(PathRecord::new().path_id(), a.path_id());
    }

    #[test]
    fn branch_and_loop_records_do_not_collide_trivially() {
        let mut a = PathRecord::new();
        a.push(Decision::Branch {
            id: 1,
            taken: false,
        });
        let mut b = PathRecord::new();
        b.push(Decision::Loop { id: 1, iters: 0 });
        assert_ne!(a.path_id(), b.path_id());
    }

    #[test]
    fn accessors() {
        let mut p = PathRecord::new();
        assert!(p.is_empty());
        p.push(Decision::Loop { id: 3, iters: 7 });
        p.push(Decision::Loop { id: 4, iters: 5 });
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_iterations(), 12);
        assert_eq!(p.loop_iters(3), Some(7));
        assert_eq!(p.loop_iters(9), None);
    }
}
