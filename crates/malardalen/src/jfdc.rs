//! `jfdc` — JPEG forward DCT on an 8×8 block, integer arithmetic
//! (Mälardalen `jfdctint.c`).
//!
//! Two passes (rows then columns) of fixed-point butterfly operations with
//! the libjpeg `FIX_*` constants. Single path: no data-dependent control
//! flow at all.

use mbcr_ir::{ArrayId, Expr, Inputs, Program, ProgramBuilder, Stmt, Var};

use crate::{BenchClass, Benchmark, NamedInput};

/// Block side length.
pub const DIM: u32 = 8;

/// libjpeg fixed-point constants (scaled by 2^13).
pub const FIX_0_541: i64 = 4433;
/// `FIX_0_765322090`.
pub const FIX_0_765: i64 = 6270;
/// `FIX_1_847759065`.
pub const FIX_1_847: i64 = 15137;
/// Descale shift applied after each pass.
pub const PASS_SHIFT: i64 = 2;

struct Vars {
    t0: Var,
    t1: Var,
    t2: Var,
    t3: Var,
    d0: Var,
    d1: Var,
    d2: Var,
    d3: Var,
    z1: Var,
}

/// One DCT pass over the 8 rows (`stride = 1`) or columns (`stride = 8`)
/// of the block. `idx(i, k)` returns the index expression of element `k`
/// of lane `i`.
fn pass(block: ArrayId, lane: Var, v: &Vars, idx: impl Fn(Expr, i64) -> Expr) -> Stmt {
    let l = |k: i64| Expr::load(block, idx(Expr::var(lane), k));
    let s = |k: i64, e: Expr| Stmt::store(block, idx(Expr::var(lane), k), e);
    Stmt::for_(
        lane,
        Expr::c(0),
        Expr::c(i64::from(DIM)),
        DIM,
        vec![
            // Even part of the jfdctint butterfly.
            Stmt::Assign(v.t0, l(0).add(l(7))),
            Stmt::Assign(v.t1, l(1).add(l(6))),
            Stmt::Assign(v.t2, l(2).add(l(5))),
            Stmt::Assign(v.t3, l(3).add(l(4))),
            Stmt::Assign(v.d0, l(0).sub(l(7))),
            Stmt::Assign(v.d1, l(1).sub(l(6))),
            Stmt::Assign(v.d2, l(2).sub(l(5))),
            Stmt::Assign(v.d3, l(3).sub(l(4))),
            s(
                0,
                Expr::var(v.t0)
                    .add(Expr::var(v.t3))
                    .add(Expr::var(v.t1))
                    .add(Expr::var(v.t2))
                    .shl(Expr::c(PASS_SHIFT)),
            ),
            s(
                4,
                Expr::var(v.t0)
                    .add(Expr::var(v.t3))
                    .sub(Expr::var(v.t1))
                    .sub(Expr::var(v.t2))
                    .shl(Expr::c(PASS_SHIFT)),
            ),
            Stmt::Assign(
                v.z1,
                Expr::var(v.t0)
                    .sub(Expr::var(v.t3))
                    .add(Expr::var(v.t1).sub(Expr::var(v.t2)))
                    .mul(Expr::c(FIX_0_541)),
            ),
            s(
                2,
                Expr::var(v.z1)
                    .add(Expr::var(v.t0).sub(Expr::var(v.t3)).mul(Expr::c(FIX_0_765)))
                    .shr(Expr::c(13)),
            ),
            s(
                6,
                Expr::var(v.z1)
                    .sub(Expr::var(v.t1).sub(Expr::var(v.t2)).mul(Expr::c(FIX_1_847)))
                    .shr(Expr::c(13)),
            ),
            // Odd part (condensed: same loads/stores, representative ops).
            s(
                1,
                Expr::var(v.d0)
                    .add(Expr::var(v.d1).mul(Expr::c(FIX_0_541)))
                    .shr(Expr::c(11)),
            ),
            s(
                3,
                Expr::var(v.d1)
                    .sub(Expr::var(v.d2).mul(Expr::c(FIX_0_765)))
                    .shr(Expr::c(11)),
            ),
            s(
                5,
                Expr::var(v.d2)
                    .add(Expr::var(v.d3).mul(Expr::c(FIX_1_847)))
                    .shr(Expr::c(11)),
            ),
            s(
                7,
                Expr::var(v.d3)
                    .sub(Expr::var(v.d0).mul(Expr::c(FIX_0_541)))
                    .shr(Expr::c(11)),
            ),
        ],
    )
}

/// Builds the `jfdc` program: row pass then column pass.
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("jfdc");
    let block = b.array("block", DIM * DIM);
    let lane = b.var("lane");
    let v = Vars {
        t0: b.var("t0"),
        t1: b.var("t1"),
        t2: b.var("t2"),
        t3: b.var("t3"),
        d0: b.var("d0"),
        d1: b.var("d1"),
        d2: b.var("d2"),
        d3: b.var("d3"),
        z1: b.var("z1"),
    };
    let dim = i64::from(DIM);
    // Rows: element k of row i is block[i*8 + k].
    b.push(pass(block, lane, &v, move |i, k| {
        i.mul(Expr::c(dim)).add(Expr::c(k))
    }));
    // Columns: element k of column i is block[k*8 + i].
    b.push(pass(block, lane, &v, move |i, k| Expr::c(k * dim).add(i)));
    b.build().expect("jfdc is well-formed")
}

/// Default input: a deterministic sample block.
#[must_use]
pub fn default_input() -> Inputs {
    let p = program();
    let block = p.array_by_name("block").expect("block");
    Inputs::new().with_array(
        block,
        (0..DIM * DIM)
            .map(|k| i64::from(k * 3 % 128) - 64)
            .collect(),
    )
}

/// Single-path: one canonical vector.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    vec![NamedInput {
        name: "default".into(),
        inputs: default_input(),
    }]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "jfdc",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::SinglePath,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn runs_and_touches_whole_block() {
        let p = program();
        let run = execute(&p, &default_input()).unwrap();
        // 2 passes * 8 lanes * (16 loads + 8 stores) = 384 data accesses.
        assert_eq!(run.trace.data_accesses().count(), 384);
    }

    #[test]
    fn is_single_path() {
        let p = program();
        let block = p.array_by_name("block").unwrap();
        let alt = Inputs::new().with_array(block, vec![1; (DIM * DIM) as usize]);
        let r1 = execute(&p, &default_input()).unwrap();
        let r2 = execute(&p, &alt).unwrap();
        assert_eq!(r1.path.path_id(), r2.path.path_id());
        assert_eq!(r1.trace, r2.trace, "identical address sequences");
    }

    #[test]
    fn dc_coefficient_scales_total_energy() {
        // After the row pass, element 0 of each row is the scaled row sum;
        // running on a constant block must yield a constant-sign DC.
        let p = program();
        let block = p.array_by_name("block").unwrap();
        let run = execute(
            &p,
            &Inputs::new().with_array(block, vec![8; (DIM * DIM) as usize]),
        )
        .unwrap();
        let out = run.state.array(block);
        assert!(out[0] > 0, "DC must be positive for a positive block");
    }
}
