//! The sweep service: a coordinator that owns N concurrent sweeps over
//! one shared worker fleet and one artifact store.
//!
//! Since the service redesign there is no one-coordinator-one-sweep
//! assumption left: the accept loop serves **workers** (request → job →
//! done, exactly the shard protocol of old) and **clients** (submit /
//! status / cancel / follow) over the same listener, and all scheduling
//! state lives in an engine-level [`SweepRegistry`] — fair-share across
//! sweeps, cross-sweep stage dedup by content digest, the whole queue
//! persisted in the store so a `kill -9`'d daemon resumes every queued
//! and mid-campaign sweep.
//!
//! Two driving modes share every line of the machinery:
//!
//! * [`serve`] — the one-shot compatibility path (`mbcr coord`,
//!   `mbcr sweep --shards N`): submit one ephemeral sweep, drain the
//!   registry, finalize at the store root (byte-identical to a
//!   single-process `mbcr sweep`), return its outcome.
//! * [`serve_daemon`] — `mbcr serve --listen`: resume the persisted
//!   queue, then run until killed, accepting submissions and streaming
//!   progress to `mbcr report --follow` clients.
//!
//! Worker death is detected three ways: a closed connection requeues the
//! worker's leases immediately, a [`Message::Drain`] frame (graceful
//! SIGTERM drain) does the same after the worker flushed its in-flight
//! campaign chunk, and a lease TTL ([`CoordSettings::lease_ttl`]) catches
//! hung-but-connected workers. Duplicate results from a presumed-dead
//! worker are absorbed: artifacts are content-addressed (idempotent to
//! re-save) and the registry's first record wins.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mbcr::stage::StageKind;
use mbcr_engine::{
    execute_combine, ArtifactStore, EngineError, JobKind, JobRecord, JobStatus, JobSummary,
    Registry, RunOptions, ServiceClaim, StageStore, SubmitOptions, SweepOutcome, SweepRegistry,
    SweepSnapshot, SweepSpec,
};
use mbcr_json::Json;

use crate::lease::LeaseTable;
use crate::protocol::{self, JobResult, Message, Received, SamplePrefix, WireJob};

/// Coordinator knobs orthogonal to any one sweep's spec.
#[derive(Debug, Clone, Copy)]
pub struct CoordSettings {
    /// Execution options for the compatibility submission of [`serve`]
    /// (thread count is ignored — parallelism is the worker fleet).
    /// Wire-submitted sweeps carry their own force/checkpoint options.
    pub run: RunOptions,
    /// Declare a silent worker dead (and requeue its leases) after this
    /// long. Connection loss is detected immediately regardless.
    pub lease_ttl: Duration,
}

impl Default for CoordSettings {
    fn default() -> Self {
        Self {
            run: RunOptions::default(),
            lease_ttl: Duration::from_secs(30),
        }
    }
}

/// How often a `Follow` stream re-checks for progress.
const FOLLOW_TICK: Duration = Duration::from_millis(200);

struct State {
    sweeps: SweepRegistry,
    leases: LeaseTable,
    /// Whether any worker ever connected (a coordinator may legitimately
    /// start before its fleet).
    ever_connected: bool,
    /// Last instant at which at least one worker was live (or work was
    /// still possible without one).
    last_live: Instant,
}

struct Service<'a> {
    registry: &'a Registry,
    store: &'a ArtifactStore,
    settings: CoordSettings,
    /// Runs forever accepting submissions (`true`), or drains the
    /// registry and returns (`false`, the one-shot compatibility mode).
    daemon: bool,
    state: Mutex<State>,
    /// Set when the accept loop exits (success or error): handlers wind
    /// down instead of serving.
    shutdown: AtomicBool,
}

/// Runs one sweep by serving its jobs to TCP workers until every node
/// completes, then finalizes the manifest and Table 2 at the store root
/// exactly like [`mbcr_engine::run_sweep`] — byte-identical outputs are
/// the contract. Any sweeps found persisted in the store's queue resume
/// alongside (into their own `sweeps/<id>/` scopes).
///
/// The listener should already be bound; workers may connect at any time,
/// including after a sweep is underway (elastic fleets) or after earlier
/// workers died (their leases requeue).
///
/// # Errors
///
/// Planning and store I/O errors, a listener failure, or every worker
/// disconnecting with work still pending (after a grace of the lease
/// TTL). Analysis failures do not fail the sweep; they mark jobs failed,
/// as in a single-process run.
pub fn serve(
    spec: &SweepSpec,
    registry: &Registry,
    store: &ArtifactStore,
    settings: &CoordSettings,
    listener: &TcpListener,
) -> Result<SweepOutcome, EngineError> {
    let mut sweeps = SweepRegistry::open(store, registry)?;
    let id = sweeps.submit(
        spec.clone(),
        SubmitOptions {
            force: settings.run.force,
            checkpoint_interval: settings.run.checkpoint_interval,
            persist: false,
        },
        registry,
    )?;
    let service = Service::new(registry, store, *settings, false, sweeps);
    service.run(listener)?;
    let state = service.state.into_inner().expect("state poisoned");
    state
        .sweeps
        .outcome(&id)
        .cloned()
        .ok_or_else(|| EngineError::Analysis(format!("sweep {id} never finalized")))
}

/// Runs the long-lived service daemon (`mbcr serve`): resumes the
/// store's persisted sweep queue, then accepts worker and client
/// connections until the process dies. Submissions are durable before
/// they are acknowledged, so a `kill -9` loses nothing a restart cannot
/// resume.
///
/// # Errors
///
/// Queue-resume and listener failures. (Per-sweep analysis failures are
/// recorded in that sweep's manifest, never fatal to the daemon.)
pub fn serve_daemon(
    registry: &Registry,
    store: &ArtifactStore,
    settings: &CoordSettings,
    listener: &TcpListener,
) -> Result<(), EngineError> {
    let sweeps = SweepRegistry::open(store, registry)?;
    let service = Service::new(registry, store, *settings, true, sweeps);
    service.run(listener)
}

impl<'a> Service<'a> {
    fn new(
        registry: &'a Registry,
        store: &'a ArtifactStore,
        settings: CoordSettings,
        daemon: bool,
        sweeps: SweepRegistry,
    ) -> Self {
        Self {
            registry,
            store,
            settings,
            daemon,
            state: Mutex::new(State {
                sweeps,
                leases: LeaseTable::new(settings.lease_ttl),
                ever_connected: false,
                last_live: Instant::now(),
            }),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The accept loop: hand each connection to a handler thread, reap
    /// expired leases, and — in drain mode — stop once the registry has
    /// no unfinished sweep left.
    fn run(&self, listener: &TcpListener) -> Result<(), EngineError> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            let mut next_peer = 0u64;
            let mut next_finalize_retry = Instant::now();
            let result = loop {
                if !self.daemon && self.finished() {
                    break Ok(());
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        next_peer += 1;
                        let peer = next_peer;
                        let service = &*self;
                        scope.spawn(move || handle_connection(service, stream, peer));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => break Err(EngineError::Io(e)),
                }
                let now = Instant::now();
                self.reap_expired(now);
                // A drained sweep whose manifest write failed (ENOSPC,
                // transient store trouble) gets no further records to
                // retry finalization from — re-attempt it here. One-shot
                // services propagate the failure (the old `serve`
                // semantics); daemons log and keep retrying.
                if now >= next_finalize_retry {
                    next_finalize_retry = now + Duration::from_secs(2);
                    if let Err(e) = self.lock().sweeps.retry_finalize() {
                        if self.daemon {
                            eprintln!("coordinator: finalization still failing: {e}");
                        } else {
                            break Err(e);
                        }
                    }
                }
                if !self.daemon {
                    if let Some(stall) = self.stalled(now) {
                        break Err(stall);
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            };
            // Handlers notice the flag within one read timeout and deliver
            // a final Shutdown/FollowEnd to their peer; the scope then
            // joins them.
            self.shutdown.store(true, Ordering::Release);
            result
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("state poisoned")
    }

    fn finished(&self) -> bool {
        self.lock().sweeps.finished()
    }

    fn winding_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn register(&self, worker: u64) {
        let mut state = self.lock();
        state.ever_connected = true;
        state.leases.touch(worker, Instant::now());
    }

    fn touch(&self, worker: u64) {
        let mut state = self.lock();
        state.leases.touch(worker, Instant::now());
    }

    /// A worker's connection ended (or it drained): evict it and requeue
    /// its leases across every sweep.
    fn drop_worker(&self, worker: u64, how: &str) {
        let mut state = self.lock();
        state.leases.remove(worker);
        let requeued = state.sweeps.requeue_worker(worker);
        if !requeued.is_empty() {
            eprintln!(
                "coordinator: worker {worker} {how} with {} leased job(s); requeued",
                requeued.len()
            );
        }
    }

    /// Requeues the leases of workers whose TTL lapsed (hung process,
    /// partitioned host — connection loss is handled by `drop_worker`).
    fn reap_expired(&self, now: Instant) {
        let mut state = self.lock();
        for worker in state.leases.expired(now) {
            let requeued = state.sweeps.requeue_worker(worker);
            eprintln!(
                "coordinator: worker {worker} lease expired with {} job(s); requeued",
                requeued.len()
            );
        }
    }

    /// An error once every worker is gone and stayed gone for a lease TTL
    /// with work still pending — better than hanging a one-shot sweep
    /// forever. (Daemons never stall out: an empty fleet is a legitimate
    /// idle state for them.)
    fn stalled(&self, now: Instant) -> Option<EngineError> {
        let mut state = self.lock();
        if state.sweeps.finished() || !state.ever_connected || state.leases.live() > 0 {
            state.last_live = now;
            return None;
        }
        let grace = self.settings.lease_ttl.max(Duration::from_secs(5));
        if now.duration_since(state.last_live) <= grace {
            return None;
        }
        Some(EngineError::Analysis(
            "all workers disconnected with jobs unfinished".to_string(),
        ))
    }

    /// Records a job's terminal state in the registry (which unblocks
    /// dependents and cross-sweep waiters and finalizes the sweep when
    /// drained). The fsync'd journal append happens *before* the state
    /// lock is taken, so the fleet never queues behind per-record fsync
    /// latency.
    fn record(
        &self,
        claim: &ServiceClaim,
        status: JobStatus,
        error: Option<String>,
        summary: Option<JobSummary>,
    ) {
        let record = JobRecord {
            key: claim.plan.keys[claim.job].clone(),
            label: claim.plan.graph.jobs[claim.job].label(),
            status,
            error,
            summary,
        };
        self.record_journaled(&claim.sweep, claim.job, claim.persist, record);
    }

    /// Journals (outside the lock, persistent sweeps only), then records.
    fn record_journaled(&self, sweep: &str, job: usize, persist: bool, record: JobRecord) {
        if persist {
            if let Err(e) = SweepRegistry::journal_record(self.store, sweep, job, &record) {
                eprintln!(
                    "coordinator: journaling job {job} of {sweep} failed: {e} \
                     (a restart will re-run it)"
                );
            }
        }
        let mut state = self.lock();
        if let Err(e) = state.sweeps.record(sweep, job, record, true) {
            eprintln!("coordinator: finalizing after job {job} of {sweep} failed: {e}");
        }
    }

    /// Answers one job request: skips cached nodes, runs combine nodes
    /// inline, and ships the first stage node that actually needs a
    /// worker. `Wait` when everything runnable is leased elsewhere (or a
    /// daemon is idle), `Shutdown` when a one-shot service drained.
    ///
    /// Only the lease transition itself holds the state lock — cache
    /// probes, combine writes and wire-job assembly all do store I/O and
    /// must not stall every other peer's request (a paper-scale fit job
    /// ships a multi-megabyte chunk log). That is safe because the
    /// claimed node is leased to this worker: nobody else touches it
    /// until it is recorded or the lease is revoked.
    fn claim(&self, worker: u64) -> Message {
        loop {
            let claim = {
                let mut state = self.lock();
                if self.winding_down() {
                    return Message::Shutdown;
                }
                match state.sweeps.claim(worker) {
                    Some(claim) => claim,
                    None => {
                        if !self.daemon && state.sweeps.finished() {
                            return Message::Shutdown;
                        }
                        return Message::Wait;
                    }
                }
            };
            if !claim.force {
                if let Some(summary) = claim.plan.cached_summary(claim.job, self.store) {
                    self.record(&claim, JobStatus::Skipped, None, Some(summary));
                    continue;
                }
            }
            match &claim.plan.graph.jobs[claim.job].kind {
                JobKind::MultipathCombine => {
                    let deps = self.lock().sweeps.dep_summaries(&claim.sweep, claim.job);
                    let job = &claim.plan.graph.jobs[claim.job];
                    let key = &claim.plan.keys[claim.job];
                    let outcome = execute_combine(job, key, &deps).and_then(|(summary, result)| {
                        self.store.write_job(key, &summary, result, None)?;
                        Ok(summary)
                    });
                    match outcome {
                        Ok(summary) => {
                            self.record(&claim, JobStatus::Executed, None, Some(summary));
                        }
                        Err(e) => {
                            self.record(&claim, JobStatus::Failed, Some(e.to_string()), None);
                        }
                    }
                }
                JobKind::Stage { .. } => match self.build_wire_job(&claim) {
                    Ok(wire) => return Message::Job(Box::new(wire)),
                    Err(e) => {
                        self.record(&claim, JobStatus::Failed, Some(e.to_string()), None);
                    }
                },
            }
        }
    }

    /// Assembles the shipment for one stage job: every upstream stage
    /// artifact present in the store (the worker's session loads them
    /// instead of recomputing), plus the campaign chunk-log prefix when
    /// the job is at or past the campaign stage — the adoption path for
    /// re-leased in-flight campaigns — and the sweep's analysis knobs,
    /// which keep the worker sweep-agnostic.
    fn build_wire_job(&self, claim: &ServiceClaim) -> Result<WireJob, EngineError> {
        let plan = &claim.plan;
        let spec = plan.graph.jobs[claim.job].clone();
        let target = spec.kind.stage().expect("stage node");
        let digests = plan
            .stage_digests(claim.job, self.registry)?
            .expect("stage node");
        let stages = digests.pipeline().stages();
        let at = stages
            .iter()
            .position(|&s| s == target)
            .expect("target in pipeline");
        let mut artifacts = Vec::new();
        for &stage in &stages[..at] {
            if let Some(doc) = digests.get(stage).and_then(|d| self.store.load_stage(d)) {
                artifacts.push(doc);
            }
        }
        let mut prefix = None;
        if let Some(digest) = digests.get(StageKind::Campaign) {
            let campaign_at = stages
                .iter()
                .position(|&s| s == StageKind::Campaign)
                .expect("campaign digest implies a campaign stage");
            if claim.force && target == StageKind::Campaign {
                // Force means re-simulate from scratch: discard the log so
                // the fresh run rewrites it (the single-process repair
                // semantics), and ship no prefix.
                self.store.reset_samples(digest)?;
            } else if at >= campaign_at {
                prefix = StageStore::load_samples(self.store, digest)
                    .filter(|samples| !samples.is_empty())
                    .map(|samples| SamplePrefix { digest, samples });
            }
        }
        Ok(WireJob {
            sweep: claim.sweep.clone(),
            job: claim.job,
            key: plan.keys[claim.job].clone(),
            spec,
            knobs: claim.knobs,
            artifacts,
            prefix,
        })
    }

    /// Streams a worker's campaign checkpoint chunk into the store's
    /// chunk log. Append failures are logged, not fatal: a gap (a reset
    /// raced a zombie writer) only costs the marker its cache-hit, which
    /// the validation layer already handles.
    fn chunk(&self, digest: u64, start: usize, total: usize, samples: &[u64]) {
        if let Err(e) = self.store.append_samples(digest, start, total, samples) {
            eprintln!("coordinator: chunk append for {digest:016x} failed: {e}");
        }
    }

    fn reset_log(&self, digest: u64) {
        if let Err(e) = self.store.reset_samples(digest) {
            eprintln!("coordinator: log reset for {digest:016x} failed: {e}");
        }
    }

    /// Merges a worker's finished job: persist its stage artifacts
    /// (content-addressed — racing duplicates are harmless) and fit
    /// payload, then record it with the registry. Returns `false` when
    /// the result is malformed (unknown sweep, out-of-range or
    /// never-leased node) and the peer should be dropped.
    fn complete_remote(&self, result: JobResult) -> bool {
        let (plausible, plan, persist) = {
            let state = self.lock();
            (
                state.sweeps.result_plausible(&result.sweep, result.job),
                state.sweeps.plan(&result.sweep),
                state.sweeps.persistent(&result.sweep),
            )
        };
        if plausible != Some(true) {
            return false;
        }
        let mut error = result.error;
        let mut summary = result.summary;
        for doc in &result.stage_docs {
            let Some(digest) = doc.get("digest").and_then(Json::as_u64) else {
                continue; // not a stage envelope; ignore
            };
            if let Err(e) = self.store.save_stage(digest, doc) {
                error = Some(format!("persisting stage artifact {digest:016x}: {e}"));
                summary = None;
                break;
            }
        }
        let Some(plan) = plan else {
            return true; // terminal sweep: absorb the late result
        };
        if error.is_none() {
            if let (Some(s), Some((doc, sample))) = (&summary, &result.fit) {
                if let Err(e) =
                    self.store
                        .write_job(&plan.keys[result.job], s, doc.clone(), sample.as_deref())
                {
                    error = Some(format!("persisting job artifact: {e}"));
                    summary = None;
                }
            }
        }
        let status = if error.is_none() {
            JobStatus::Executed
        } else {
            JobStatus::Failed
        };
        let record = JobRecord {
            key: plan.keys[result.job].clone(),
            label: plan.graph.jobs[result.job].label(),
            status,
            error,
            summary,
        };
        self.record_journaled(&result.sweep, result.job, persist, record);
        true
    }

    /// Handles a client submission: durable-then-acknowledged.
    fn submit(&self, spec: &Json, force: bool, checkpoint_interval: Option<usize>) -> Message {
        let spec = match SweepSpec::from_json(spec) {
            Ok(spec) => spec,
            Err(e) => {
                return Message::Reject {
                    reason: format!("bad sweep spec: {e}"),
                }
            }
        };
        let opts = SubmitOptions {
            force,
            checkpoint_interval,
            persist: true,
        };
        let mut state = self.lock();
        match state.sweeps.submit(spec, opts, self.registry) {
            Ok(sweep) => Message::Submitted { sweep },
            Err(e) => Message::Reject {
                reason: e.to_string(),
            },
        }
    }

    fn status(&self, sweep: Option<&str>) -> Message {
        let state = self.lock();
        let mut sweeps = state.sweeps.statuses();
        if let Some(id) = sweep {
            sweeps.retain(|s| s.id == id);
            if sweeps.is_empty() {
                return Message::Reject {
                    reason: format!("unknown sweep '{id}'"),
                };
            }
        }
        Message::StatusReport { sweeps }
    }

    fn cancel(&self, sweep: &str) -> Message {
        let mut state = self.lock();
        match state.sweeps.cancel(sweep) {
            Ok(result) => Message::Cancelled {
                sweep: sweep.to_string(),
                state: result.name().to_string(),
            },
            Err(e) => Message::Reject {
                reason: e.to_string(),
            },
        }
    }

    /// Streams progress snapshots for the chosen sweeps until all of
    /// them are terminal (or the service winds down): a `Progress` frame
    /// whenever a snapshot changed — job completions *and* campaign
    /// chunk-log growth — then `FollowEnd`.
    ///
    /// The state lock is held only for in-memory reads, and only on
    /// ticks where the registry's revision moved; campaign chunk-log
    /// scans (real disk I/O, one per campaign node) always run *outside*
    /// the lock, so a follower can never stall the worker fleet.
    fn follow(&self, stream: &mut TcpStream, sweep: Option<String>) -> io::Result<()> {
        let targets: Vec<String> = {
            let state = self.lock();
            match sweep {
                Some(id) => {
                    if !state.sweeps.contains(&id) {
                        drop(state);
                        return protocol::send(
                            stream,
                            &Message::Reject {
                                reason: format!("unknown sweep '{id}'"),
                            },
                        );
                    }
                    vec![id]
                }
                None => state.sweeps.ids(),
            }
        };
        let mut sent: HashMap<String, String> = HashMap::new();
        let mut shells: Vec<(SweepSnapshot, Vec<u64>)> = Vec::new();
        let mut seen_revision = None;
        loop {
            let revision = { self.lock().sweeps.revision() };
            if seen_revision != Some(revision) {
                seen_revision = Some(revision);
                let state = self.lock();
                shells = targets
                    .iter()
                    .filter_map(|id| {
                        state
                            .sweeps
                            .snapshot(id)
                            .map(|shell| (shell, state.sweeps.campaign_digests(id)))
                    })
                    .collect();
            }
            let all_terminal = shells.iter().all(|(shell, _)| shell.state.terminal());
            for (shell, digests) in &shells {
                let mut snapshot = shell.clone();
                snapshot.campaigns = mbcr_engine::campaign_progress_for(self.store, digests);
                let id = snapshot.id.clone();
                let message = Message::Progress(Box::new(snapshot));
                let rendered = message.to_json().to_compact();
                if sent.get(&id) != Some(&rendered) {
                    protocol::send(stream, &message)?;
                    sent.insert(id, rendered);
                }
            }
            if all_terminal || self.winding_down() {
                return protocol::send(stream, &Message::FollowEnd);
            }
            std::thread::sleep(FOLLOW_TICK);
        }
    }
}

fn handle_connection(service: &Service<'_>, mut stream: TcpStream, peer: u64) {
    let _ = stream.set_nodelay(true);
    // The read timeout only bounds how often this handler checks the
    // wind-down flag; `receive_or_idle` guarantees a timeout landing
    // inside a frame resumes the read instead of tearing it.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // Handshake: a peer speaking another schema is refused — loudly, so
    // a misconfigured fleet fails instead of idling — and a connection
    // that never says hello is dropped after ~20 s.
    let mut idle_ticks = 0usize;
    loop {
        match protocol::receive_or_idle(&mut stream) {
            Ok(Received::Message(Message::Hello { schema })) => {
                if schema == protocol::wire_schema() {
                    break;
                }
                let _ = protocol::send(
                    &mut stream,
                    &Message::Reject {
                        reason: format!(
                            "schema mismatch: peer speaks '{schema}', service '{}'",
                            protocol::wire_schema()
                        ),
                    },
                );
                return;
            }
            Ok(Received::Idle) => {
                idle_ticks += 1;
                if idle_ticks > 40 || service.winding_down() {
                    return;
                }
            }
            Ok(Received::Message(_)) => {
                let _ = protocol::send(
                    &mut stream,
                    &Message::Reject {
                        reason: "handshake must start with hello".to_string(),
                    },
                );
                return;
            }
            Ok(Received::Closed) | Err(_) => return,
        }
    }
    let welcome = Message::Welcome {
        schema: protocol::wire_schema(),
    };
    if protocol::send(&mut stream, &welcome).is_err() {
        return;
    }
    // Whether this connection has identified as a worker (sent any frame
    // of the job loop). Clients never enter the lease table, so an idle
    // fleet check cannot be fooled by a lingering `follow` stream.
    let mut is_worker = false;
    let mut drained = false;
    loop {
        match protocol::receive_or_idle(&mut stream) {
            Ok(Received::Message(message)) => {
                match message {
                    Message::Request
                    | Message::Chunk { .. }
                    | Message::ResetLog { .. }
                    | Message::Heartbeat
                    | Message::Done(_)
                    | Message::Drain
                        if !is_worker =>
                    {
                        is_worker = true;
                        service.register(peer);
                        // Re-dispatch below via the worker arms.
                    }
                    _ => {}
                }
                if is_worker {
                    service.touch(peer);
                }
                match message {
                    Message::Request => {
                        let response = service.claim(peer);
                        let shutdown = matches!(response, Message::Shutdown);
                        if protocol::send(&mut stream, &response).is_err() || shutdown {
                            break;
                        }
                    }
                    Message::Chunk {
                        digest,
                        start,
                        total,
                        samples,
                    } => service.chunk(digest, start, total, &samples),
                    Message::ResetLog { digest } => service.reset_log(digest),
                    Message::Heartbeat => {}
                    Message::Done(result) => {
                        if !service.complete_remote(*result) {
                            break;
                        }
                    }
                    Message::Drain => {
                        drained = true;
                        break;
                    }
                    Message::Submit {
                        spec,
                        force,
                        checkpoint_interval,
                    } => {
                        let response = service.submit(&spec, force, checkpoint_interval);
                        if protocol::send(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                    Message::Status { sweep } => {
                        let response = service.status(sweep.as_deref());
                        if protocol::send(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                    Message::Cancel { sweep } => {
                        let response = service.cancel(&sweep);
                        if protocol::send(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                    Message::Follow { sweep } => {
                        let _ = service.follow(&mut stream, sweep);
                        break;
                    }
                    other => {
                        eprintln!(
                            "coordinator: peer {peer} sent unexpected {:?} frame; dropping",
                            other.to_json().get("type")
                        );
                        break;
                    }
                }
            }
            Ok(Received::Idle) => {
                if service.winding_down() {
                    // Idle peer after the service ended (or aborted):
                    // release it and wind the handler down.
                    let _ = protocol::send(&mut stream, &Message::Shutdown);
                    break;
                }
            }
            Ok(Received::Closed) => break,
            Err(e) => {
                eprintln!("coordinator: peer {peer} connection failed: {e}");
                break;
            }
        }
    }
    if is_worker {
        service.drop_worker(peer, if drained { "drained" } else { "lost" });
    }
}
