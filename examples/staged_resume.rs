//! Stage-graph resume: the Figure 3 pipeline as typed, cached stages.
//!
//! A timing engineer rarely gets an analysis right on the first try: the
//! campaign cap, the reporting exceedance, the seed all get revisited. The
//! stage graph makes those iterations cheap — every stage persists an
//! artifact keyed by a content digest over exactly the knobs it consumes,
//! so a re-run recomputes only what a change actually invalidated.
//!
//! This example runs one PUB + TAC + MBPTA analysis cold, then re-runs it
//! twice: once unchanged (everything loads), once with a tighter campaign
//! cap (only the campaign tail and the fit re-execute — the campaign
//! restarts from the convergence boundary of the seed stream, so the
//! result is still bit-identical to a cold run under the new cap).
//!
//! Run with `cargo run --release --example staged_resume`.

use mbcr::stage::{AnalysisSession, MemoryStageStore, StageKind, StageStatus};
use mbcr::AnalysisConfig;

fn report(tag: &str, session: &AnalysisSession<'_>) {
    print!("{tag:<28}");
    for &(stage, status) in session.statuses() {
        let mark = match status {
            StageStatus::Computed => "ran",
            StageStatus::Cached => "cache",
        };
        print!("  {}:{mark}", stage.name());
    }
    println!();
}

fn main() {
    let benchmark = mbcr_malardalen::bs::benchmark();
    let store = MemoryStageStore::default();
    let cfg = AnalysisConfig::builder().seed(42).quick().build();

    // Cold: every stage executes and persists its artifact.
    let mut cold = AnalysisSession::pub_tac(&benchmark.program, &benchmark.default_input, &cfg)
        .with_store(&store);
    cold.advance(StageKind::Fit).expect("cold run");
    report("cold run:", &cold);
    let cold = cold.finish_pub_tac().expect("finish");
    println!(
        "  R_pub = {}, R_tac = {}, campaign = {} runs, pWCET = {:.1}\n",
        cold.r_pub, cold.r_tac, cold.campaign_runs, cold.pwcet_pub_tac
    );

    // Warm: the same configuration resumes entirely from the store.
    let mut warm = AnalysisSession::pub_tac(&benchmark.program, &benchmark.default_input, &cfg)
        .with_store(&store);
    warm.advance(StageKind::Fit).expect("warm run");
    report("warm re-run:", &warm);
    println!();

    // A tighter campaign cap invalidates only the campaign + fit digests:
    // PUB, trace, TAC and convergence artifacts are reused, and the
    // campaign simulates nothing below the convergence boundary.
    let recapped = AnalysisConfig::builder()
        .seed(42)
        .quick()
        .max_campaign_runs(cold.r_pub + 100)
        .build();
    let mut resumed =
        AnalysisSession::pub_tac(&benchmark.program, &benchmark.default_input, &recapped)
            .with_store(&store);
    resumed.advance(StageKind::Fit).expect("resumed run");
    report("after cap change:", &resumed);
    let resumed = resumed.finish_pub_tac().expect("finish");
    println!(
        "  campaign = {} runs (capped: {}), pWCET = {:.1}",
        resumed.campaign_runs, resumed.campaign_capped, resumed.pwcet_pub_tac
    );
    assert_eq!(
        &resumed.sample[..cold.r_pub],
        &cold.sample[..cold.r_pub],
        "the resumed campaign extends the cold run's seed stream"
    );
}
