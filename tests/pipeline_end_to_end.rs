//! End-to-end pipeline tests on the benchmark suite (quick configuration).

use mbcr::prelude::*;

fn quick(seed: u64) -> AnalysisConfig {
    AnalysisConfig::builder()
        .seed(seed)
        .quick()
        .threads(2)
        .build()
}

#[test]
fn bs_full_pipeline_is_consistent() {
    let b = mbcr_malardalen::bs::benchmark();
    let cfg = quick(1);
    let a = analyze_pub_tac(&b.program, &b.default_input, &cfg).expect("analyze");

    // Internal consistency.
    assert_eq!(a.sample.len(), a.campaign_runs);
    assert!(a.r_pub_tac >= a.r_pub as u64);
    assert!(a.r_pub_tac >= a.r_tac);
    let max_observed = *a.sample.iter().max().expect("non-empty") as f64;
    assert!(
        a.pwcet_pub_tac >= max_observed,
        "pWCET {:.0} must cover the observed maximum {max_observed}",
        a.pwcet_pub_tac
    );
    // bs has conflictive layouts: TAC must ask for more than MBPTA alone.
    assert!(a.r_tac > 0, "bs should exhibit conflict groups");
}

#[test]
fn original_vs_pub_tac_on_single_path_benchmark() {
    let b = mbcr_malardalen::fdct::benchmark();
    let cfg = quick(2);
    let orig = analyze_original(&b.program, &b.default_input, &cfg).expect("orig");
    let pt = analyze_pub_tac(&b.program, &b.default_input, &cfg).expect("pub+tac");
    // Single path: PUB inserted nothing, so the traces and the campaigns
    // are statistically the same program.
    assert_eq!(pt.pub_report.constructs.len(), 0);
    assert_eq!(orig.trace_len, pt.trace_len);
    let ratio = pt.pwcet_pub / orig.pwcet_at_exceedance;
    assert!((0.8..1.25).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn multipath_combination_is_minimum() {
    let b = mbcr_malardalen::cnt::benchmark();
    let cfg = quick(3);
    let named: Vec<(String, Inputs)> = b
        .input_vectors
        .iter()
        .map(|v| (v.name.clone(), v.inputs.clone()))
        .collect();
    let multi = analyze_multipath(&b.program, &named, &cfg).expect("multi");
    assert_eq!(multi.per_input.len(), 3);
    let min = multi
        .per_input
        .iter()
        .map(|(_, a)| a.pwcet_pub_tac)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(multi.best_pwcet, min);
}

#[test]
fn whole_suite_analyzes_without_error() {
    let cfg = AnalysisConfig::builder()
        .seed(4)
        .quick()
        .max_campaign_runs(800)
        .threads(2)
        .build();
    for b in mbcr_malardalen::suite() {
        let a = analyze_pub_tac(&b.program, &b.default_input, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(a.pwcet_pub_tac > 0.0, "{}", b.name);
        assert!(!a.sample.is_empty(), "{}", b.name);
    }
}

#[test]
fn campaigns_pass_iid_checks() {
    let b = mbcr_malardalen::janne::benchmark();
    let cfg = quick(5);
    let a = analyze_pub_tac(&b.program, &b.default_input, &cfg).expect("analyze");
    // Independent placement seeds per run: i.i.d. by construction.
    assert!(
        a.iid.passed(0.001),
        "iid evidence too weak: ks={:.4} lb={:.4} runs={:.4}",
        a.iid.ks.p_value,
        a.iid.ljung_box.p_value,
        a.iid.runs.p_value
    );
}

#[test]
fn deterministic_platform_yields_degenerate_pwcet() {
    let b = mbcr_malardalen::bs::benchmark();
    let mut cfg = quick(6);
    cfg.platform = PlatformConfig::deterministic();
    let a = analyze_original(&b.program, &b.default_input, &cfg).expect("analyze");
    // One cache layout only: the pWCET *is* the constant observed time.
    assert_eq!(a.pwcet.quantile(1e-12), a.pwcet.eccdf().max());
}

#[test]
fn seeds_change_samples_but_not_structure() {
    let b = mbcr_malardalen::crc::benchmark();
    let a1 = analyze_pub_tac(&b.program, &b.default_input, &quick(7)).expect("a1");
    let a2 = analyze_pub_tac(&b.program, &b.default_input, &quick(8)).expect("a2");
    assert_ne!(
        a1.sample, a2.sample,
        "different seeds, different measurements"
    );
    assert_eq!(a1.trace_len, a2.trace_len, "same program, same trace");
    assert_eq!(
        a1.pub_report.constructs.len(),
        a2.pub_report.constructs.len(),
        "PUB is deterministic"
    );
}

#[test]
fn exceedance_probability_is_monotone() {
    let b = mbcr_malardalen::bs::benchmark();
    let cfg = quick(9);
    let a = analyze_pub_tac(&b.program, &b.default_input, &cfg).expect("analyze");
    let q9 = a.pwcet.quantile(1e-9);
    let q12 = a.pwcet.quantile(1e-12);
    let q15 = a.pwcet.quantile(1e-15);
    assert!(q9 <= q12 && q12 <= q15, "{q9} <= {q12} <= {q15}");
}
