//! Unified error type of the analysis pipeline.

use std::fmt;

use mbcr_evt::EvtError;
use mbcr_ir::{InterpError, ProgramError};

/// Any failure of the end-to-end analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// Program execution failed (bad inputs, loop bound violation, …).
    Interp(InterpError),
    /// Statistical estimation failed (not enough data, …).
    Evt(EvtError),
    /// Program transformation produced an invalid program.
    Program(ProgramError),
    /// A multipath analysis was asked to combine zero paths.
    EmptyInputs,
    /// A stage store failed to persist an intermediate artifact.
    Store(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Interp(e) => write!(f, "program execution failed: {e}"),
            AnalyzeError::Evt(e) => write!(f, "pWCET estimation failed: {e}"),
            AnalyzeError::Program(e) => write!(f, "program transformation failed: {e}"),
            AnalyzeError::EmptyInputs => {
                write!(f, "multipath analysis needs at least one input vector")
            }
            AnalyzeError::Store(message) => {
                write!(f, "stage artifact store failed: {message}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Interp(e) => Some(e),
            AnalyzeError::Evt(e) => Some(e),
            AnalyzeError::Program(e) => Some(e),
            AnalyzeError::EmptyInputs | AnalyzeError::Store(_) => None,
        }
    }
}

impl From<InterpError> for AnalyzeError {
    fn from(e: InterpError) -> Self {
        AnalyzeError::Interp(e)
    }
}

impl From<EvtError> for AnalyzeError {
    fn from(e: EvtError) -> Self {
        AnalyzeError::Evt(e)
    }
}

impl From<ProgramError> for AnalyzeError {
    fn from(e: ProgramError) -> Self {
        AnalyzeError::Program(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_cause() {
        let e = AnalyzeError::from(InterpError::DivByZero);
        assert!(e.to_string().contains("division by zero"));
        let e = AnalyzeError::from(EvtError::DegenerateSample);
        assert!(e.to_string().contains("deterministic"));
        let e = AnalyzeError::from(ProgramError::UnknownVar(1));
        assert!(e.to_string().contains("v1"));
    }

    #[test]
    fn source_is_preserved() {
        use std::error::Error;
        let e = AnalyzeError::from(InterpError::DivByZero);
        assert!(e.source().is_some());
    }
}
