//! Sweep execution: spec → stage-granular job DAG → work-stealing pool →
//! artifact store.
//!
//! Since the stage-graph redesign, [`expand`] emits one DAG node per
//! pipeline stage with real data dependencies: a campaign node depends on
//! its converge and per-cache TAC nodes, a fit node on its campaign, and a
//! multipath combine node on its cell's per-input fit nodes. Long
//! campaigns therefore overlap TAC discovery of later cells, and a warm
//! re-run resumes from the last stage a spec change did not invalidate.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mbcr::stage::{
    cache_class, path_coverage, rollup_to_json, stage_artifact_data, AnalysisSession, PipelineKind,
    StageDigests, StageKind, StageStore,
};
use mbcr::AnalysisConfig;
use mbcr_ir::Inputs;
use mbcr_json::{Json, Serialize};
use mbcr_malardalen::Benchmark;

use crate::{
    execute_dag, execute_dag_prioritized, AnalysisKind, ArtifactStore, EngineError, GeometrySpec,
    InputSelection, JobGraph, JobKind, JobSpec, JobSummary, Registry, SweepSpec, Table2Row,
};

/// Execution options orthogonal to the spec (they never affect results,
/// only scheduling, durability and caching).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunOptions {
    /// Worker threads for the job pool; `0` means one per core.
    pub threads: usize,
    /// Re-execute jobs even when a cached artifact exists.
    pub force: bool,
    /// Override [`mbcr::AnalysisConfig::checkpoint_interval`]: checkpoint
    /// running campaigns to their chunk log every this many runs (`0`
    /// checkpoints only at completion). `None` keeps the config default.
    pub checkpoint_interval: Option<usize>,
    /// Override [`mbcr::AnalysisConfig::batch_width`]: cache layouts
    /// simulated per trace pass in measurement campaigns. Digest-neutral —
    /// samples are bit-identical at every width. `None` keeps the tuned
    /// config default.
    pub batch_width: Option<usize>,
    /// Order ready jobs by the static cache-analysis pre-screen: cells
    /// whose access sites the abstract classification pins least (the
    /// widest spread between static best- and worst-case miss bounds)
    /// are simulated first. Pure scheduling — results are collected in
    /// submission order, so run artifacts are byte-identical either way.
    pub prescreen: bool,
}

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran in this invocation.
    Executed,
    /// Satisfied from the artifact store.
    Skipped,
    /// The analysis (or a dependency) failed.
    Failed,
}

impl JobStatus {
    /// Stable spelling for manifests.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Executed => "executed",
            JobStatus::Skipped => "skipped",
            JobStatus::Failed => "failed",
        }
    }

    /// Inverse of [`JobStatus::name`].
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "executed" => Some(JobStatus::Executed),
            "skipped" => Some(JobStatus::Skipped),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }
}

/// Per-job outcome, as recorded in the manifest.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Artifact key.
    pub key: String,
    /// Human-readable job identity.
    pub label: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Failure message, when failed.
    pub error: Option<String>,
    /// The result summary, when not failed.
    pub summary: Option<JobSummary>,
}

impl Serialize for JobRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("key".to_string(), self.key.as_str().into()),
            ("label".to_string(), self.label.as_str().into()),
            ("status".to_string(), self.status.name().into()),
            ("error".to_string(), Serialize::to_json(&self.error)),
            ("summary".to_string(), Serialize::to_json(&self.summary)),
        ])
    }
}

impl JobRecord {
    /// Inverse of the [`Serialize`] form (manifests, record journals).
    /// `None` on malformed input — a torn journal line is skipped, never
    /// trusted.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            key: v.get("key")?.as_str()?.to_string(),
            label: v.get("label")?.as_str()?.to_string(),
            status: JobStatus::parse(v.get("status")?.as_str()?)?,
            error: match v.get("error") {
                None | Some(Json::Null) => None,
                Some(other) => Some(other.as_str()?.to_string()),
            },
            summary: match v.get("summary") {
                None | Some(Json::Null) => None,
                Some(other) => Some(JobSummary::from_json(other)?),
            },
        })
    }
}

/// What a whole sweep produced.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Jobs executed in this invocation.
    pub executed: usize,
    /// Jobs satisfied from the artifact store.
    pub skipped: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Per-job records, in expansion order.
    pub records: Vec<JobRecord>,
    /// The Table 2 aggregation, one row per (benchmark, input, geometry,
    /// seed) cell.
    pub rows: Vec<Table2Row>,
    /// Wall-clock time of this invocation.
    pub elapsed: Duration,
}

fn resolve_input<'b>(benchmark: &'b Benchmark, name: &str) -> Result<&'b Inputs, EngineError> {
    if name == "default" {
        return Ok(&benchmark.default_input);
    }
    benchmark
        .input_vectors
        .iter()
        .find(|v| v.name == name)
        .map(|v| &v.inputs)
        .ok_or_else(|| EngineError::UnknownInput {
            benchmark: benchmark.name.to_string(),
            input: name.to_string(),
        })
}

fn selected_inputs(spec: &SweepSpec, benchmark: &Benchmark) -> Result<Vec<String>, EngineError> {
    match &spec.inputs {
        // Always the benchmark's `default_input` — the same input the cell's
        // Original job analyses, so the R_orig and R_pub columns of one
        // Table 2 row never come from different inputs.
        InputSelection::Default => Ok(vec!["default".to_string()]),
        InputSelection::All => {
            if benchmark.input_vectors.is_empty() {
                Ok(vec!["default".to_string()])
            } else {
                Ok(benchmark
                    .input_vectors
                    .iter()
                    .map(|v| v.name.clone())
                    .collect())
            }
        }
        InputSelection::Named(names) => {
            for name in names {
                resolve_input(benchmark, name)?;
            }
            Ok(names.clone())
        }
    }
}

fn dedup_preserving<T: PartialEq + Clone>(items: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(items.len());
    for item in items {
        if !out.contains(item) {
            out.push(item.clone());
        }
    }
    out
}

/// Expansion-time node index: content digest plus the input-vector name.
/// Keying by name keeps two *named* inputs that happen to resolve to the
/// same vector as separate pipelines (each keeps its Table 2 row; the
/// content-addressed stage store still dedups the underlying work), while
/// the digest part collapses identical stages across seeds and geometries.
type NodeIndex = HashMap<(u64, Option<String>), usize>;

/// Pushes a stage node, or returns the index of an existing node with the
/// same content digest and input name — seed-free stages (PUB transform,
/// path trace) are shared across every seed and geometry of the sweep.
fn push_stage(
    graph: &mut JobGraph,
    by_digest: &mut NodeIndex,
    job: JobSpec,
    digest: u64,
    deps: Vec<usize>,
) -> usize {
    let slot = (digest, job.kind.input().map(str::to_string));
    if let Some(&at) = by_digest.get(&slot) {
        return at;
    }
    let at = graph.jobs.len();
    graph.jobs.push(job);
    graph.deps.push(deps);
    graph.digests.push(Some(digest));
    by_digest.insert(slot, at);
    at
}

/// Expands a spec into its stage-granular job DAG: for every cell of the
/// benchmarks × inputs × geometries × seeds cross product, one node per
/// pipeline stage (trace → converge → fit for the original baseline;
/// pub → trace → tac×2 → converge → campaign → fit per pubbed path), plus
/// one `MultipathCombine` node per cell with at least two pubbed paths
/// (Corollary 2 is the identity on a single path). Nodes are deduplicated
/// by stage digest, so input-invariant stages collapse across cells.
///
/// # Errors
///
/// [`EngineError::UnknownBenchmark`] / [`EngineError::UnknownInput`] /
/// [`EngineError::Spec`] on names that do not resolve.
pub fn expand(spec: &SweepSpec, registry: &Registry) -> Result<JobGraph, EngineError> {
    let benchmarks: Vec<String> = if spec.benchmarks.is_empty() {
        registry.names().iter().map(ToString::to_string).collect()
    } else {
        dedup_preserving(&spec.benchmarks)
    };
    if benchmarks.is_empty() {
        return Err(EngineError::Spec("no benchmarks to sweep".into()));
    }
    let geometries = dedup_preserving(&spec.geometries);
    let seeds = dedup_preserving(&spec.seeds);
    let wants = |kind: AnalysisKind| spec.analyses.contains(&kind);
    let mut graph = JobGraph::default();
    let mut by_digest: NodeIndex = HashMap::new();
    for name in &benchmarks {
        let benchmark = registry
            .get(name)
            .ok_or_else(|| EngineError::UnknownBenchmark(name.clone()))?;
        let inputs = dedup_preserving(&selected_inputs(spec, benchmark)?);
        for geometry in &geometries {
            for &master_seed in &seeds {
                let cell = |kind: JobKind| JobSpec {
                    benchmark: name.clone(),
                    geometry: *geometry,
                    master_seed,
                    kind,
                };
                if wants(AnalysisKind::Original) {
                    let probe = cell(JobKind::original_stage(StageKind::Trace));
                    let cfg = spec.analysis_config(geometry, probe.job_seed())?;
                    let digests = StageDigests::compute(
                        &benchmark.program,
                        &benchmark.default_input,
                        &cfg,
                        PipelineKind::Original,
                    );
                    let d = |s: StageKind| digests.get(s).expect("original stage");
                    let node =
                        |g: &mut JobGraph, bd: &mut NodeIndex, s: StageKind, deps: Vec<usize>| {
                            push_stage(g, bd, cell(JobKind::original_stage(s)), d(s), deps)
                        };
                    let t = node(&mut graph, &mut by_digest, StageKind::Trace, vec![]);
                    let c = node(&mut graph, &mut by_digest, StageKind::Converge, vec![t]);
                    node(&mut graph, &mut by_digest, StageKind::Fit, vec![c]);
                }
                let mut fit_ids = Vec::new();
                if wants(AnalysisKind::PubTac) || wants(AnalysisKind::Multipath) {
                    for input_name in &inputs {
                        let input = resolve_input(benchmark, input_name)?;
                        let probe =
                            cell(JobKind::pub_tac_stage(StageKind::Trace, input_name.clone()));
                        let cfg = spec.analysis_config(geometry, probe.job_seed())?;
                        let digests = StageDigests::compute(
                            &benchmark.program,
                            input,
                            &cfg,
                            PipelineKind::PubTac,
                        );
                        let d = |s: StageKind| digests.get(s).expect("pub_tac stage");
                        let node = |g: &mut JobGraph,
                                    bd: &mut NodeIndex,
                                    s: StageKind,
                                    deps: Vec<usize>| {
                            push_stage(
                                g,
                                bd,
                                cell(JobKind::pub_tac_stage(s, input_name.clone())),
                                d(s),
                                deps,
                            )
                        };
                        // The PUB transform is input-independent: one node
                        // per benchmark × pub-config, shared by every path.
                        let p = push_stage(
                            &mut graph,
                            &mut by_digest,
                            cell(JobKind::Stage {
                                analysis: AnalysisKind::PubTac,
                                stage: StageKind::Pub,
                                input: None,
                            }),
                            d(StageKind::Pub),
                            vec![],
                        );
                        let t = node(&mut graph, &mut by_digest, StageKind::Trace, vec![p]);
                        let ti = node(&mut graph, &mut by_digest, StageKind::TacIl1, vec![t]);
                        let td = node(&mut graph, &mut by_digest, StageKind::TacDl1, vec![t]);
                        let cv = node(&mut graph, &mut by_digest, StageKind::Converge, vec![t]);
                        let cp = node(
                            &mut graph,
                            &mut by_digest,
                            StageKind::Campaign,
                            vec![cv, ti, td],
                        );
                        fit_ids.push(node(&mut graph, &mut by_digest, StageKind::Fit, vec![cp]));
                    }
                }
                if wants(AnalysisKind::Multipath) && fit_ids.len() >= 2 {
                    graph.jobs.push(cell(JobKind::MultipathCombine));
                    graph.deps.push(fit_ids);
                    graph.digests.push(None);
                }
            }
        }
    }
    Ok(graph)
}

/// The executable form of one sweep: the expanded stage DAG plus each
/// node's content key and fully-instantiated analysis config. This is the
/// shared planning step of every executor — the in-process pool
/// ([`run_sweep`]) and the `mbcr-shard` coordinator both build one, so a
/// sharded sweep schedules *exactly* the jobs, keys and configs a
/// single-process sweep would.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The stage-granular job DAG.
    pub graph: JobGraph,
    /// Per-job content-hash artifact keys, parallel to the graph.
    pub keys: Vec<String>,
    /// Per-job analysis configs (`None` for combine nodes).
    pub cfgs: Vec<Option<AnalysisConfig>>,
}

impl SweepPlan {
    /// Expands `spec` and computes every node's key and config.
    ///
    /// Stage jobs are keyed by their stage digest (so a spec change
    /// invalidates exactly the affected stages); combine jobs have no
    /// config of their own: their key hashes the dependency keys, so
    /// invalidation cascades.
    ///
    /// # Errors
    ///
    /// Expansion errors ([`expand`]) and invalid geometries.
    pub fn new(
        spec: &SweepSpec,
        registry: &Registry,
        opts: &RunOptions,
    ) -> Result<Self, EngineError> {
        let graph = expand(spec, registry)?;
        let mut cfgs: Vec<Option<AnalysisConfig>> = Vec::with_capacity(graph.len());
        let mut keys: Vec<String> = Vec::with_capacity(graph.len());
        for (i, job) in graph.jobs.iter().enumerate() {
            match job.kind {
                JobKind::MultipathCombine => {
                    let mut digest = mbcr_json::FNV_OFFSET;
                    for &dep in &graph.deps[i] {
                        digest = mbcr_json::fnv1a(digest, &keys[dep]);
                    }
                    cfgs.push(None);
                    keys.push(job.key(digest));
                }
                JobKind::Stage { .. } => {
                    let mut cfg = spec.analysis_config(&job.geometry, job.job_seed())?;
                    if let Some(interval) = opts.checkpoint_interval {
                        cfg.checkpoint_interval = interval;
                    }
                    if let Some(width) = opts.batch_width {
                        cfg.batch_width = width.max(1);
                    }
                    let digest = graph.digests[i].expect("stage nodes carry digests");
                    keys.push(job.key(digest));
                    cfgs.push(Some(cfg));
                }
            }
        }
        Ok(Self { graph, keys, cfgs })
    }

    /// Number of jobs in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the plan has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The full per-stage digest set of stage node `i` — what a
    /// distributed executor needs to locate the node's upstream artifacts
    /// in a store. `None` for combine nodes.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownBenchmark`] / [`EngineError::UnknownInput`]
    /// on names that do not resolve.
    pub fn stage_digests(
        &self,
        i: usize,
        registry: &Registry,
    ) -> Result<Option<StageDigests>, EngineError> {
        let job = &self.graph.jobs[i];
        let JobKind::Stage {
            analysis, input, ..
        } = &job.kind
        else {
            return Ok(None);
        };
        let benchmark = registry
            .get(&job.benchmark)
            .ok_or_else(|| EngineError::UnknownBenchmark(job.benchmark.clone()))?;
        let inputs = match input {
            Some(name) => resolve_input(benchmark, name)?,
            None => &benchmark.default_input,
        };
        let cfg = self.cfgs[i].as_ref().expect("stage jobs carry a config");
        let pipeline = match analysis {
            AnalysisKind::Original => PipelineKind::Original,
            AnalysisKind::PubTac => PipelineKind::PubTac,
            AnalysisKind::Multipath => unreachable!("combine jobs are not stage nodes"),
        };
        Ok(Some(StageDigests::compute(
            &benchmark.program,
            inputs,
            cfg,
            pipeline,
        )))
    }

    /// The cached summary of job `i`, when `store` already holds a valid
    /// artifact for it — the whole skip-if-cached policy, shared by every
    /// executor.
    ///
    /// Stage jobs are cached by their content-addressed stage artifact;
    /// combine jobs by their legacy job artifact. A fit node must
    /// additionally have its full-result job artifact (`jobs/<key>.json`
    /// plus samples) — a store shipped with only the `stages/` dir
    /// regenerates them instead of reporting cached. A campaign
    /// completion marker without a chunk log that covers it and matches
    /// its checksum (torn, truncated, pruned, or divergent) is not cached
    /// — the node re-executes and resumes from whatever valid log prefix
    /// exists. The validation is the session's own
    /// ([`mbcr::stage::campaign_marker_sample`]), so the scheduler and
    /// the session can never disagree on what a campaign cache hit is.
    #[must_use]
    pub fn cached_summary(&self, i: usize, store: &ArtifactStore) -> Option<JobSummary> {
        let job = &self.graph.jobs[i];
        let key = &self.keys[i];
        match (&job.kind, self.graph.digests[i]) {
            (JobKind::Stage { stage, .. }, Some(digest)) => load_valid_stage(store, *stage, digest)
                .filter(|_| *stage != StageKind::Fit || store.has_artifact(key))
                .filter(|data| {
                    *stage != StageKind::Campaign
                        || mbcr::stage::campaign_marker_sample(data, store, digest).is_some()
                })
                .map(|data| summary_from_stage_artifact(job, key, *stage, &data)),
            _ => store
                .has_artifact(key)
                .then(|| store.load_summary(key))
                .flatten(),
        }
    }
}

/// Runs a sweep end-to-end: plan, schedule on the in-process pool,
/// persist artifacts, aggregate Table 2, write the manifest.
///
/// Completed stages found in `store` are skipped unless
/// [`RunOptions::force`]; a second invocation with an unchanged spec
/// therefore executes nothing and still reproduces every row, and an
/// invocation after a partial knob change (say, a new
/// `max_campaign_runs`) resumes mid-analysis, re-executing only the
/// campaign and fit stages whose digests the change invalidated.
///
/// # Errors
///
/// Spec/expansion errors and store I/O errors fail the sweep as a whole.
/// *Analysis* failures do not: they mark the affected job (and its
/// dependents) failed in the outcome and manifest.
pub fn run_sweep(
    spec: &SweepSpec,
    registry: &Registry,
    store: &ArtifactStore,
    opts: &RunOptions,
) -> Result<SweepOutcome, EngineError> {
    let start = Instant::now();
    let plan = SweepPlan::new(spec, registry, opts)?;

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        opts.threads
    };

    // Completed summaries, readable by dependents while the pool runs.
    let slots: Vec<Mutex<Option<JobSummary>>> = (0..plan.len()).map(|_| Mutex::new(None)).collect();

    let priority = if opts.prescreen {
        Some(prescreen_priorities(&plan, registry)?)
    } else {
        None
    };
    let runner = |i: usize| {
        let job = &plan.graph.jobs[i];
        let key = &plan.keys[i];
        let record = |status, error, summary: Option<JobSummary>| JobRecord {
            key: key.clone(),
            label: job.label(),
            status,
            error,
            summary,
        };
        if !opts.force {
            if let Some(summary) = plan.cached_summary(i, store) {
                *slots[i].lock().expect("slot poisoned") = Some(summary.clone());
                return record(JobStatus::Skipped, None, Some(summary));
            }
        }
        let outcome = match &job.kind {
            JobKind::Stage { .. } => execute_stage(
                job,
                key,
                plan.cfgs[i].as_ref().expect("stage jobs carry a config"),
                registry,
                store,
                opts.force,
            )
            .and_then(|out| {
                if let Some((result, sample)) = out.fit {
                    store.write_job(key, &out.summary, result, sample.as_deref())?;
                }
                Ok(out.summary)
            }),
            JobKind::MultipathCombine => {
                let dep_summaries: Vec<Option<JobSummary>> = plan.graph.deps[i]
                    .iter()
                    .map(|&dep| slots[dep].lock().expect("slot poisoned").clone())
                    .collect();
                execute_combine(job, key, &dep_summaries).and_then(|(summary, result)| {
                    store.write_job(key, &summary, result, None)?;
                    Ok(summary)
                })
            }
        };
        match outcome {
            Ok(summary) => {
                *slots[i].lock().expect("slot poisoned") = Some(summary.clone());
                record(JobStatus::Executed, None, Some(summary))
            }
            Err(e) => record(JobStatus::Failed, Some(e.to_string()), None),
        }
    };
    let records = match &priority {
        Some(priority) => execute_dag_prioritized(&plan.graph.deps, threads, priority, runner),
        None => execute_dag(&plan.graph.deps, threads, runner),
    };

    finalize_sweep(spec, records, registry, store, start.elapsed())
}

/// The static pre-screen's claim priorities: per job, the fraction of its
/// benchmark × geometry cell's access sites the abstract classification
/// leaves *not-classified* (in parts per million, summed over both L1s) —
/// the spread between the cell's static best- and worst-case miss bounds.
/// Least-constrained cells score highest and are simulated first, so the
/// measurements the static analysis says least about arrive earliest.
/// Combine nodes score zero (they are `min`s over numbers in hand).
fn prescreen_priorities(plan: &SweepPlan, registry: &Registry) -> Result<Vec<u64>, EngineError> {
    let mut scores: HashMap<(String, String), u64> = HashMap::new();
    let mut out = Vec::with_capacity(plan.graph.jobs.len());
    for job in &plan.graph.jobs {
        let score = match &job.kind {
            JobKind::MultipathCombine => 0,
            JobKind::Stage { .. } => {
                let key = (job.benchmark.clone(), job.geometry.label());
                if let Some(&score) = scores.get(&key) {
                    score
                } else {
                    let benchmark = registry
                        .get(&job.benchmark)
                        .ok_or_else(|| EngineError::UnknownBenchmark(job.benchmark.clone()))?;
                    let g = job.geometry.geometry()?;
                    // No store: the pre-screen must not write artifacts a
                    // hook-less run would lack.
                    let rollup = cache_class(&benchmark.program, g, g, None)
                        .map_err(|e| EngineError::Analysis(format!("{key:?}: cache class: {e}")))?;
                    let sites = rollup.il1.sites + rollup.dl1.sites;
                    let nc = rollup.il1.not_classified + rollup.dl1.not_classified;
                    let score = (nc as u64) * 1_000_000 / (sites.max(1) as u64);
                    scores.insert(key, score);
                    score
                }
            }
        };
        out.push(score);
    }
    Ok(out)
}

/// Computes the manifest's static-path-coverage block: one entry per swept
/// benchmark relating the Ball–Larus static path count to the distinct paths
/// the spec's selected input vectors actually exercise. The underlying
/// [`mbcr::stage::PathCoverage`] artifacts are digest-keyed in the store, so
/// warm re-runs (and shard coordinators merging the same sweep) reuse them.
fn coverage_block(
    spec: &SweepSpec,
    registry: &Registry,
    store: &ArtifactStore,
) -> Result<Json, EngineError> {
    let names: Vec<String> = if spec.benchmarks.is_empty() {
        registry.names().iter().map(ToString::to_string).collect()
    } else {
        dedup_preserving(&spec.benchmarks)
    };
    let mut entries = Vec::with_capacity(names.len());
    for name in names {
        // Unknown names already failed expansion; a registry that shrank
        // between planning and finalization just drops the entry.
        let Some(benchmark) = registry.get(&name) else {
            continue;
        };
        let mut inputs = Vec::new();
        for input in selected_inputs(spec, benchmark)? {
            inputs.push(resolve_input(benchmark, &input)?.clone());
        }
        let coverage = path_coverage(&benchmark.program, &inputs, Some(store))
            .map_err(|e| EngineError::Analysis(format!("{name}: path coverage: {e}")))?;
        entries.push((name, coverage.to_json()));
    }
    Ok(Json::Obj(entries))
}

/// Computes the manifest's static cache-classification block: one entry per
/// swept benchmark × geometry with the abstract-interpretation hit/miss
/// rollup ([`mbcr::stage::cache_class`]). Digest-keyed in the store like
/// the coverage artifacts, so warm re-runs and metrics scrapes reuse them.
fn cache_class_block(
    spec: &SweepSpec,
    registry: &Registry,
    store: &ArtifactStore,
) -> Result<Json, EngineError> {
    let names: Vec<String> = if spec.benchmarks.is_empty() {
        registry.names().iter().map(ToString::to_string).collect()
    } else {
        dedup_preserving(&spec.benchmarks)
    };
    let mut geometries: Vec<&GeometrySpec> = Vec::new();
    for g in &spec.geometries {
        if !geometries.contains(&g) {
            geometries.push(g);
        }
    }
    let mut entries = Vec::with_capacity(names.len());
    for name in names {
        // Unknown names already failed expansion; a registry that shrank
        // between planning and finalization just drops the entry.
        let Some(benchmark) = registry.get(&name) else {
            continue;
        };
        let mut per_geometry = Vec::with_capacity(geometries.len());
        for gspec in &geometries {
            let g = gspec.geometry()?;
            let rollup = cache_class(&benchmark.program, g, g, Some(store))
                .map_err(|e| EngineError::Analysis(format!("{name}: cache class: {e}")))?;
            per_geometry.push((gspec.label(), rollup_to_json(&rollup)));
        }
        entries.push((name, Json::Obj(per_geometry)));
    }
    Ok(Json::Obj(entries))
}

/// Aggregates per-job records into the sweep outcome and persists the
/// run-level artifacts: the Table 2 CSV and the manifest (including its
/// static-path-coverage block, resolved against `registry`). Shared by the
/// in-process pool and the `mbcr-shard` coordinator, so a sharded sweep
/// writes a manifest and table byte-identical to a single-process one.
///
/// # Errors
///
/// [`EngineError::Io`] on store failures.
pub fn finalize_sweep(
    spec: &SweepSpec,
    records: Vec<JobRecord>,
    registry: &Registry,
    store: &ArtifactStore,
    elapsed: Duration,
) -> Result<SweepOutcome, EngineError> {
    let executed = records
        .iter()
        .filter(|r| r.status == JobStatus::Executed)
        .count();
    let skipped = records
        .iter()
        .filter(|r| r.status == JobStatus::Skipped)
        .count();
    let failed = records
        .iter()
        .filter(|r| r.status == JobStatus::Failed)
        .count();

    let summaries: Vec<JobSummary> = records.iter().filter_map(|r| r.summary.clone()).collect();
    let rows = aggregate_rows(&summaries);
    store.write_table2(&rows)?;
    store.write_manifest(&Json::Obj(vec![
        ("schema".to_string(), crate::SCHEMA.into()),
        ("spec".to_string(), spec.to_json()),
        (
            "counts".to_string(),
            Json::Obj(vec![
                ("executed".to_string(), Json::UInt(executed as u64)),
                ("skipped".to_string(), Json::UInt(skipped as u64)),
                ("failed".to_string(), Json::UInt(failed as u64)),
            ]),
        ),
        (
            "path_coverage".to_string(),
            coverage_block(spec, registry, store)?,
        ),
        (
            "cache_class".to_string(),
            cache_class_block(spec, registry, store)?,
        ),
        ("jobs".to_string(), Serialize::to_json(&records)),
    ]))?;

    Ok(SweepOutcome {
        executed,
        skipped,
        failed,
        records,
        rows,
        elapsed,
    })
}

/// Loads and validates a content-addressed stage artifact; a torn or
/// foreign file is never a cache hit.
fn load_valid_stage(store: &ArtifactStore, stage: StageKind, digest: u64) -> Option<Json> {
    let doc = StageStore::load_stage(store, digest)?;
    stage_artifact_data(&doc, stage, digest).cloned()
}

/// Synthesizes the result summary of a cached stage job from its stage
/// artifact alone (fit artifacts carry every cross-stage number).
fn summary_from_stage_artifact(
    job: &JobSpec,
    key: &str,
    stage: StageKind,
    data: &Json,
) -> JobSummary {
    let mut s = JobSummary::empty(key.to_string(), job);
    let original = job.kind.analysis() == AnalysisKind::Original;
    match stage {
        StageKind::Pub => {}
        StageKind::Trace => s.trace_len = data.get("len").and_then(Json::as_u64),
        StageKind::TacIl1 | StageKind::TacDl1 => {
            s.r_tac = data.get("runs_required").and_then(Json::as_u64);
        }
        StageKind::Converge => {
            let runs = data.get("runs").and_then(Json::as_u64);
            if original {
                s.r_orig = runs;
                s.converged = data.get("converged").and_then(Json::as_bool);
            } else {
                s.r_pub = runs;
            }
        }
        StageKind::Campaign => s.campaign_runs = data.get("runs").and_then(Json::as_u64),
        StageKind::PathCoverage | StageKind::CacheClass => {}
        StageKind::Fit => {
            s.pwcet = data
                .get("pwcet_at_exceedance")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            s.trace_len = data.get("trace_len").and_then(Json::as_u64);
            s.converged = data.get("converged").and_then(Json::as_bool);
            let converge_runs = data.get("converge_runs").and_then(Json::as_u64);
            if original {
                s.r_orig = converge_runs;
            } else {
                s.r_pub = converge_runs;
                s.r_tac = data.get("r_tac").and_then(Json::as_u64);
                s.r_pub_tac = data.get("r_pub_tac").and_then(Json::as_u64);
                s.campaign_runs = data.get("campaign_runs").and_then(Json::as_u64);
                s.campaign_capped = data.get("campaign_capped").and_then(Json::as_bool);
                s.pwcet_pub = data.get("pwcet_pub").and_then(Json::as_f64);
            }
        }
    }
    s
}

/// What executing one stage node produced: the summary for the manifest,
/// plus — for terminal fit nodes — the full-result document and final
/// sample that belong in the job-artifact layout (`jobs/<key>.json` +
/// sample log). The *caller* persists those: the in-process pool writes
/// them into its own store, a shard worker ships them back to the
/// coordinator.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// The flat result summary.
    pub summary: JobSummary,
    /// `(full result document, final campaign sample)` for fit nodes.
    pub fit: Option<(Json, Option<Vec<u64>>)>,
}

/// Executes one stage node against any [`StageStore`] — the single
/// definition of what a stage job *does*, shared by the in-process pool
/// and `mbcr-shard` workers (whose store is an in-memory mirror seeded
/// with the shipped upstream artifacts).
///
/// With `force`, only this node's own stage recomputes: the DAG already
/// re-executed (and re-saved) every upstream node, so the session loads
/// those fresh artifacts instead of re-deriving the whole chain
/// in-process.
///
/// # Errors
///
/// [`EngineError::UnknownBenchmark`] / [`EngineError::UnknownInput`] on
/// names that do not resolve, [`EngineError::Analysis`] when the
/// underlying analysis fails.
///
/// # Panics
///
/// Panics if `job` is not a stage node.
pub fn execute_stage(
    job: &JobSpec,
    key: &str,
    cfg: &AnalysisConfig,
    registry: &Registry,
    store: &dyn StageStore,
    force: bool,
) -> Result<StageOutcome, EngineError> {
    let JobKind::Stage {
        analysis,
        stage,
        input,
    } = &job.kind
    else {
        panic!("execute_stage needs a stage node, got {}", job.label());
    };
    // Telemetry side channel: the span name is the low-cardinality stage
    // kind (one histogram series per kind); the job identity rides along
    // as fields for the trace timeline only.
    let _span = mbcr_obs::span(mbcr_obs::SpanKind::StageExecute, job.kind.name())
        .field("job", job.label())
        .field("key", key);
    let benchmark = registry
        .get(&job.benchmark)
        .ok_or_else(|| EngineError::UnknownBenchmark(job.benchmark.clone()))?;
    let mut summary = JobSummary::empty(key.to_string(), job);
    let inputs = match input {
        Some(name) => resolve_input(benchmark, name)?,
        None => &benchmark.default_input,
    };
    let mut session = match analysis {
        AnalysisKind::Original => AnalysisSession::original(&benchmark.program, inputs, cfg),
        AnalysisKind::PubTac => AnalysisSession::pub_tac(&benchmark.program, inputs, cfg),
        AnalysisKind::Multipath => {
            unreachable!("combine jobs are not stage nodes")
        }
    }
    .with_store(store);
    if force {
        session = session.with_force_stage(*stage);
    }
    let fail = |e: mbcr::AnalyzeError| EngineError::Analysis(format!("{}: {e}", job.label()));
    session.advance(*stage).map_err(fail)?;
    let mut fit = None;
    match stage {
        StageKind::Fit if *analysis == AnalysisKind::PubTac => {
            // The terminal node: assemble the complete analysis (upstream
            // stages load from the store) for the legacy full-result
            // layout.
            let analysis = session.finish_pub_tac().map_err(fail)?;
            summary.r_pub = Some(analysis.r_pub as u64);
            summary.r_tac = Some(analysis.r_tac);
            summary.r_pub_tac = Some(analysis.r_pub_tac);
            summary.campaign_runs = Some(analysis.campaign_runs as u64);
            summary.campaign_capped = Some(analysis.campaign_capped);
            summary.pwcet = analysis.pwcet_pub_tac;
            summary.pwcet_pub = Some(analysis.pwcet_pub);
            summary.trace_len = Some(analysis.trace_len as u64);
            let sample = analysis.sample.clone();
            fit = Some((analysis.to_json(), Some(sample)));
        }
        StageKind::Fit => {
            let analysis = session.finish_original().map_err(fail)?;
            summary.r_orig = Some(analysis.r_orig as u64);
            summary.converged = Some(analysis.converged);
            summary.pwcet = analysis.pwcet_at_exceedance;
            summary.trace_len = Some(analysis.trace_len as u64);
            fit = Some((analysis.to_json(), None));
        }
        StageKind::Trace => {
            summary.trace_len = session.trace_len().map(|l| l as u64);
        }
        StageKind::TacIl1 | StageKind::TacDl1 => {
            summary.r_tac = session.tac_analysis(*stage).map(|t| t.runs_required);
        }
        StageKind::Converge => {
            let output = session.converge_output().expect("converge advanced");
            if *analysis == AnalysisKind::Original {
                summary.r_orig = Some(output.runs as u64);
                summary.converged = Some(output.converged);
            } else {
                summary.r_pub = Some(output.runs as u64);
            }
        }
        StageKind::Campaign => {
            summary.campaign_runs = session.campaign_sample().map(|s| s.len() as u64);
            summary.campaign_resumed = session.campaign_resumed_runs().map(|n| n as u64);
        }
        StageKind::Pub => {}
        StageKind::PathCoverage | StageKind::CacheClass => {
            unreachable!("side stages are never session stages; sweeps never plan them")
        }
    }
    Ok(StageOutcome { summary, fit })
}

/// Executes a multipath combine node over its dependencies' summaries
/// (Corollary 2: every pubbed path upper-bounds all original paths, so
/// the tightest — lowest — estimate is kept). Returns the summary plus
/// the result document for the job artifact. Shared by the in-process
/// pool and the coordinator, which runs combines inline — they are a
/// `min` over numbers already in hand, never worth a network round trip.
///
/// # Errors
///
/// [`EngineError::Analysis`] when a dependency failed (its summary slot
/// is `None`).
pub fn execute_combine(
    job: &JobSpec,
    key: &str,
    dep_summaries: &[Option<JobSummary>],
) -> Result<(JobSummary, Json), EngineError> {
    let _span = mbcr_obs::span(mbcr_obs::SpanKind::StageExecute, job.kind.name())
        .field("job", job.label())
        .field("key", key);
    let mut summary = JobSummary::empty(key.to_string(), job);
    let mut per_input: Vec<(String, f64)> = Vec::with_capacity(dep_summaries.len());
    for dep_summary in dep_summaries {
        let dep_summary = dep_summary.clone().ok_or_else(|| {
            EngineError::Analysis(format!(
                "{}: dependency failed, nothing to combine",
                job.label()
            ))
        })?;
        per_input.push((dep_summary.input.unwrap_or_default(), dep_summary.pwcet));
    }
    let (best_input, best_pwcet) = per_input
        .iter()
        .cloned()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("combine jobs have at least two dependencies");
    summary.pwcet = best_pwcet;
    summary.best_input = Some(best_input.clone());
    let result = Json::Obj(vec![
        (
            "per_input".to_string(),
            Json::Obj(
                per_input
                    .iter()
                    .map(|(name, pwcet)| (name.clone(), Json::Num(*pwcet)))
                    .collect(),
            ),
        ),
        ("best_input".to_string(), best_input.into()),
        ("best_pwcet".to_string(), Json::Num(best_pwcet)),
    ]);
    Ok((summary, result))
}

/// Collapses job summaries into the paper's Table 2 layout: one row per
/// (benchmark, input, geometry, seed) cell, with the `R_orig` baseline and
/// the multipath combination attached to every input row of their cell.
/// Works from summaries alone, so `mbcr report` can rebuild the table from
/// a manifest without re-running anything.
#[must_use]
pub fn aggregate_rows(summaries: &[JobSummary]) -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> = Vec::new();
    let same_cell = |r: &Table2Row, s: &JobSummary| {
        r.benchmark == s.benchmark && r.geometry == s.geometry && r.seed == s.master_seed
    };
    let ensure_row = |rows: &mut Vec<Table2Row>, s: &JobSummary, input: &str| -> usize {
        if let Some(at) = rows
            .iter()
            .position(|r| same_cell(r, s) && r.input == input)
        {
            return at;
        }
        rows.push(Table2Row {
            benchmark: s.benchmark.clone(),
            input: input.to_string(),
            geometry: s.geometry.clone(),
            seed: s.master_seed,
            r_orig: None,
            r_pub: None,
            r_tac: None,
            r_pub_tac: None,
            pwcet_orig: None,
            pwcet_pub: None,
            pwcet_pub_tac: None,
            pwcet_multipath: None,
        });
        rows.len() - 1
    };

    // Input rows first, then cell-wide columns onto every row of the cell.
    for s in summaries.iter().filter(|s| s.kind == "pub_tac") {
        let input = s.input.clone().unwrap_or_else(|| "default".to_string());
        let at = ensure_row(&mut rows, s, &input);
        rows[at].r_pub = s.r_pub;
        rows[at].r_tac = s.r_tac;
        rows[at].r_pub_tac = s.r_pub_tac;
        rows[at].pwcet_pub = s.pwcet_pub;
        rows[at].pwcet_pub_tac = Some(s.pwcet);
    }
    for s in summaries {
        match s.kind.as_str() {
            "original" => {
                let mut hit = false;
                for row in rows.iter_mut().filter(|r| same_cell(r, s)) {
                    row.r_orig = s.r_orig;
                    row.pwcet_orig = Some(s.pwcet);
                    hit = true;
                }
                if !hit {
                    let at = ensure_row(&mut rows, s, "default");
                    rows[at].r_orig = s.r_orig;
                    rows[at].pwcet_orig = Some(s.pwcet);
                }
            }
            "multipath" => {
                for row in rows.iter_mut().filter(|r| same_cell(r, s)) {
                    row.pwcet_multipath = Some(s.pwcet);
                }
            }
            _ => {}
        }
    }
    rows
}

/// Renders rows as an aligned text table for terminals.
#[must_use]
pub fn render_rows(rows: &[Table2Row]) -> String {
    let headers = [
        "benchmark",
        "input",
        "geometry",
        "seed",
        "R_orig",
        "R_pub",
        "R_tac",
        "R_p+t",
        "pWCET_orig",
        "pWCET_pub",
        "pWCET_p+t",
        "pWCET_multi",
    ];
    let mut cells: Vec<Vec<String>> = vec![headers.iter().map(ToString::to_string).collect()];
    for row in rows {
        cells.push(row.cells().to_vec());
    }
    let widths: Vec<usize> = (0..headers.len())
        .map(|c| {
            cells
                .iter()
                .map(|r| r.get(c).map_or(0, String::len))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = String::new();
    for (i, row) in cells.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeometrySpec;

    fn two_geometry_spec() -> SweepSpec {
        SweepSpec::new("expand-test")
            .benchmarks(["bs"])
            .geometries([
                GeometrySpec::paper_l1(),
                GeometrySpec {
                    size_bytes: 2048,
                    ways: 2,
                    line_size: 32,
                },
            ])
            .seeds([1, 2])
    }

    fn count_stage(graph: &crate::JobGraph, stage: StageKind) -> usize {
        graph
            .jobs
            .iter()
            .filter(|j| j.kind.stage() == Some(stage))
            .count()
    }

    #[test]
    fn expansion_covers_the_cross_product_at_stage_granularity() {
        let registry = Registry::malardalen();
        let graph = expand(&two_geometry_spec(), &registry).unwrap();
        // 2 geometries × 2 seeds = 4 cells. Seed- and geometry-dependent
        // stages appear once per cell; the seed-free PUB transform and
        // path traces deduplicate to one node each (per pipeline).
        assert_eq!(count_stage(&graph, StageKind::Pub), 1);
        assert_eq!(count_stage(&graph, StageKind::Trace), 2, "orig + pubbed");
        assert_eq!(count_stage(&graph, StageKind::TacIl1), 4);
        assert_eq!(count_stage(&graph, StageKind::TacDl1), 4);
        assert_eq!(
            count_stage(&graph, StageKind::Converge),
            8,
            "orig + pub_tac"
        );
        assert_eq!(count_stage(&graph, StageKind::Campaign), 4);
        assert_eq!(count_stage(&graph, StageKind::Fit), 8, "orig + pub_tac");
        assert_eq!(graph.len(), 31);
        // Real data dependencies: every campaign node waits for its
        // converge and both TAC nodes.
        for (i, job) in graph.jobs.iter().enumerate() {
            if job.kind.stage() == Some(StageKind::Campaign) {
                assert_eq!(graph.deps[i].len(), 3, "converge + tac_il1 + tac_dl1");
            }
        }
    }

    #[test]
    fn multipath_cells_gain_combine_nodes_with_fit_deps() {
        let registry = Registry::malardalen();
        let spec = SweepSpec::new("mp")
            .benchmarks(["bs"])
            .inputs(InputSelection::All)
            .seeds([7]);
        let graph = expand(&spec, &registry).unwrap();
        let n_inputs = registry.get("bs").unwrap().input_vectors.len();
        assert!(n_inputs >= 2, "bs is multipath");
        // original stages (3) + shared pub (1) + 6 stages per input +
        // combine (1).
        assert_eq!(graph.len(), 3 + 1 + 6 * n_inputs + 1);
        let combine = graph.len() - 1;
        assert_eq!(graph.jobs[combine].kind, JobKind::MultipathCombine);
        assert_eq!(graph.deps[combine].len(), n_inputs);
        for &dep in &graph.deps[combine] {
            assert_eq!(
                graph.jobs[dep].kind.stage(),
                Some(StageKind::Fit),
                "combine depends on per-input fit nodes"
            );
        }
    }

    #[test]
    fn duplicate_dimensions_are_deduplicated() {
        let registry = Registry::malardalen();
        let spec = SweepSpec::new("dup")
            .benchmarks(["bs", "bs"])
            .geometries([GeometrySpec::paper_l1(), GeometrySpec::paper_l1()])
            .seeds([1, 1])
            .analyses([AnalysisKind::PubTac]);
        let graph = expand(&spec, &registry).unwrap();
        assert_eq!(
            graph.len(),
            7,
            "identical cells must collapse to one stage pipeline"
        );
    }

    #[test]
    fn default_selection_analyzes_the_default_input() {
        let registry = Registry::malardalen();
        let spec = SweepSpec::new("d")
            .benchmarks(["bs"])
            .seeds([1])
            .analyses([AnalysisKind::PubTac]);
        let graph = expand(&spec, &registry).unwrap();
        let trace = graph
            .jobs
            .iter()
            .find(|j| j.kind.stage() == Some(StageKind::Trace))
            .expect("trace node");
        assert_eq!(
            trace.kind.input(),
            Some("default"),
            "Default selection must use the same input as Original jobs"
        );
    }

    #[test]
    fn stage_digests_are_recorded_for_stage_nodes_only() {
        let registry = Registry::malardalen();
        let spec = SweepSpec::new("mp")
            .benchmarks(["bs"])
            .inputs(InputSelection::All)
            .seeds([7]);
        let graph = expand(&spec, &registry).unwrap();
        for (i, job) in graph.jobs.iter().enumerate() {
            match job.kind {
                JobKind::MultipathCombine => assert!(graph.digests[i].is_none()),
                JobKind::Stage { .. } => assert!(graph.digests[i].is_some()),
            }
        }
    }

    #[test]
    fn render_rows_survives_commas_in_names() {
        let row = Table2Row {
            benchmark: "ecu,task".into(),
            input: "v\"1".into(),
            geometry: "4096B-2w-32B".into(),
            seed: 1,
            r_orig: None,
            r_pub: Some(300),
            r_tac: Some(400),
            r_pub_tac: Some(400),
            pwcet_orig: None,
            pwcet_pub: None,
            pwcet_pub_tac: Some(9000.0),
            pwcet_multipath: None,
        };
        let text = render_rows(std::slice::from_ref(&row));
        assert!(
            text.contains("ecu,task"),
            "terminal table shows the raw name"
        );
        assert!(row.csv_line().starts_with("\"ecu,task\","), "CSV quotes it");
    }

    #[test]
    fn prescreen_keeps_run_artifacts_byte_identical() {
        let registry = Registry::malardalen();
        let mut spec = SweepSpec::new("prescreen-identity")
            .benchmarks(["bs"])
            .seeds([1])
            .analyses([AnalysisKind::PubTac]);
        spec.max_campaign_runs = Some(600);
        let run = |prescreen: bool, tag: &str| {
            let dir =
                std::env::temp_dir().join(format!("mbcr-prescreen-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let store = ArtifactStore::open(&dir).expect("open store");
            let opts = RunOptions {
                prescreen,
                ..RunOptions::default()
            };
            let outcome = run_sweep(&spec, &registry, &store, &opts).expect("sweep");
            assert_eq!(outcome.failed, 0);
            let manifest = std::fs::read(store.manifest_path()).expect("manifest");
            let table = std::fs::read(store.table2_path()).expect("table2");
            let _ = std::fs::remove_dir_all(&dir);
            (manifest, table)
        };
        let off = run(false, "off");
        let on = run(true, "on");
        assert_eq!(
            off, on,
            "the pre-screen ordering hook must not change run artifacts"
        );
    }

    #[test]
    fn manifest_carries_a_cache_class_block() {
        let registry = Registry::malardalen();
        let mut spec = SweepSpec::new("cache-class-manifest")
            .benchmarks(["bs"])
            .seeds([1])
            .analyses([AnalysisKind::PubTac]);
        spec.max_campaign_runs = Some(600);
        let dir = std::env::temp_dir().join(format!("mbcr-ccmanifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).expect("open store");
        run_sweep(&spec, &registry, &store, &RunOptions::default()).expect("sweep");
        let manifest = store.load_manifest().expect("manifest");
        let block = manifest
            .get("cache_class")
            .expect("manifest has a cache_class block");
        let rollup = block
            .get("bs")
            .and_then(|b| b.get(&GeometrySpec::paper_l1().label()))
            .expect("bs × paper geometry entry");
        let sites = rollup
            .get("il1")
            .and_then(|s| s.get("sites"))
            .and_then(Json::as_u64)
            .expect("il1 site count");
        assert!(sites > 0, "bs fetches instructions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expansion_rejects_unknown_names() {
        let registry = Registry::malardalen();
        let unknown_bench = SweepSpec::new("x").benchmarks(["nope"]);
        assert!(matches!(
            expand(&unknown_bench, &registry),
            Err(EngineError::UnknownBenchmark(_))
        ));
        let unknown_input = SweepSpec::new("x")
            .benchmarks(["bs"])
            .inputs(InputSelection::Named(vec!["v999".into()]));
        assert!(matches!(
            expand(&unknown_input, &registry),
            Err(EngineError::UnknownInput { .. })
        ));
    }

    #[test]
    fn render_rows_aligns_columns() {
        let rows = vec![Table2Row {
            benchmark: "bs".into(),
            input: "default".into(),
            geometry: "4096B-2w-32B".into(),
            seed: 42,
            r_orig: Some(310),
            r_pub: Some(300),
            r_tac: Some(17_000),
            r_pub_tac: Some(17_000),
            pwcet_orig: Some(9170.0),
            pwcet_pub: Some(9426.0),
            pwcet_pub_tac: Some(9468.0),
            pwcet_multipath: None,
        }];
        let text = render_rows(&rows);
        assert!(text.contains("R_tac"));
        assert!(text.contains("17000"));
        assert_eq!(text.lines().count(), 3);
    }
}
