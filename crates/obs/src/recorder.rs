//! The flight recorder: a bounded ring of the most recent span events,
//! dumped as JSON when the process panics, drains on SIGTERM (the host
//! process calls [`dump_now`] from its drain path — signal handlers
//! themselves only flip an atomic), or on demand.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use mbcr_json::Json;

use crate::span::SpanEvent;
use crate::uptime_seconds;

/// How many span events the ring retains. Old events fall off the back;
/// the dump reports how many were dropped.
const CAPACITY: usize = 4096;

/// Schema tag stamped into every dump.
pub const DUMP_SCHEMA: &str = "mbcr-obs/1";

/// The bounded in-memory event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<SpanEvent>>,
    dropped: AtomicU64,
}

/// The process-wide recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder {
        ring: Mutex::new(VecDeque::with_capacity(CAPACITY)),
        dropped: AtomicU64::new(0),
    })
}

impl FlightRecorder {
    /// Appends an event, evicting the oldest once full.
    pub fn record(&self, event: SpanEvent) {
        let mut ring = self.ring.lock().expect("recorder poisoned");
        if ring.len() == CAPACITY {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("recorder poisoned").len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dump document: schema, uptime, drop count, and the retained
    /// events oldest-first.
    #[must_use]
    pub fn dump_json(&self) -> Json {
        let ring = self.ring.lock().expect("recorder poisoned");
        Json::Obj(vec![
            ("schema".into(), DUMP_SCHEMA.into()),
            ("uptime_seconds".into(), Json::UInt(uptime_seconds())),
            (
                "dropped".into(),
                Json::UInt(self.dropped.load(Ordering::Relaxed)),
            ),
            (
                "events".into(),
                Json::Arr(ring.iter().map(SpanEvent::to_json).collect()),
            ),
        ])
    }
}

fn dump_path() -> &'static Mutex<Option<PathBuf>> {
    static PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

/// Arms automatic dumps: panics (via [`install_panic_hook`]) and
/// [`dump_now`] write here. The path must live **outside** any
/// content-addressed store root — dumps are diagnostics, not artifacts.
pub fn set_dump_path(path: PathBuf) {
    *dump_path().lock().expect("dump path poisoned") = Some(path);
}

/// Writes the dump to the configured path (creating parent directories),
/// returning the path written, or `None` when no path is configured.
///
/// # Errors
///
/// Propagates I/O errors from creating directories or writing the file.
pub fn dump_now() -> std::io::Result<Option<PathBuf>> {
    let Some(path) = dump_path().lock().expect("dump path poisoned").clone() else {
        return Ok(None);
    };
    dump_to(&path)?;
    Ok(Some(path))
}

/// Writes the dump document to `path`.
///
/// # Errors
///
/// Propagates I/O errors from creating directories or writing the file.
pub fn dump_to(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = recorder().dump_json().to_pretty();
    body.push('\n');
    std::fs::write(path, body)
}

/// Chains a panic hook that best-effort writes the flight recorder to the
/// configured dump path before the previous hook runs. Idempotent.
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Ok(Some(path)) = dump_now() {
            eprintln!("mbcr-obs: flight recorder dumped to {}", path.display());
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn event(name: &str) -> SpanEvent {
        SpanEvent {
            kind: SpanKind::HttpRequest,
            name: name.to_string(),
            fields: vec![("k".into(), "v".into())],
            start_ns: 1,
            dur_ns: 2,
            tid: 1,
            depth: 0,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let r = FlightRecorder {
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        };
        for i in 0..CAPACITY + 10 {
            r.record(event(&format!("e{i}")));
        }
        assert_eq!(r.len(), CAPACITY);
        assert_eq!(r.dropped.load(Ordering::Relaxed), 10);
        let dump = r.dump_json();
        assert_eq!(dump.get("schema"), Some(&Json::Str(DUMP_SCHEMA.into())));
        assert_eq!(dump.get("dropped"), Some(&Json::UInt(10)));
        match dump.get("events") {
            Some(Json::Arr(events)) => {
                assert_eq!(events.len(), CAPACITY);
                // Oldest-first: the survivors start at e10.
                assert_eq!(events[0].get("name"), Some(&Json::Str("e10".into())));
            }
            other => panic!("events should be an array, got {other:?}"),
        }
    }

    #[test]
    fn dump_round_trips_through_the_parser() {
        let r = FlightRecorder {
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        };
        r.record(event("only"));
        let text = r.dump_json().to_pretty();
        let parsed = mbcr_json::parse(&text).expect("dump parses");
        match parsed.get("events") {
            Some(Json::Arr(events)) => {
                assert_eq!(events.len(), 1);
                assert_eq!(
                    events[0].get("kind"),
                    Some(&Json::Str("http-request".into()))
                );
            }
            other => panic!("events should be an array, got {other:?}"),
        }
    }
}
