//! The content-addressed artifact store.
//!
//! One sweep run owns one directory:
//!
//! ```text
//! <run-dir>/
//!   manifest.json            # spec + per-job status and summaries
//!   table2.csv               # the paper's Table 2 layout, one row per cell
//!   jobs/<key>.json          # full analysis result, keyed by content hash
//!   jobs/<key>.samples.csv   # execution-time sample of the final campaign
//!   stages/<digest>.json     # per-stage intermediate artifacts
//! ```
//!
//! Job keys hash everything result-affecting ([`crate::JobSpec::key`]), so
//! `has_artifact` is the whole cache policy: a present artifact is, by
//! construction, the artifact a re-run would produce. Stage artifacts are
//! keyed by stage digest ([`mbcr::stage::StageDigests`]) and shared across
//! sweeps in the same store — a warm re-run after a knob change resumes
//! from the last stage the change did not invalidate.
//!
//! All writes are atomic (unique temp file + rename), so an interrupted
//! sweep never leaves torn JSON/CSV artifacts behind; readers additionally
//! validate schema tags before treating any file as a cache hit.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use mbcr::stage::StageStore;
use mbcr_json::{csv_field, Json};

use crate::JobSummary;

/// Handle on a run directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a run directory.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))?;
        fs::create_dir_all(root.join("stages"))?;
        Ok(Self { root })
    }

    /// The run directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of a job's JSON artifact.
    #[must_use]
    pub fn job_path(&self, key: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{key}.json"))
    }

    /// Path of a job's sample CSV.
    #[must_use]
    pub fn sample_path(&self, key: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{key}.samples.csv"))
    }

    /// Path of a stage artifact (content-addressed by stage digest).
    #[must_use]
    pub fn stage_path(&self, digest: u64) -> PathBuf {
        self.root.join("stages").join(format!("{digest:016x}.json"))
    }

    /// Path of the manifest.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// Path of the Table 2 CSV.
    #[must_use]
    pub fn table2_path(&self) -> PathBuf {
        self.root.join("table2.csv")
    }

    /// Whether a completed artifact exists for `key`.
    #[must_use]
    pub fn has_artifact(&self, key: &str) -> bool {
        self.job_path(key).is_file()
    }

    /// Writes a job artifact (atomically: temp file + rename) and, when
    /// given, its sample CSV.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failures.
    pub fn write_job(
        &self,
        key: &str,
        summary: &JobSummary,
        result: Json,
        sample: Option<&[u64]>,
    ) -> io::Result<()> {
        if let Some(sample) = sample {
            let mut csv = String::with_capacity(sample.len() * 8 + 16);
            csv.push_str("run,cycles\n");
            for (i, cycles) in sample.iter().enumerate() {
                csv.push_str(&format!("{i},{cycles}\n"));
            }
            write_atomic(&self.sample_path(key), csv.as_bytes())?;
        }
        let artifact = Json::Obj(vec![
            ("schema".to_string(), crate::SCHEMA.into()),
            (
                "summary".to_string(),
                mbcr_json::Serialize::to_json(summary),
            ),
            ("result".to_string(), result),
        ]);
        write_atomic(&self.job_path(key), artifact.to_pretty().as_bytes())
    }

    /// Loads the summary block of a cached artifact. Returns `None` when
    /// the artifact is missing, unparsable, or from another schema — the
    /// caller then simply re-executes the job.
    #[must_use]
    pub fn load_summary(&self, key: &str) -> Option<JobSummary> {
        let text = fs::read_to_string(self.job_path(key)).ok()?;
        let doc = mbcr_json::parse(&text).ok()?;
        if doc.get("schema")?.as_str()? != crate::SCHEMA {
            return None;
        }
        JobSummary::from_json(doc.get("summary")?)
    }

    /// Writes the run manifest.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failures.
    pub fn write_manifest(&self, manifest: &Json) -> io::Result<()> {
        write_atomic(&self.manifest_path(), manifest.to_pretty().as_bytes())
    }

    /// Loads the run manifest, if one exists and parses.
    #[must_use]
    pub fn load_manifest(&self) -> Option<Json> {
        let text = fs::read_to_string(self.manifest_path()).ok()?;
        mbcr_json::parse(&text).ok()
    }

    /// Writes the Table 2 CSV (the paper's layout, plus provenance
    /// columns).
    ///
    /// # Errors
    ///
    /// [`io::Error`] on filesystem failures.
    pub fn write_table2(&self, rows: &[Table2Row]) -> io::Result<()> {
        let mut csv = String::from(
            "benchmark,input,geometry,seed,R_orig,R_pub,R_tac,R_pub_tac,\
             pwcet_orig,pwcet_pub,pwcet_pub_tac,pwcet_multipath\n",
        );
        for row in rows {
            csv.push_str(&row.csv_line());
            csv.push('\n');
        }
        write_atomic(&self.table2_path(), csv.as_bytes())
    }
}

impl StageStore for ArtifactStore {
    /// Loads a stage artifact. Returns `None` when the file is missing or
    /// does not parse — a torn write is never a cache hit (the caller
    /// additionally validates the schema/digest envelope).
    fn load_stage(&self, digest: u64) -> Option<Json> {
        let text = fs::read_to_string(self.stage_path(digest)).ok()?;
        mbcr_json::parse(&text).ok()
    }

    fn save_stage(&self, digest: u64, artifact: &Json) -> io::Result<()> {
        write_atomic(&self.stage_path(digest), artifact.to_pretty().as_bytes())
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Self-healing: a run dir shipped without one of its subdirectories
    // (e.g. only the content-addressed stages/ tree was copied) grows the
    // missing directory back instead of failing the job.
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    // Unique per writer: two pool workers may target the same path (e.g. a
    // spec that names the same cell twice), and sharing one temp file would
    // interleave their bytes.
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp{serial}"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// One row of the Table 2 aggregation: a (benchmark, input, geometry,
/// seed) cell with the paper's run-count and pWCET columns. Columns a cell
/// did not compute (e.g. `R_orig` in a PUB-only sweep) stay empty.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Input-vector name.
    pub input: String,
    /// Geometry label.
    pub geometry: String,
    /// Master seed of the cell.
    pub seed: u64,
    /// Runs to plain-MBPTA convergence on the original program.
    pub r_orig: Option<u64>,
    /// Runs to MBPTA convergence on the pubbed path.
    pub r_pub: Option<u64>,
    /// TAC's representativeness requirement.
    pub r_tac: Option<u64>,
    /// `max(R_pub, R_tac)`.
    pub r_pub_tac: Option<u64>,
    /// pWCET of the original program (baseline column).
    pub pwcet_orig: Option<f64>,
    /// pWCET after PUB only.
    pub pwcet_pub: Option<f64>,
    /// pWCET after PUB + TAC (the paper's "P+T" column).
    pub pwcet_pub_tac: Option<f64>,
    /// Corollary 2 multipath combination, when computed.
    pub pwcet_multipath: Option<f64>,
}

impl Table2Row {
    fn fmt_u64(v: Option<u64>) -> String {
        v.map(|v| v.to_string()).unwrap_or_default()
    }

    fn fmt_f64(v: Option<f64>) -> String {
        v.filter(|v| v.is_finite())
            .map(|v| format!("{v:.1}"))
            .unwrap_or_default()
    }

    /// The row's 12 column values, unquoted, in header order.
    #[must_use]
    pub fn cells(&self) -> [String; 12] {
        [
            self.benchmark.clone(),
            self.input.clone(),
            self.geometry.clone(),
            self.seed.to_string(),
            Self::fmt_u64(self.r_orig),
            Self::fmt_u64(self.r_pub),
            Self::fmt_u64(self.r_tac),
            Self::fmt_u64(self.r_pub_tac),
            Self::fmt_f64(self.pwcet_orig),
            Self::fmt_f64(self.pwcet_pub),
            Self::fmt_f64(self.pwcet_pub_tac),
            Self::fmt_f64(self.pwcet_multipath),
        ]
    }

    /// The row as a CSV line (no trailing newline; fields quoted per
    /// RFC 4180 where needed).
    #[must_use]
    pub fn csv_line(&self) -> String {
        self.cells().map(|cell| csv_field(&cell)).join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeometrySpec, JobKind, JobSpec};

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("mbcr-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    fn demo_summary(store_key: &str) -> JobSummary {
        let job = JobSpec {
            benchmark: "bs".into(),
            geometry: GeometrySpec::paper_l1(),
            master_seed: 1,
            kind: JobKind::pub_tac_stage(mbcr::stage::StageKind::Fit, "default"),
        };
        let mut s = JobSummary::empty(store_key.to_string(), &job);
        s.pwcet = 1000.5;
        s.r_pub = Some(300);
        s
    }

    #[test]
    fn artifact_roundtrip_and_cache_check() {
        let store = tmp_store("roundtrip");
        let key = "00112233445566778899aabbccddeeff";
        assert!(!store.has_artifact(key));
        let summary = demo_summary(key);
        store
            .write_job(key, &summary, Json::Obj(vec![]), Some(&[10, 20, 30]))
            .expect("write");
        assert!(store.has_artifact(key));
        assert_eq!(store.load_summary(key).expect("summary"), summary);
        let csv = fs::read_to_string(store.sample_path(key)).expect("csv");
        assert_eq!(csv, "run,cycles\n0,10\n1,20\n2,30\n");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn partial_write_is_not_a_cache_hit() {
        // Simulate an interrupted writer: a truncated JSON document at the
        // artifact paths. Readers must treat both as cache misses.
        let store = tmp_store("torn");
        let key = "deadbeef";
        fs::write(store.job_path(key), "{\"schema\": \"mbcr-eng").expect("write");
        assert!(
            store.has_artifact(key),
            "the torn file exists on disk (atomic writes make this state \
             unreachable in practice, but readers still validate)"
        );
        assert!(
            store.load_summary(key).is_none(),
            "a torn job artifact must not parse into a summary"
        );
        let digest = 0x1234_u64;
        fs::write(store.stage_path(digest), "{\"schema\": \"mbcr-sta").expect("write");
        assert!(
            store.load_stage(digest).is_none(),
            "a torn stage artifact must not be a cache hit"
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stage_artifacts_roundtrip_through_the_store() {
        let store = tmp_store("stage-rt");
        let digest = 0xABCD_u64;
        assert!(store.load_stage(digest).is_none());
        let doc = Json::Obj(vec![("x".to_string(), Json::UInt(7))]);
        store.save_stage(digest, &doc).expect("save");
        assert_eq!(store.load_stage(digest), Some(doc));
        assert!(store.stage_path(digest).is_file());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn foreign_schema_is_not_a_cache_hit() {
        let store = tmp_store("schema");
        let key = "f00d";
        fs::write(
            store.job_path(key),
            r#"{"schema": "other/9", "summary": {}}"#,
        )
        .expect("write");
        assert!(store.load_summary(key).is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn table2_rows_render_empty_columns() {
        let row = Table2Row {
            benchmark: "bs".into(),
            input: "default".into(),
            geometry: "4096B-2w-32B".into(),
            seed: 42,
            r_orig: Some(310),
            r_pub: Some(300),
            r_tac: None,
            r_pub_tac: None,
            pwcet_orig: Some(9170.0),
            pwcet_pub: None,
            pwcet_pub_tac: None,
            pwcet_multipath: None,
        };
        assert_eq!(
            row.csv_line(),
            "bs,default,4096B-2w-32B,42,310,300,,,9170.0,,,"
        );
    }
}
