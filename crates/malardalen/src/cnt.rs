//! `cnt` — counts and sums the non-negative elements of a 10×10 matrix
//! (Mälardalen `cnt.c`).
//!
//! Multipath: every element picks the positive or negative branch. The
//! default input (all elements non-negative) drives the worst-case path —
//! the paper lists `cnt` among the multipath benchmarks whose default input
//! already triggers the worst path.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt};

use crate::{BenchClass, Benchmark, NamedInput};

/// Matrix side length.
pub const DIM: u32 = 10;

/// Builds the `cnt` program.
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("cnt");
    let m = b.array("m", DIM * DIM);
    let i = b.var("i");
    let j = b.var("j");
    let v = b.var("v");
    let postotal = b.var("postotal");
    let negtotal = b.var("negtotal");
    let poscnt = b.var("poscnt");
    let negcnt = b.var("negcnt");

    let dim = i64::from(DIM);
    b.push(Stmt::for_(
        i,
        Expr::c(0),
        Expr::c(dim),
        DIM,
        vec![Stmt::for_(
            j,
            Expr::c(0),
            Expr::c(dim),
            DIM,
            vec![
                Stmt::Assign(
                    v,
                    Expr::load(m, Expr::var(i).mul(Expr::c(dim)).add(Expr::var(j))),
                ),
                Stmt::if_(
                    Expr::var(v).ge(Expr::c(0)),
                    vec![
                        Stmt::Assign(postotal, Expr::var(postotal).add(Expr::var(v))),
                        Stmt::Assign(poscnt, Expr::var(poscnt).add(Expr::c(1))),
                    ],
                    vec![
                        Stmt::Assign(negtotal, Expr::var(negtotal).add(Expr::var(v))),
                        Stmt::Assign(negcnt, Expr::var(negcnt).add(Expr::c(1))),
                    ],
                ),
            ],
        )],
    ));
    b.build().expect("cnt is well-formed")
}

fn matrix_inputs(p: &Program, values: Vec<i64>) -> Inputs {
    let m = p.array_by_name("m").expect("m array");
    Inputs::new().with_array(m, values)
}

/// Default input: all elements non-negative (worst-case path).
#[must_use]
pub fn default_input() -> Inputs {
    let vals: Vec<i64> = (0..DIM * DIM).map(|k| i64::from(k * 7 % 19 + 1)).collect();
    matrix_inputs(&program(), vals)
}

/// Default plus sign-mixed and all-negative variants.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    let p = program();
    let pos: Vec<i64> = (0..DIM * DIM).map(|k| i64::from(k * 7 % 19 + 1)).collect();
    let mixed: Vec<i64> = (0..DIM * DIM)
        .map(|k| {
            let v = i64::from(k * 7 % 19 + 1);
            if k % 2 == 0 {
                v
            } else {
                -v
            }
        })
        .collect();
    let neg: Vec<i64> = pos.iter().map(|&v| -v).collect();
    vec![
        NamedInput {
            name: "all_positive".into(),
            inputs: matrix_inputs(&p, pos),
        },
        NamedInput {
            name: "mixed".into(),
            inputs: matrix_inputs(&p, mixed),
        },
        NamedInput {
            name: "all_negative".into(),
            inputs: matrix_inputs(&p, neg),
        },
    ]
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "cnt",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::MultipathWorstKnown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::execute;

    #[test]
    fn counts_and_sums_match() {
        let p = program();
        let run = execute(&p, &default_input()).unwrap();
        let expected_sum: i64 = (0..DIM * DIM).map(|k| i64::from(k * 7 % 19 + 1)).sum();
        assert_eq!(
            run.state.var(p.var_by_name("postotal").unwrap()),
            expected_sum
        );
        assert_eq!(run.state.var(p.var_by_name("poscnt").unwrap()), 100);
        assert_eq!(run.state.var(p.var_by_name("negcnt").unwrap()), 0);
    }

    #[test]
    fn mixed_input_splits_branches() {
        let p = program();
        let mixed = &input_vectors()[1];
        let run = execute(&p, &mixed.inputs).unwrap();
        assert_eq!(run.state.var(p.var_by_name("poscnt").unwrap()), 50);
        assert_eq!(run.state.var(p.var_by_name("negcnt").unwrap()), 50);
        assert!(run.state.var(p.var_by_name("negtotal").unwrap()) < 0);
    }

    #[test]
    fn different_signs_take_different_paths() {
        let p = program();
        let vecs = input_vectors();
        let a = execute(&p, &vecs[0].inputs).unwrap();
        let b = execute(&p, &vecs[2].inputs).unwrap();
        assert_ne!(a.path.path_id(), b.path.path_id());
    }
}
