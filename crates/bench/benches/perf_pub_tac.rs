//! Criterion performance benches for the two analyses: PUB transformation
//! and TAC conflict-group discovery.

use criterion::{criterion_group, criterion_main, Criterion};
use mbcr_ir::execute;
use mbcr_pub::{pub_transform, PubConfig};
use mbcr_tac::{analyze_lines, TacConfig};
use std::hint::black_box;

fn bench_pub(c: &mut Criterion) {
    let suite = mbcr_malardalen::suite();
    c.bench_function("pub_transform_suite", |b| {
        b.iter(|| {
            for bench in &suite {
                black_box(pub_transform(&bench.program, &PubConfig::paper()).expect("pub"));
            }
        });
    });
    let bs = mbcr_malardalen::bs::benchmark();
    c.bench_function("pub_transform_bs_padded", |b| {
        b.iter(|| {
            black_box(pub_transform(&bs.program, &PubConfig::with_loop_padding()).expect("pub"))
        });
    });
}

fn bench_tac(c: &mut Criterion) {
    let matmult = mbcr_malardalen::matmult::benchmark();
    let trace = execute(&matmult.program, &matmult.default_input)
        .expect("run")
        .trace;
    let data = trace.data_lines(32);
    let instr = trace.instr_lines(32);
    let cfg = TacConfig::paper_l1();
    c.bench_function("tac_matmult_dl1", |b| {
        b.iter(|| black_box(analyze_lines(&data, &cfg)));
    });
    c.bench_function("tac_matmult_il1", |b| {
        b.iter(|| black_box(analyze_lines(&instr, &cfg)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pub, bench_tac
}
criterion_main!(benches);
