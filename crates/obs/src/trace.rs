//! Whole-run trace capture and Chrome-trace-event export.
//!
//! While a capture is active every completed span is appended to a global
//! sink (bounded, drop-counted). [`chrome_trace`] renders the collected
//! events as a Chrome trace document (the `{"traceEvents": […]}` JSON
//! format), loadable in `chrome://tracing` or Perfetto: one complete
//! (`"ph":"X"`) event per span, with thread ordinals as `tid` so spans
//! from all workers merge onto one timeline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use mbcr_json::Json;

use crate::span::SpanEvent;

/// Hard cap on captured events; beyond it events are counted, not kept.
const CAPACITY: usize = 1 << 20;

static CAPTURING: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn sink() -> &'static Mutex<Vec<SpanEvent>> {
    static SINK: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Whether a capture is currently collecting spans.
#[must_use]
pub fn capture_active() -> bool {
    CAPTURING.load(Ordering::Relaxed)
}

/// Begins collecting completed spans (clearing any previous capture).
pub fn start_capture() {
    sink().lock().expect("trace sink poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
    CAPTURING.store(true, Ordering::Relaxed);
}

/// Stops collecting and returns the captured events along with how many
/// were dropped once the sink filled.
pub fn finish_capture() -> (Vec<SpanEvent>, u64) {
    CAPTURING.store(false, Ordering::Relaxed);
    let events = std::mem::take(&mut *sink().lock().expect("trace sink poisoned"));
    (events, DROPPED.swap(0, Ordering::Relaxed))
}

/// Called from the span drop path.
pub(crate) fn sink_event(event: &SpanEvent) {
    if !capture_active() {
        return;
    }
    let mut sink = sink().lock().expect("trace sink poisoned");
    if sink.len() == CAPACITY {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    sink.push(event.clone());
}

/// Renders events as a Chrome trace document. Timestamps and durations
/// are microseconds (fractional, preserving nanosecond detail); `pid` is
/// constant 1 and `tid` is the recording thread's ordinal.
#[must_use]
pub fn chrome_trace(events: &[SpanEvent]) -> Json {
    #[allow(clippy::cast_precision_loss)]
    let micros = |ns: u64| Json::Num(ns as f64 / 1000.0);
    let trace_events: Vec<Json> = events
        .iter()
        .map(|event| {
            let mut args: Vec<(String, Json)> = event
                .fields
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect();
            args.push(("depth".into(), Json::UInt(u64::from(event.depth))));
            Json::Obj(vec![
                ("name".into(), Json::Str(event.name.clone())),
                ("cat".into(), event.kind.name().into()),
                ("ph".into(), "X".into()),
                ("ts".into(), micros(event.start_ns)),
                ("dur".into(), micros(event.dur_ns)),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(event.tid)),
                ("args".into(), Json::Obj(args)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(trace_events)),
        ("displayTimeUnit".into(), "ms".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;
    use crate::span::{span, SpanKind};

    #[test]
    fn capture_collects_spans_and_exports_chrome_events() {
        let _lock = crate::test_guard();
        set_enabled(true);
        start_capture();
        {
            let _g = span(SpanKind::StageExecute, "pub:trace").field("job", "demo");
        }
        let (events, dropped) = finish_capture();
        set_enabled(false);
        assert_eq!(dropped, 0);
        let ours: Vec<_> = events.iter().filter(|e| e.name == "pub:trace").collect();
        assert_eq!(ours.len(), 1);

        let doc = chrome_trace(&events);
        let text = doc.to_compact();
        let parsed = mbcr_json::parse(&text).expect("chrome trace parses");
        match parsed.get("traceEvents") {
            Some(Json::Arr(items)) => {
                let item = items
                    .iter()
                    .find(|i| i.get("name") == Some(&Json::Str("pub:trace".into())))
                    .expect("our span exported");
                assert_eq!(item.get("ph"), Some(&Json::Str("X".into())));
                assert_eq!(item.get("cat"), Some(&Json::Str("stage-execute".into())));
                assert!(item.get("dur").and_then(Json::as_f64).is_some());
            }
            other => panic!("traceEvents should be an array, got {other:?}"),
        }
    }

    #[test]
    fn finished_capture_stops_collecting() {
        let _lock = crate::test_guard();
        set_enabled(true);
        start_capture();
        let (_, _) = finish_capture();
        {
            let _g = span(SpanKind::SseEmit, "after-capture");
        }
        set_enabled(false);
        let (events, _) = finish_capture();
        assert!(events.iter().all(|e| e.name != "after-capture"));
    }
}
