//! In-order processor timing model with IL1/DL1 caches.
//!
//! The paper's evaluation platform (Section 4) is a "pipelined in-order
//! processor with first level instruction (IL1) and data (DL1) caches …
//! implementing random placement and replacement policies. The content of
//! cache memories is flushed before each run of a program."
//!
//! This crate reproduces those timing semantics:
//!
//! * every instruction fetch goes through the IL1, every load/store through
//!   the DL1;
//! * an access costs a constant hit or miss latency ([`LatencyConfig`]); the
//!   in-order pipeline makes execution time additive in those latencies;
//! * a *measurement run* replays a fixed [`Trace`] after flushing and
//!   re-randomizing both caches ([`Platform::run_randomized`]), so all
//!   run-to-run execution-time variability comes from the random cache
//!   layout — exactly the MBPTA setting;
//! * a [`campaign`] collects `R` execution times with per-run seeds derived
//!   deterministically from one master seed (bit-identical results whether
//!   run serially or with [`campaign_parallel`]).
//!
//! # Examples
//!
//! ```
//! use mbcr_cpu::{campaign, Platform, PlatformConfig};
//! use mbcr_trace::{Access, Trace};
//!
//! let cfg = PlatformConfig::paper_default();
//! let trace: Trace = [Access::fetch(0x0), Access::read(0x8000)].into_iter().collect();
//! let times = campaign(&cfg, &trace, 10, 42);
//! assert_eq!(times.len(), 10);
//! // Two cold misses on every run: both accesses miss once each.
//! let expected = 2 * cfg.latency.il1_miss.max(cfg.latency.dl1_miss);
//! assert!(times.iter().all(|&t| t == expected));
//! ```

use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
use mbcr_rng::derive_seed;
use mbcr_trace::{AccessKind, Trace};

/// Access latencies (cycles) of the in-order pipeline.
///
/// With an in-order single-issue core and blocking caches, execution time is
/// the sum of per-access latencies; `issue_cycles` adds a fixed per-
/// instruction cost on top of the fetch latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// Fixed cycles per instruction besides memory (decode/execute).
    pub issue_cycles: u64,
    /// IL1 hit latency.
    pub il1_hit: u64,
    /// IL1 miss latency (includes the memory round-trip).
    pub il1_miss: u64,
    /// DL1 hit latency.
    pub dl1_hit: u64,
    /// DL1 miss latency (includes the memory round-trip).
    pub dl1_miss: u64,
}

impl LatencyConfig {
    /// LEON3-like defaults: 1-cycle hits, 100-cycle misses — large enough
    /// that conflictive cache placements produce the abrupt execution-time
    /// "knees" the paper studies.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            issue_cycles: 0,
            il1_hit: 1,
            il1_miss: 100,
            dl1_hit: 1,
            dl1_miss: 100,
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full platform configuration: cache geometries, policies and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformConfig {
    /// Instruction-cache geometry.
    pub il1: CacheGeometry,
    /// Data-cache geometry.
    pub dl1: CacheGeometry,
    /// Placement policy for both caches.
    pub placement: PlacementPolicy,
    /// Replacement policy for both caches.
    pub replacement: ReplacementPolicy,
    /// Pipeline/memory latencies.
    pub latency: LatencyConfig,
}

impl PlatformConfig {
    /// The paper's platform: 4 KB 2-way 32 B/line IL1 and DL1, random
    /// placement and replacement, caches flushed before each run.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            il1: CacheGeometry::paper_l1(),
            dl1: CacheGeometry::paper_l1(),
            placement: PlacementPolicy::RandomHash,
            replacement: ReplacementPolicy::Random,
            latency: LatencyConfig::paper_default(),
        }
    }

    /// A time-deterministic variant (modulo + LRU) used as the contrast in
    /// Section 2 experiments — *not* MBPTA-compliant.
    #[must_use]
    pub fn deterministic() -> Self {
        Self {
            placement: PlacementPolicy::Modulo,
            replacement: ReplacementPolicy::Lru,
            ..Self::paper_default()
        }
    }

    /// Returns `true` if both policies are time-randomized, i.e. the
    /// platform is MBPTA-compliant.
    #[must_use]
    pub fn is_mbpta_compliant(&self) -> bool {
        self.placement.is_randomized() && self.replacement.is_randomized()
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The simulated platform: one IL1, one DL1 and the latency model.
#[derive(Debug, Clone)]
pub struct Platform {
    il1: Cache,
    dl1: Cache,
    latency: LatencyConfig,
}

impl Platform {
    /// Builds a platform; IL1 and DL1 receive independent streams derived
    /// from `seed`.
    #[must_use]
    pub fn new(cfg: &PlatformConfig, seed: u64) -> Self {
        Self {
            il1: Cache::new(
                cfg.il1,
                cfg.placement,
                cfg.replacement,
                derive_seed(seed, 0),
            ),
            dl1: Cache::new(
                cfg.dl1,
                cfg.placement,
                cfg.replacement,
                derive_seed(seed, 1),
            ),
            latency: cfg.latency,
        }
    }

    /// The instruction cache.
    #[must_use]
    pub fn il1(&self) -> &Cache {
        &self.il1
    }

    /// The data cache.
    #[must_use]
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// Executes a trace with the *current* cache state (no flush), returning
    /// elapsed cycles. Useful for warm-cache experiments.
    pub fn run(&mut self, trace: &Trace) -> u64 {
        let mut cycles = 0u64;
        for access in trace {
            match access.kind {
                AccessKind::InstrFetch => {
                    cycles += self.latency.issue_cycles;
                    cycles += if self.il1.access(access.addr).is_hit() {
                        self.latency.il1_hit
                    } else {
                        self.latency.il1_miss
                    };
                }
                AccessKind::Read | AccessKind::Write => {
                    cycles += if self.dl1.access(access.addr).is_hit() {
                        self.latency.dl1_hit
                    } else {
                        self.latency.dl1_miss
                    };
                }
            }
        }
        cycles
    }

    /// One *measurement run* in the paper's sense: flush both caches,
    /// re-randomize their placement with streams derived from `run_seed`,
    /// then execute the trace and return its execution time in cycles.
    pub fn run_randomized(&mut self, trace: &Trace, run_seed: u64) -> u64 {
        self.il1.reseed(derive_seed(run_seed, 0));
        self.dl1.reseed(derive_seed(run_seed, 1));
        self.run(trace)
    }
}

/// Collects `runs` execution times of `trace`, with run `i` seeded as
/// `derive_seed(master_seed, i)`.
///
/// On an MBPTA-compliant platform the resulting sample is i.i.d. by
/// construction (independent placement seeds per run) — the property MBPTA
/// requires of its input measurements.
#[must_use]
pub fn campaign(cfg: &PlatformConfig, trace: &Trace, runs: usize, master_seed: u64) -> Vec<u64> {
    let mut platform = Platform::new(cfg, master_seed);
    (0..runs)
        .map(|i| platform.run_randomized(trace, derive_seed(master_seed, i as u64)))
        .collect()
}

/// Collects the execution times of runs `start .. start + runs` of the seed
/// stream defined by `master_seed` — the incremental form of [`campaign`]
/// used by the MBPTA convergence procedure (each step extends the same
/// deterministic stream, so `campaign(n)` equals the concatenation of
/// slices covering `0..n`).
#[must_use]
pub fn campaign_slice(
    cfg: &PlatformConfig,
    trace: &Trace,
    start: usize,
    runs: usize,
    master_seed: u64,
) -> Vec<u64> {
    let mut platform = Platform::new(cfg, master_seed);
    (start..start + runs)
        .map(|i| platform.run_randomized(trace, derive_seed(master_seed, i as u64)))
        .collect()
}

/// Campaign parallelism knobs, exposed so batch drivers (the sweep engine)
/// can trade scheduling overhead against intra-campaign parallelism
/// explicitly instead of relying on hard-coded thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads per campaign (clamped to at least 1).
    pub threads: usize,
    /// Campaigns shorter than this run serially: below a few hundred runs
    /// the thread spawn cost dominates the simulation itself.
    pub min_parallel_runs: usize,
}

impl Parallelism {
    /// One campaign per core (the one-shot CLI default).
    #[must_use]
    pub fn per_core() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            threads,
            min_parallel_runs: 256,
        }
    }

    /// Strictly serial campaigns — what a batch engine wants when it already
    /// runs one job per core.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: 1,
            min_parallel_runs: usize::MAX,
        }
    }

    /// A fixed thread count with the default serial cut-off.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_parallel_runs: 256,
        }
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::per_core()
    }
}

/// Parallel version of [`campaign`]: same per-run seeds, so the output is
/// bit-identical to the serial version, in run-index order.
///
/// `threads` is clamped to at least 1; each worker simulates a contiguous
/// chunk of run indices on its own [`Platform`] clone.
#[must_use]
pub fn campaign_parallel(
    cfg: &PlatformConfig,
    trace: &Trace,
    runs: usize,
    master_seed: u64,
    threads: usize,
) -> Vec<u64> {
    campaign_with(
        cfg,
        trace,
        runs,
        master_seed,
        &Parallelism::with_threads(threads),
    )
}

/// [`campaign`] under explicit [`Parallelism`] knobs. Output is
/// bit-identical for every knob setting.
#[must_use]
pub fn campaign_with(
    cfg: &PlatformConfig,
    trace: &Trace,
    runs: usize,
    master_seed: u64,
    par: &Parallelism,
) -> Vec<u64> {
    campaign_slice_with(cfg, trace, 0, runs, master_seed, par)
}

/// [`campaign_slice`] under explicit [`Parallelism`] knobs: runs
/// `start .. start + runs` of the seed stream, in run-index order,
/// bit-identical to the serial slice at any knob setting.
///
/// Because every run is seeded from its absolute index, a campaign can be
/// restarted from any boundary: a prefix collected by one process (e.g. a
/// convergence stage) concatenated with this slice equals the full
/// campaign. Staged drivers rely on this to resume mid-analysis.
#[must_use]
pub fn campaign_slice_with(
    cfg: &PlatformConfig,
    trace: &Trace,
    start: usize,
    runs: usize,
    master_seed: u64,
    par: &Parallelism,
) -> Vec<u64> {
    let threads = par.threads.max(1).min(runs.max(1));
    if threads <= 1 || runs < par.min_parallel_runs.max(2) {
        return campaign_slice(cfg, trace, start, runs, master_seed);
    }
    let mut out = vec![0u64; runs];
    let chunk = runs.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let first = start + t * chunk;
            scope.spawn(move || {
                let mut platform = Platform::new(cfg, master_seed);
                for (off, s) in slot.iter_mut().enumerate() {
                    let i = (first + off) as u64;
                    *s = platform.run_randomized(trace, derive_seed(master_seed, i));
                }
            });
        }
    });
    out
}

/// [`campaign_slice_with`] driven in chunks, for drivers that persist
/// partial campaigns: simulates runs `start .. start + runs`, invoking
/// `sink` after each completed chunk with the chunk's absolute start index
/// and its execution times, and returns the whole slice. `sink` returns
/// whether to keep going — returning `false` (say, the checkpoint medium
/// failed) stops the simulation immediately instead of burning through
/// the rest of a possibly enormous campaign, and the truncated slice is
/// returned as-is for the caller to discard or salvage.
///
/// Chunk boundaries land on multiples of `chunk_runs` in *absolute*
/// run-index space (the final chunk is whatever remains), so a checkpoint
/// log fed by `sink` has the same chunk layout no matter where the slice
/// starts — an interrupted-then-resumed campaign replays the grid, not an
/// offset of it. `chunk_runs == 0` simulates the slice as one chunk. The
/// returned sample is bit-identical to [`campaign_slice_with`] for every
/// chunking and parallelism setting (when the sink never aborts).
#[allow(clippy::too_many_arguments)]
pub fn campaign_slice_chunked(
    cfg: &PlatformConfig,
    trace: &Trace,
    start: usize,
    runs: usize,
    master_seed: u64,
    par: &Parallelism,
    chunk_runs: usize,
    mut sink: impl FnMut(usize, &[u64]) -> bool,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(runs);
    let end = start + runs;
    let mut at = start;
    while at < end {
        let next = next_chunk_boundary(at, chunk_runs, end);
        let slice = campaign_slice_with(cfg, trace, at, next - at, master_seed, par);
        let keep_going = sink(at, &slice);
        out.extend_from_slice(&slice);
        at = next;
        if !keep_going {
            break;
        }
    }
    out
}

/// The absolute index ending the chunk that contains run `at`: the next
/// multiple of `chunk_runs`, capped at `end`; `chunk_runs == 0` means one
/// single chunk (`end`). This is the one definition of the checkpoint
/// grid — [`campaign_slice_chunked`] simulates on it and checkpoint
/// writers frame on it, which is what makes interrupted-then-resumed logs
/// byte-identical to uninterrupted ones.
#[must_use]
pub fn next_chunk_boundary(at: usize, chunk_runs: usize, end: usize) -> usize {
    match at.checked_div(chunk_runs) {
        None => end,
        Some(cell) => ((cell + 1) * chunk_runs).min(end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_trace::{Access, SymSeq};

    fn sym_trace(s: &str, reps: usize) -> Trace {
        s.parse::<SymSeq>().unwrap().repeat(reps).to_trace(32)
    }

    #[test]
    fn deterministic_platform_has_zero_variability() {
        let cfg = PlatformConfig::deterministic();
        let trace = sym_trace("ABCDEFGH", 50);
        let times = campaign(&cfg, &trace, 20, 7);
        assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
    }

    #[test]
    fn randomized_platform_varies_across_runs() {
        let cfg = PlatformConfig::paper_default();
        // Footprint > 2 ways in some sets with non-trivial probability:
        // 40 distinct lines in 64 sets.
        let s: SymSeq = ('A'..='Z')
            .chain('A'..='N')
            .collect::<String>()
            .parse()
            .unwrap();
        let trace = s.repeat(30).to_trace(32);
        let times = campaign(&cfg, &trace, 50, 9);
        let distinct: std::collections::HashSet<u64> = times.iter().copied().collect();
        assert!(distinct.len() > 1, "expected layout-induced variability");
    }

    #[test]
    fn campaign_is_reproducible() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCAD", 40);
        assert_eq!(campaign(&cfg, &trace, 25, 3), campaign(&cfg, &trace, 25, 3));
        // A footprint large enough that layouts (and thus times) must differ
        // between master seeds.
        let wide: SymSeq = ('A'..='Z').collect::<String>().parse().unwrap();
        let wide_trace = wide.repeat(10).to_trace(32);
        assert_ne!(
            campaign(&cfg, &wide_trace, 25, 3),
            campaign(&cfg, &wide_trace, 25, 4)
        );
    }

    #[test]
    fn slices_concatenate_to_full_campaign() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 10);
        let full = campaign(&cfg, &trace, 120, 13);
        let mut pieced = campaign_slice(&cfg, &trace, 0, 50, 13);
        pieced.extend(campaign_slice(&cfg, &trace, 50, 70, 13));
        assert_eq!(full, pieced);
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJ", 20);
        let serial = campaign(&cfg, &trace, 500, 11);
        for threads in [2, 3, 8] {
            assert_eq!(campaign_parallel(&cfg, &trace, 500, 11, threads), serial);
        }
    }

    #[test]
    fn campaign_with_knobs_matches_serial() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJ", 20);
        let serial = campaign(&cfg, &trace, 400, 5);
        assert_eq!(
            campaign_with(&cfg, &trace, 400, 5, &Parallelism::serial()),
            serial
        );
        assert_eq!(
            campaign_with(
                &cfg,
                &trace,
                400,
                5,
                &Parallelism {
                    threads: 4,
                    min_parallel_runs: 100
                }
            ),
            serial
        );
    }

    #[test]
    fn parallel_slice_matches_serial_slice() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGHIJ", 20);
        let serial = campaign_slice(&cfg, &trace, 170, 330, 11);
        for threads in [2, 3, 8] {
            let par = Parallelism {
                threads,
                min_parallel_runs: 100,
            };
            assert_eq!(
                campaign_slice_with(&cfg, &trace, 170, 330, 11, &par),
                serial
            );
        }
    }

    #[test]
    fn prefix_plus_parallel_slice_equals_full_campaign() {
        // The stage-boundary restart contract: a converge-phase prefix plus
        // a parallel tail slice must reproduce the one-shot campaign.
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 15);
        let full = campaign(&cfg, &trace, 500, 23);
        let mut pieced = campaign_slice(&cfg, &trace, 0, 140, 23);
        pieced.extend(campaign_slice_with(
            &cfg,
            &trace,
            140,
            360,
            23,
            &Parallelism {
                threads: 4,
                min_parallel_runs: 2,
            },
        ));
        assert_eq!(full, pieced);
    }

    #[test]
    fn chunked_slice_matches_serial_and_aligns_chunks_to_the_grid() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 10);
        let serial = campaign_slice(&cfg, &trace, 130, 470, 17);
        for (chunk_runs, threads) in [(0, 1), (100, 1), (100, 3), (64, 4), (1000, 2)] {
            let par = Parallelism {
                threads,
                min_parallel_runs: 50,
            };
            let mut seen: Vec<(usize, usize)> = Vec::new();
            let out = campaign_slice_chunked(&cfg, &trace, 130, 470, 17, &par, chunk_runs, {
                let seen = &mut seen;
                move |at, chunk| {
                    seen.push((at, chunk.len()));
                    true
                }
            });
            assert_eq!(out, serial, "chunk={chunk_runs} threads={threads}");
            // The sink covers the slice contiguously and, beyond the first
            // chunk, starts on absolute multiples of the chunk size.
            let mut at = 130;
            for (i, &(chunk_at, len)) in seen.iter().enumerate() {
                assert_eq!(chunk_at, at);
                if i > 0 && chunk_runs > 0 {
                    assert_eq!(chunk_at % chunk_runs, 0, "grid-aligned");
                }
                at += len;
            }
            assert_eq!(at, 600);
        }
    }

    #[test]
    fn chunked_slice_aborts_when_the_sink_says_stop() {
        let cfg = PlatformConfig::paper_default();
        let trace = sym_trace("ABCDEFGH", 10);
        let mut calls = 0;
        let out = campaign_slice_chunked(
            &cfg,
            &trace,
            0,
            500,
            17,
            &Parallelism::serial(),
            100,
            |_, _| {
                calls += 1;
                calls < 2
            },
        );
        assert_eq!(calls, 2, "the sink is not called after it aborts");
        assert_eq!(out.len(), 200, "simulation stops at the aborting chunk");
        assert_eq!(out, campaign_slice(&cfg, &trace, 0, 200, 17));
    }

    #[test]
    fn run_separates_instruction_and_data() {
        // One instruction fetch and one read to the same line id: they go to
        // different caches, so both miss.
        let cfg = PlatformConfig::paper_default();
        let mut p = Platform::new(&cfg, 1);
        let t: Trace = [Access::fetch(0x100), Access::read(0x100)]
            .into_iter()
            .collect();
        let cycles = p.run_randomized(&t, 5);
        assert_eq!(cycles, 200, "two cold misses at 100 cycles each");
        assert_eq!(p.il1().stats().misses, 1);
        assert_eq!(p.dl1().stats().misses, 1);
    }

    #[test]
    fn hits_cost_hit_latency() {
        let cfg = PlatformConfig::paper_default();
        let mut p = Platform::new(&cfg, 1);
        let t: Trace = [Access::read(0x40), Access::read(0x40), Access::read(0x40)]
            .into_iter()
            .collect();
        let cycles = p.run_randomized(&t, 5);
        assert_eq!(cycles, 100 + 1 + 1);
    }

    #[test]
    fn issue_cycles_add_per_instruction() {
        let mut cfg = PlatformConfig::paper_default();
        cfg.latency.issue_cycles = 3;
        let mut p = Platform::new(&cfg, 1);
        let t: Trace = [Access::fetch(0x0), Access::fetch(0x4)]
            .into_iter()
            .collect();
        // First fetch misses (100), second hits same line (1), plus 2*3 issue.
        assert_eq!(p.run_randomized(&t, 5), 100 + 1 + 6);
    }

    #[test]
    fn warm_run_is_faster_than_cold() {
        let cfg = PlatformConfig::paper_default();
        let mut p = Platform::new(&cfg, 1);
        let trace = sym_trace("ABCD", 10);
        let cold = p.run_randomized(&trace, 77);
        let warm = p.run(&trace); // no flush
        assert!(warm < cold, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn mbpta_compliance_flag() {
        assert!(PlatformConfig::paper_default().is_mbpta_compliant());
        assert!(!PlatformConfig::deterministic().is_mbpta_compliant());
    }
}
