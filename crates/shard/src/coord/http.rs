//! The HTTP/JSON + SSE face of the service daemon (`mbcr serve --http`).
//!
//! Every route is a thin adapter over the same [`Service`] methods the
//! binary protocol uses — one registry, one durability contract, two
//! wire formats. Handlers run in the accept loop's thread scope, one
//! request per connection (mirroring the daemon's one-handshake binary
//! peers); a slow or hostile peer can stall only its own handler
//! thread, never the claim loop, because every route takes the state
//! lock just long enough for an in-memory read.
//!
//! Routes:
//!
//! | Method + path               | Action                                 |
//! |-----------------------------|----------------------------------------|
//! | `GET /v1/healthz`           | liveness: uptime, schemas, worker count|
//! | `GET /v1/metrics`           | queue depth, fairness, dedup, affinity |
//! | `GET /v1/metrics?format=prometheus` | text exposition of `mbcr-obs`  |
//! | `GET /v1/sweeps`            | status of every sweep                  |
//! | `POST /v1/sweeps`           | submit (durable before `201`)          |
//! | `GET /v1/sweeps/{id}`       | one sweep's full snapshot              |
//! | `DELETE /v1/sweeps/{id}`    | cancel                                 |
//! | `GET /v1/sweeps/{id}/events`| SSE progress stream until terminal     |

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use mbcr::prelude::{CacheGeometry, Inputs};
use mbcr::stage::{cache_class, path_coverage, rollup_to_json, StageStore};
use mbcr_engine::{SubmitOptions, SweepMetrics};
use mbcr_gateway::{
    read_request, respond_error, respond_json, respond_text, sse_event, sse_headers, Request,
};
use mbcr_json::Json;

use super::Service;
use crate::protocol;

/// Serves one HTTP connection: parse (hardened), route, respond, close.
/// Malformed requests get a `400` and never disturb the daemon.
pub(super) fn handle(service: &Service<'_>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // The read timeout bounds header/body dribble; the write timeout is
    // what guarantees a never-reading SSE follower errors its handler
    // out instead of pinning it forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(reading) = stream.try_clone() else {
        return;
    };
    let request = match read_request(&mut BufReader::new(reading)) {
        Ok(Some(request)) => request,
        Ok(None) => return, // peer connected and left; nothing to answer
        Err(e) => {
            let _ = respond_error(&mut stream, 400, &e.to_string());
            return;
        }
    };
    let _ = route(service, &mut stream, &request);
}

fn route(service: &Service<'_>, stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let method = request.method.as_str();
    // `Request.path` keeps any query suffix verbatim; only `/v1/metrics`
    // interprets one (`?format=`), every other route ignores it.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (request.path.as_str(), None),
    };
    // Per-route request latency: the span name is the route *pattern*
    // (never the raw path — sweep ids would explode the cardinality).
    let _span = mbcr_obs::span(mbcr_obs::SpanKind::HttpRequest, route_pattern(method, path));
    match (method, path) {
        ("GET", "/v1/healthz") => respond_json(stream, 200, &healthz_doc(service)),
        ("GET", "/v1/metrics") => metrics(service, stream, query),
        ("GET", "/v1/sweeps") => {
            let statuses = { service.lock().sweeps.statuses() };
            let rows = statuses.iter().map(protocol::status_json).collect();
            respond_json(
                stream,
                200,
                &Json::Obj(vec![("sweeps".to_string(), Json::Arr(rows))]),
            )
        }
        ("POST", "/v1/sweeps") => submit(service, stream, request),
        (_, "/v1/healthz" | "/v1/metrics" | "/v1/sweeps") => {
            respond_error(stream, 405, &format!("{method} not allowed on {path}"))
        }
        _ => {
            let Some(rest) = path.strip_prefix("/v1/sweeps/") else {
                return respond_error(stream, 404, &format!("no route for {path}"));
            };
            if let Some(id) = rest.strip_suffix("/events") {
                return if method == "GET" {
                    follow_sse(service, stream, id)
                } else {
                    respond_error(stream, 405, &format!("{method} not allowed on {path}"))
                };
            }
            if rest.is_empty() || rest.contains('/') {
                return respond_error(stream, 404, &format!("no route for {path}"));
            }
            match method {
                "GET" => snapshot(service, stream, rest),
                "DELETE" => cancel(service, stream, rest),
                _ => respond_error(stream, 405, &format!("{method} not allowed on {path}")),
            }
        }
    }
}

/// The low-cardinality route pattern a request matched, for metric
/// labels: sweep ids collapse to `{id}`, unmatched paths to `{other}`.
fn route_pattern(method: &str, path: &str) -> String {
    let pattern = match path {
        "/v1/healthz" | "/v1/metrics" | "/v1/sweeps" => path,
        _ => match path.strip_prefix("/v1/sweeps/") {
            Some(rest) if rest.ends_with("/events") => "/v1/sweeps/{id}/events",
            Some(_) => "/v1/sweeps/{id}",
            None => "{other}",
        },
    };
    format!("{method} {pattern}")
}

/// `GET /v1/healthz`: liveness plus enough identity to triage a fleet —
/// uptime, the wire/engine schemas this daemon speaks, and how many
/// workers are currently connected.
fn healthz_doc(service: &Service<'_>) -> Json {
    let workers = { service.lock().leases.live() };
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        (
            "uptime_seconds".to_string(),
            Json::UInt(mbcr_obs::uptime_seconds()),
        ),
        ("schema".to_string(), protocol::wire_schema().into()),
        ("engine_schema".to_string(), mbcr_engine::SCHEMA.into()),
        ("workers".to_string(), Json::UInt(workers as u64)),
    ])
}

/// `GET /v1/metrics[?format=json|prometheus]`: the JSON gauge document by
/// default, or the Prometheus text exposition of the `mbcr-obs` registry
/// plus the service gauges. Unknown formats are a `400` listing the
/// valid ones (mirroring the CLI's unknown-`--format` convention).
fn metrics(service: &Service<'_>, stream: &mut TcpStream, query: Option<&str>) -> io::Result<()> {
    let format = query
        .unwrap_or("")
        .split('&')
        .find_map(|pair| pair.strip_prefix("format="))
        .unwrap_or("json");
    match format {
        "json" => respond_json(stream, 200, &metrics_doc(service)),
        "prometheus" => respond_text(stream, 200, &prometheus_page(service)),
        other => respond_error(
            stream,
            400,
            &format!("unknown format '{other}' (valid: json, prometheus)"),
        ),
    }
}

/// The Prometheus exposition: every `mbcr-obs` histogram and counter,
/// followed by the service's point-in-time gauges.
fn prometheus_page(service: &Service<'_>) -> String {
    let (metrics, connected) = {
        let state = service.lock();
        (state.sweeps.metrics(), state.leases.live())
    };
    let mut out = mbcr_obs::global().prometheus();
    let mut gauge = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    gauge(
        "mbcr_ready_jobs",
        "jobs ready to claim",
        metrics.ready as u64,
    );
    gauge(
        "mbcr_leased_jobs",
        "jobs leased to workers",
        metrics.leased as u64,
    );
    gauge(
        "mbcr_active_sweeps",
        "sweeps not yet terminal",
        metrics.active as u64,
    );
    gauge(
        "mbcr_dedup_parked_jobs",
        "jobs parked behind an equivalent digest",
        metrics.dedup_parked,
    );
    gauge(
        "mbcr_workers_connected",
        "worker connections currently live",
        connected as u64,
    );
    gauge(
        "mbcr_affinity_shipped_bytes",
        "artifact bytes shipped to workers",
        service.shipped_bytes.load(Ordering::Relaxed),
    );
    gauge(
        "mbcr_affinity_elided_bytes",
        "artifact bytes elided by placement affinity",
        service.elided_bytes.load(Ordering::Relaxed),
    );
    gauge("mbcr_uptime_seconds", "seconds since process start", {
        mbcr_obs::uptime_seconds()
    });
    out
}

/// `POST /v1/sweeps`: body `{"spec": …, "force"?, "checkpoint_interval"?,
/// "priority"?, "max_concurrent"?}` — the exact knobs of the binary
/// `Submit` frame. Durable before the `201` is written, like every
/// other submission path.
fn submit(service: &Service<'_>, stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let body = match request.json() {
        Ok(body) => body,
        Err(e) => return respond_error(stream, 400, &e),
    };
    let Some(spec) = body.get("spec") else {
        return respond_error(stream, 400, "missing 'spec'");
    };
    let opts = SubmitOptions {
        force: body.get("force").and_then(Json::as_bool).unwrap_or(false),
        checkpoint_interval: body.get("checkpoint_interval").and_then(Json::as_usize),
        batch_width: body.get("batch_width").and_then(Json::as_usize),
        persist: true,
        priority: body
            .get("priority")
            .and_then(Json::as_u64)
            .map_or(1, |p| u32::try_from(p).unwrap_or(u32::MAX)),
        max_concurrent: body.get("max_concurrent").and_then(Json::as_usize),
    };
    match service.submit_sweep(spec, opts) {
        Ok(sweep) => respond_json(
            stream,
            201,
            &Json::Obj(vec![("sweep".to_string(), sweep.into())]),
        ),
        Err(reason) => respond_error(stream, 400, &reason),
    }
}

/// `GET /v1/sweeps/{id}`: the same snapshot a binary `Follow` frame
/// carries, campaigns filled in outside the state lock.
fn snapshot(service: &Service<'_>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    let shell = {
        let state = service.lock();
        state
            .sweeps
            .snapshot(id)
            .map(|shell| (shell, state.sweeps.campaign_digests(id)))
    };
    let Some((mut snapshot, digests)) = shell else {
        return respond_error(stream, 404, &format!("unknown sweep '{id}'"));
    };
    snapshot.campaigns = mbcr_engine::campaign_progress_for(service.store, &digests);
    respond_json(stream, 200, &protocol::snapshot_json(&snapshot))
}

/// `DELETE /v1/sweeps/{id}`: cancel. Unknown ids are `404`; a sweep
/// that can no longer be canceled (already terminal) is `409`.
fn cancel(service: &Service<'_>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    let result = { service.lock().sweeps.cancel(id) };
    match result {
        Ok(state) => respond_json(
            stream,
            200,
            &Json::Obj(vec![
                ("sweep".to_string(), id.into()),
                ("state".to_string(), state.name().into()),
            ]),
        ),
        Err(e) => {
            let reason = e.to_string();
            let status = if reason.contains("unknown") { 404 } else { 409 };
            respond_error(stream, status, &reason)
        }
    }
}

/// `GET /v1/sweeps/{id}/events`: an SSE stream of `progress` events
/// (each one compact-JSON snapshot, byte-equal to the binary follow
/// payload) until the sweep is terminal, then one `end` event. Shares
/// [`Service::follow_stream`] with binary followers, so the no-lock-
/// around-I/O discipline holds here too.
fn follow_sse(service: &Service<'_>, stream: &mut TcpStream, id: &str) -> io::Result<()> {
    let targets = match service.follow_targets(Some(id.to_string())) {
        Ok(targets) => targets,
        Err(reason) => return respond_error(stream, 404, &reason),
    };
    sse_headers(stream)?;
    let streamed = service.follow_stream(&targets, &mut |snapshot| {
        // The span measures render + write — i.e. how far this follower
        // lags behind the sweep's progress feed.
        let _span = mbcr_obs::span(mbcr_obs::SpanKind::SseEmit, "progress");
        sse_event(
            stream,
            "progress",
            &protocol::snapshot_json(&snapshot).to_compact(),
        )
    });
    if streamed.is_err() {
        // The follower hung up (or stalled past the write timeout)
        // mid-stream.
        mbcr_obs::count("mbcr_sse_disconnects_total", &[], 1);
    }
    streamed?;
    sse_event(stream, "end", "{}")
}

/// `GET /v1/metrics`: the autoscaling/observability document — queue
/// depth, per-sweep fairness counters, dedup and affinity totals.
fn metrics_doc(service: &Service<'_>) -> Json {
    let (metrics, connected) = {
        let state = service.lock();
        (state.sweeps.metrics(), state.leases.live())
    };
    let sweeps = metrics.sweeps.iter().map(sweep_row).collect();
    Json::Obj(vec![
        ("schema".to_string(), protocol::wire_schema().into()),
        ("ready".to_string(), Json::UInt(metrics.ready as u64)),
        ("leased".to_string(), Json::UInt(metrics.leased as u64)),
        ("active".to_string(), Json::UInt(metrics.active as u64)),
        ("dedup_parked".to_string(), Json::UInt(metrics.dedup_parked)),
        (
            "workers".to_string(),
            Json::Obj(vec![
                ("connected".to_string(), Json::UInt(connected as u64)),
                (
                    "spawned".to_string(),
                    Json::UInt(service.scaler.as_ref().map_or(0, |s| s.spawned()) as u64),
                ),
            ]),
        ),
        (
            "affinity".to_string(),
            Json::Obj(vec![
                (
                    "shipped_bytes".to_string(),
                    Json::UInt(service.shipped_bytes.load(Ordering::Relaxed)),
                ),
                (
                    "elided_bytes".to_string(),
                    Json::UInt(service.elided_bytes.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        ("sweeps".to_string(), Json::Arr(sweeps)),
        ("path_coverage".to_string(), coverage_section(service)),
        ("cache_class".to_string(), cache_class_section(service)),
    ])
}

/// The static-path-coverage section of `/v1/metrics`: one row per
/// registered benchmark relating its Ball–Larus static path count to the
/// paths its shipped input vectors exercise. Computed outside the state
/// lock; the digest-keyed stage artifacts make repeat scrapes a store
/// load, not a re-analysis.
fn coverage_section(service: &Service<'_>) -> Json {
    let rows = service
        .registry
        .iter()
        .map(|b| {
            let inputs: Vec<Inputs> = b.input_vectors.iter().map(|v| v.inputs.clone()).collect();
            let value =
                match path_coverage(&b.program, &inputs, Some(service.store as &dyn StageStore)) {
                    Ok(coverage) => coverage.to_json(),
                    Err(e) => Json::Obj(vec![("error".to_string(), e.to_string().into())]),
                };
            (b.name.to_string(), value)
        })
        .collect();
    Json::Obj(rows)
}

/// The static cache-classification section of `/v1/metrics`: one row per
/// registered benchmark with the abstract-interpretation hit/miss rollup
/// against the paper's L1 geometry (both caches). Like the coverage
/// section, digest-keyed stage artifacts make repeat scrapes a store
/// load.
fn cache_class_section(service: &Service<'_>) -> Json {
    let g = CacheGeometry::paper_l1();
    let rows = service
        .registry
        .iter()
        .map(|b| {
            let value = match cache_class(&b.program, g, g, Some(service.store as &dyn StageStore))
            {
                Ok(rollup) => rollup_to_json(&rollup),
                Err(e) => Json::Obj(vec![("error".to_string(), e.to_string().into())]),
            };
            (b.name.to_string(), value)
        })
        .collect();
    Json::Obj(rows)
}

fn sweep_row(metrics: &SweepMetrics) -> Json {
    Json::Obj(vec![
        ("id".to_string(), metrics.id.as_str().into()),
        ("state".to_string(), metrics.state.name().into()),
        (
            "priority".to_string(),
            Json::UInt(u64::from(metrics.priority)),
        ),
        (
            "max_concurrent".to_string(),
            metrics
                .max_concurrent
                .map_or(Json::Null, |cap| Json::UInt(cap as u64)),
        ),
        ("claims".to_string(), Json::UInt(metrics.claims)),
        ("ready".to_string(), Json::UInt(metrics.ready as u64)),
        ("leased".to_string(), Json::UInt(metrics.leased as u64)),
        ("done".to_string(), Json::UInt(metrics.done as u64)),
        ("total".to_string(), Json::UInt(metrics.total as u64)),
        ("skipped".to_string(), Json::UInt(metrics.skipped as u64)),
    ])
}
