//! `bs` — binary search over 15 elements (Mälardalen).
//!
//! The paper's Section 3.3 running example. The search probes a sorted
//! 15-entry table; an input key stored at an *even* index is found after
//! exactly 4 iterations (the maximum), and the 8 even indices yield 8
//! distinct maximum-iteration paths — the paper's "8 different cases lead
//! to different paths triggering the maximum number of iterations". The
//! input vectors are named `v1, v3, …, v15` accordingly.

use mbcr_ir::{Expr, Inputs, Program, ProgramBuilder, Stmt, Var};

use crate::{BenchClass, Benchmark, NamedInput};

/// Number of table entries (as in the original benchmark).
pub const SIZE: u32 = 15;
/// Maximum binary-search iterations for 15 entries.
pub const MAX_ITERS: u32 = 4;

/// Key stored at `index` in the default table.
#[must_use]
pub fn key_at(index: u32) -> i64 {
    4 * i64::from(index) + 2
}

/// Value stored at `index` in the default table.
#[must_use]
pub fn value_at(index: u32) -> i64 {
    10 * i64::from(index)
}

/// Builds the `bs` program.
///
/// ```c
/// fvalue = -1; low = 0; up = 14;
/// while (low <= up) {
///   mid = (low + up) >> 1;
///   if (data[mid].key == x) { up = low - 1; fvalue = data[mid].value; }
///   else if (data[mid].key > x) up = mid - 1;
///   else low = mid + 1;
/// }
/// ```
#[must_use]
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("bs");
    let keys = b.array("keys", SIZE);
    let values = b.array("values", SIZE);
    let x = b.var("x");
    let low = b.var("low");
    let up = b.var("up");
    let mid = b.var("mid");
    let kmid = b.var("kmid");
    let fvalue = b.var("fvalue");

    b.push(Stmt::Assign(fvalue, Expr::c(-1)));
    b.push(Stmt::Assign(low, Expr::c(0)));
    b.push(Stmt::Assign(up, Expr::c(i64::from(SIZE) - 1)));
    b.push(Stmt::while_(
        Expr::var(low).le(Expr::var(up)),
        MAX_ITERS,
        vec![
            Stmt::Assign(mid, Expr::var(low).add(Expr::var(up)).shr(Expr::c(1))),
            Stmt::Assign(kmid, Expr::load(keys, Expr::var(mid))),
            Stmt::if_(
                Expr::var(kmid).eq_(Expr::var(x)),
                vec![
                    Stmt::Assign(up, Expr::var(low).sub(Expr::c(1))),
                    Stmt::Assign(fvalue, Expr::load(values, Expr::var(mid))),
                ],
                vec![Stmt::if_(
                    Expr::var(kmid).gt(Expr::var(x)),
                    vec![Stmt::Assign(up, Expr::var(mid).sub(Expr::c(1)))],
                    vec![Stmt::Assign(low, Expr::var(mid).add(Expr::c(1)))],
                )],
            ),
        ],
    ));
    b.build().expect("bs is well-formed")
}

fn table_inputs(p: &Program, x_value: i64) -> Inputs {
    let keys = p.array_by_name("keys").expect("keys array");
    let values = p.array_by_name("values").expect("values array");
    let x = p.var_by_name("x").expect("x var");
    Inputs::new()
        .with_array(keys, (0..SIZE).map(key_at).collect())
        .with_array(values, (0..SIZE).map(value_at).collect())
        .with_var(x, x_value)
}

/// The default input: vector `v1` (search the key at index 0; maximum
/// iterations).
#[must_use]
pub fn default_input() -> Inputs {
    table_inputs(&program(), key_at(0))
}

/// The paper's input vectors `v1, v3, …, v15`: the 8 keys at even indices,
/// each triggering the maximum number of iterations along a distinct path.
#[must_use]
pub fn input_vectors() -> Vec<NamedInput> {
    let p = program();
    (0..8)
        .map(|k| NamedInput {
            name: format!("v{}", 2 * k + 1),
            inputs: table_inputs(&p, key_at(2 * k)),
        })
        .collect()
}

/// The packaged benchmark.
#[must_use]
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "bs",
        program: program(),
        default_input: default_input(),
        input_vectors: input_vectors(),
        class: BenchClass::MultipathWorstKnown,
    }
}

/// The `fvalue` variable (search result) for assertions.
#[must_use]
pub fn result_var(p: &Program) -> Var {
    p.var_by_name("fvalue").expect("fvalue var")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbcr_ir::{execute, group_inputs_by_path};

    #[test]
    fn finds_every_key() {
        let p = program();
        for i in 0..SIZE {
            let run = execute(&p, &table_inputs(&p, key_at(i))).unwrap();
            assert_eq!(run.state.var(result_var(&p)), value_at(i), "index {i}");
        }
    }

    #[test]
    fn absent_key_yields_minus_one() {
        let p = program();
        let run = execute(&p, &table_inputs(&p, 999)).unwrap();
        assert_eq!(run.state.var(result_var(&p)), -1);
        let run = execute(&p, &table_inputs(&p, -5)).unwrap();
        assert_eq!(run.state.var(result_var(&p)), -1);
    }

    #[test]
    fn even_indices_take_max_iterations() {
        let p = program();
        for k in 0..8 {
            let run = execute(&p, &table_inputs(&p, key_at(2 * k))).unwrap();
            assert_eq!(
                run.path.loop_iters(0),
                Some(MAX_ITERS),
                "leaf index {}",
                2 * k
            );
        }
        // The root (index 7) is found in one probe.
        let run = execute(&p, &table_inputs(&p, key_at(7))).unwrap();
        assert_eq!(run.path.loop_iters(0), Some(1));
    }

    #[test]
    fn paper_has_8_distinct_max_iteration_paths() {
        let p = program();
        let inputs: Vec<Inputs> = input_vectors().into_iter().map(|n| n.inputs).collect();
        let groups = group_inputs_by_path(&p, &inputs).unwrap();
        assert_eq!(groups.len(), 8, "8 distinct paths (paper Section 3.3)");
    }

    #[test]
    fn vector_names_match_paper() {
        let names: Vec<String> = input_vectors().into_iter().map(|n| n.name).collect();
        assert_eq!(
            names,
            vec!["v1", "v3", "v5", "v7", "v9", "v11", "v13", "v15"]
        );
    }
}
