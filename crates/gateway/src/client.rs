//! A minimal HTTP/SSE client for the service plane: enough for the CLI
//! (`mbcr submit/status/report --connect http://…`), the load-storm
//! bench, and the e2e suites — nothing more.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mbcr_json::Json;

use crate::sse::SseReader;

/// Splits `http://host:port/path` into `(host:port, /path)`. A missing
/// path means `/`. `None` for anything that is not a plain `http://`
/// URL with an explicit port.
#[must_use]
pub fn parse_url(url: &str) -> Option<(String, String)> {
    let rest = url.strip_prefix("http://")?;
    let (addr, path) = match rest.find('/') {
        Some(at) => (&rest[..at], &rest[at..]),
        None => (rest, "/"),
    };
    let (host, port) = addr.rsplit_once(':')?;
    if host.is_empty() || port.is_empty() || !port.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((addr.to_string(), path.to_string()))
}

/// One HTTP response, body fully read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The body parsed as JSON (`None` when empty or not JSON).
    #[must_use]
    pub fn json(&self) -> Option<Json> {
        mbcr_json::parse(std::str::from_utf8(&self.body).ok()?).ok()
    }

    /// The `error` field of a JSON error body, or the raw body text.
    #[must_use]
    pub fn error_text(&self) -> String {
        self.json()
            .as_ref()
            .and_then(|doc| doc.get("error"))
            .and_then(Json::as_str)
            .map_or_else(
                || String::from_utf8_lossy(&self.body).into_owned(),
                str::to_string,
            )
    }
}

fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    addr: &str,
    path: &str,
    body: Option<&Json>,
) -> io::Result<()> {
    let body = body.map(Json::to_compact).unwrap_or_default();
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Parses a response's status line and headers off `reader`, leaving it
/// positioned at the body. Returns `(status, content_length)`.
fn read_response_head<R: BufRead>(reader: &mut R) -> io::Result<(u16, Option<usize>)> {
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let line = line.trim_end();
    let mut parts = line.splitn(3, ' ');
    let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("bad status line '{line}'")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| bad(format!("bad status code in '{line}'")))?;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            return Ok((status, content_length));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad content-length '{value}'")))?,
                );
            }
        }
    }
}

/// Performs one request against `addr` (a `host:port`) and reads the
/// whole response. Bodies are compact JSON; connections are one-shot
/// (`Connection: close`), matching the server.
///
/// # Errors
///
/// Connect/read/write failures and malformed responses.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&Json>) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, method, addr, path, body)?;
    let mut reader = BufReader::new(stream);
    let (status, content_length) = read_response_head(&mut reader)?;
    let mut body = Vec::new();
    match content_length {
        Some(length) => {
            body.resize(length, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(Response { status, body })
}

/// Opens an SSE stream: `GET`s `path`, checks the `200` + event-stream
/// response head, and returns a parser over the live stream. No read
/// timeout — progress events arrive whenever the sweep moves; a dying
/// server surfaces as EOF, which the caller's reconnect loop handles.
///
/// # Errors
///
/// Connect failures, malformed response heads, and non-200 statuses
/// (as [`io::ErrorKind::Other`] carrying the status and error body).
pub fn open_sse(addr: &str, path: &str) -> io::Result<SseReader<BufReader<TcpStream>>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, "GET", addr, path, None)?;
    let mut reader = BufReader::new(stream);
    let (status, content_length) = read_response_head(&mut reader)?;
    if status != 200 {
        let mut body = Vec::new();
        match content_length {
            Some(length) => {
                body.resize(length, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        return Err(io::Error::other(format!(
            "HTTP {status}: {}",
            Response { status, body }.error_text()
        )));
    }
    Ok(SseReader::new(reader))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urls_parse_into_address_and_path() {
        assert_eq!(
            parse_url("http://127.0.0.1:4871/v1/sweeps"),
            Some(("127.0.0.1:4871".to_string(), "/v1/sweeps".to_string()))
        );
        assert_eq!(
            parse_url("http://localhost:80"),
            Some(("localhost:80".to_string(), "/".to_string()))
        );
        for bad in [
            "https://127.0.0.1:1/x",
            "127.0.0.1:1/x",
            "http://no-port/x",
            "http://:123/x",
            "http://h:12x3/",
        ] {
            assert_eq!(parse_url(bad), None, "{bad}");
        }
    }

    #[test]
    fn responses_roundtrip_through_the_client_reader() {
        let mut raw = Vec::new();
        crate::respond_json(
            &mut raw,
            201,
            &Json::Obj(vec![("sweep".to_string(), "s000-x".into())]),
        )
        .unwrap();
        let mut reader = io::Cursor::new(raw);
        let (status, length) = read_response_head(&mut reader).unwrap();
        assert_eq!(status, 201);
        let mut body = vec![0u8; length.unwrap()];
        reader.read_exact(&mut body).unwrap();
        let doc = mbcr_json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.get("sweep").and_then(Json::as_str), Some("s000-x"));
    }

    #[test]
    fn error_text_prefers_the_json_error_field() {
        let with_field = Response {
            status: 404,
            body: b"{\"error\":\"unknown sweep\"}".to_vec(),
        };
        assert_eq!(with_field.error_text(), "unknown sweep");
        let raw = Response {
            status: 500,
            body: b"boom".to_vec(),
        };
        assert_eq!(raw.error_text(), "boom");
    }

    #[test]
    fn malformed_response_heads_are_rejected() {
        for raw in [
            &b"NOPE\r\n\r\n"[..],
            &b"HTTP/1.1 abc OK\r\n\r\n"[..],
            &b""[..],
        ] {
            assert!(read_response_head(&mut io::Cursor::new(raw.to_vec())).is_err());
        }
    }
}
