//! Criterion performance benches for the cache simulator — the innermost
//! loop of every measurement campaign.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mbcr_cache::{Cache, CacheGeometry, PlacementPolicy, ReplacementPolicy};
use mbcr_cpu::{campaign, PlatformConfig};
use mbcr_ir::execute;
use mbcr_trace::{LineId, SymSeq};
use std::hint::black_box;

fn line_stream(n: usize) -> Vec<LineId> {
    // A mix of reuse and streaming, 64 distinct lines.
    (0..n).map(|i| LineId(((i * 17) % 64) as u64)).collect()
}

fn bench_cache_access(c: &mut Criterion) {
    let stream = line_stream(100_000);
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, placement, replacement) in [
        (
            "random_random",
            PlacementPolicy::RandomHash,
            ReplacementPolicy::Random,
        ),
        (
            "modulo_lru",
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || Cache::new(CacheGeometry::paper_l1(), placement, replacement, 42),
                |mut cache| {
                    for &l in &stream {
                        black_box(cache.access_line(l));
                    }
                    cache
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let bench = mbcr_malardalen::bs::benchmark();
    let trace = execute(&bench.program, &bench.default_input)
        .expect("run bs")
        .trace;
    let cfg = PlatformConfig::paper_default();
    let mut group = c.benchmark_group("campaign");
    group.throughput(Throughput::Elements(100 * trace.len() as u64));
    group.bench_function("bs_100_runs", |b| {
        b.iter(|| black_box(campaign(&cfg, &trace, 100, 7)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_access, bench_campaign
}
criterion_main!(benches);

// Silence the unused-import lint if SymSeq stops being needed.
#[allow(dead_code)]
fn _keep(s: &str) -> SymSeq {
    s.parse().expect("valid")
}
